//! Umbrella acceptance tests for the graph layer (`taskdrop_dag`) driven
//! through the public prelude: function-chain merging must *pay* under
//! load, and subtree pruning must be deterministic across runs and across
//! checkpoint kill/restore.

use taskdrop::prelude::*;
use taskdrop::workload::graphgen;

/// A fixed-seed bursty function-chain workload: `BURSTS` bursts, each
/// carrying `DUPES` identical requests for one 3-stage chain, arriving
/// faster than the cluster can serve them all without deduplication.
const BURSTS: usize = 18;
const DUPES: usize = 4;
const GAP: u64 = 70;
const LEN: usize = 3;
const SLACK: u64 = 300;

fn add_bursts(core: &mut SimCore<'_>, coord: &mut DagCoordinator, tap: &DagTap) {
    for b in 0..BURSTS {
        let arrival = GAP * b as u64;
        coord.advance(core, tap, arrival).expect("advance between bursts");
        let bp = graphgen::linear_chain(
            b as u64,
            arrival,
            LEN,
            core.scenario().task_type_count() as u16,
            SLACK,
        );
        let graph = TaskGraph::from_blueprint(&bp).expect("generated chains validate");
        for _ in 0..DUPES {
            coord.add_graph(core, graph.clone()).expect("chains inject cleanly");
        }
    }
}

/// Runs the fixed workload to drain; optionally interrupts at `interrupt`,
/// JSON round-trips the checkpoint, and resumes from it. Returns the final
/// stats and the serialized end state.
fn run(merging: bool, prune: Option<f64>, interrupt: Option<u64>) -> (DagStats, String) {
    let scenario = Scenario::specint(17);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let dropper = ProactiveDropper::paper_default();
    let mut core = SimCore::open(&scenario, &Pam, &dropper, config, 0xC4A1).expect("valid core");
    let tap = DagTap::new();
    tap.attach(&mut core);
    let mut coord = DagCoordinator::new();
    if merging {
        coord = coord.with_merging();
    }
    if let Some(threshold) = prune {
        coord = coord.with_pruning(threshold);
    }
    add_bursts(&mut core, &mut coord, &tap);

    if let Some(until) = interrupt {
        coord.advance(&mut core, &tap, until).expect("advance to interrupt");
        let json = serde_json::to_string(&coord.snapshot(&core)).expect("serialize");
        drop(core);
        let cp: DagCheckpoint = serde_json::from_str(&json).expect("parse");
        let (mut core2, mut coord2) =
            cp.restore(&scenario, &Pam, &dropper).expect("restore checkpoint");
        let tap2 = DagTap::new();
        tap2.attach(&mut core2);
        coord2.run_to_drain(&mut core2, &tap2).expect("drain resumed");
        assert!(coord2.all_resolved() && coord2.audit());
        let end = serde_json::to_string(&coord2.snapshot(&core2)).expect("serialize end");
        return (coord2.stats(), end);
    }

    coord.run_to_drain(&mut core, &tap).expect("drain");
    assert!(coord.all_resolved() && coord.audit());
    let end = serde_json::to_string(&coord.snapshot(&core)).expect("serialize end");
    (coord.stats(), end)
}

/// The acceptance criterion from the paper's serverless framing: on a
/// fixed-seed bursty chain workload, deduplicating identical pending
/// requests strictly increases the number of stages completed on time —
/// the merged runs ride one execution instead of congesting the queues.
#[test]
fn merging_strictly_increases_on_time_completions() {
    let (off, _) = run(false, None, None);
    let (on, _) = run(true, None, None);
    assert_eq!(off.nodes, on.nodes, "same workload either way");
    assert_eq!(off.merged, 0);
    assert!(on.merged > 0, "duplicate bursts must actually merge");
    let on_time_off = off.on_time + off.on_time_approx;
    let on_time_on = on.on_time + on.on_time_approx;
    assert!(
        on_time_on > on_time_off,
        "merging must strictly raise on-time completions: {on_time_on} vs {on_time_off}"
    );
    // And it does strictly less work doing so.
    assert!(on.injected < off.injected);
}

/// PruneSubtree is a pure function of the released batch and the captured
/// queue tails: two runs of the same seed shed exactly the same subtrees
/// and end in byte-identical states.
#[test]
fn prune_subtree_is_deterministic_across_runs() {
    let (a_stats, a) = run(true, Some(0.4), None);
    let (b_stats, b) = run(true, Some(0.4), None);
    assert_eq!(a_stats, b_stats);
    assert_eq!(a, b, "same seed, same pruning decisions, same end state");
}

/// Killing a pruning run mid-flight, JSON round-tripping the checkpoint
/// and resuming ends byte-identically to never having stopped — pruning
/// decisions taken after restore price the same tails.
#[test]
fn prune_subtree_survives_checkpoint_restore() {
    // Feeding the bursts already advances the clock to the last arrival
    // (~1190), so `0` snapshots right after the feed with everything still
    // in flight, and the later points land at distinct drain depths.
    let (_, straight) = run(true, Some(0.4), None);
    for until in [0, 1_350, 1_800] {
        let (_, resumed) = run(true, Some(0.4), Some(until));
        assert_eq!(resumed, straight, "kill-and-restore at t={until} diverged");
    }
}
