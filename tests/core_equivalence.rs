//! The redesign's contract: a [`SimCore`] driven through its resumable
//! stepping API produces results **byte-identical** to the legacy batch
//! `Simulation::run()`, observers see a complete and conservative event
//! stream, and online injection reproduces the closed-world run when fed
//! the same tasks.

use taskdrop::prelude::*;
use taskdrop_model::ApproxSpec;
use taskdrop_sim::FailureSpec;

fn scenario() -> Scenario {
    Scenario::specint(0xA5)
}

fn workload(scenario: &Scenario, tasks: usize, window: u64, seed: u64) -> Workload {
    Workload::generate(scenario, &OversubscriptionLevel::new("eq", tasks, window), 1.0, seed)
}

/// Configurations covering every engine feature that could diverge.
fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("default", SimConfig { exclude_boundary: 10, ..SimConfig::default() }),
        (
            "no-kill",
            SimConfig {
                exclude_boundary: 0,
                kill_running_at_deadline: false,
                ..SimConfig::default()
            },
        ),
        (
            "failures",
            SimConfig {
                exclude_boundary: 0,
                failures: Some(FailureSpec { mtbf: 2_500, mttr: 600 }),
                ..SimConfig::default()
            },
        ),
        (
            "approx",
            SimConfig {
                exclude_boundary: 0,
                approx: Some(ApproxSpec::half_time()),
                ..SimConfig::default()
            },
        ),
    ]
}

fn dropper_for(config_name: &str) -> Box<dyn DropPolicy> {
    if config_name == "approx" {
        Box::new(ApproxDropper::paper_default())
    } else {
        Box::new(ProactiveDropper::paper_default())
    }
}

#[test]
fn stepped_core_is_byte_identical_to_legacy_run_across_seeds() {
    let scenario = scenario();
    for seed in [1u64, 2, 9] {
        let w = workload(&scenario, 250, 2_200, seed);
        for (name, config) in configs() {
            let dropper = dropper_for(name);
            let legacy = Simulation::new(&scenario, &w, &Pam, dropper.as_ref(), config, seed).run();
            let mut core =
                SimCore::new(&scenario, &w, &Pam, dropper.as_ref(), config, seed).unwrap();
            while let StepOutcome::Advanced { .. } = core.step() {}
            let stepped = core.result().unwrap();
            assert_eq!(legacy, stepped, "seed {seed}, config {name}");
        }
    }
}

#[test]
fn chunked_run_until_matches_one_shot_run() {
    let scenario = scenario();
    let w = workload(&scenario, 300, 2_500, 5);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let dropper = ProactiveDropper::paper_default();
    let legacy = Simulation::new(&scenario, &w, &Pam, &dropper, config, 5).run();

    let mut core = SimCore::new(&scenario, &w, &Pam, &dropper, config, 5).unwrap();
    // Drive in arbitrary-sized time slices, as a live driver would.
    let mut t = 0;
    while !core.run_until(t).is_drained() {
        t += 137;
    }
    assert_eq!(legacy, core.result().unwrap());
}

#[test]
fn event_stream_conserves_task_fates() {
    let scenario = scenario();
    for (name, config) in configs() {
        let w = workload(&scenario, 300, 2_500, 3);
        let dropper = dropper_for(name);
        let terminal_counts = std::cell::RefCell::new(vec![0usize; w.len()]);
        let event_fates = std::cell::RefCell::new(vec![None::<TaskFate>; w.len()]);
        let mut core = SimCore::new(&scenario, &w, &Pam, dropper.as_ref(), config, 3).unwrap();
        core.attach(|ev: &SimEvent| {
            if let Some((task, fate)) = ev.resolved() {
                terminal_counts.borrow_mut()[task.index()] += 1;
                event_fates.borrow_mut()[task.index()] = Some(fate);
            }
        });
        let result = core.run_to_completion();
        assert!(result.is_conserved());
        // Every task resolved exactly once, with the engine's own fate.
        for id in 0..w.len() {
            let count = terminal_counts.borrow()[id];
            assert_eq!(count, 1, "config {name}: task {id} got {count} terminal events");
            assert_eq!(
                event_fates.borrow()[id],
                core.fate(TaskId(id as u64)),
                "config {name}: event fate disagrees with engine fate for task {id}"
            );
        }
    }
}

#[test]
fn metrics_observer_reconstructs_the_trial_result_exactly() {
    let scenario = scenario();
    for (name, config) in configs() {
        let w = workload(&scenario, 250, 2_200, 7);
        let dropper = dropper_for(name);
        let metrics = MetricsObserver::new(&scenario, &config);
        let mut core = SimCore::new(&scenario, &w, &Pam, dropper.as_ref(), config, 7).unwrap();
        // Box the observer through attach and retrieve its result via a
        // shared cell: observers are owned by the core.
        let shared = std::rc::Rc::new(std::cell::RefCell::new(metrics));
        let handle = std::rc::Rc::clone(&shared);
        core.attach(move |ev: &SimEvent| handle.borrow_mut().on_event(ev));
        let engine_result = core.run_to_completion();
        let observed = shared.borrow().result().unwrap();
        assert_eq!(engine_result, observed, "config {name}: event stream lost information");
    }
}

#[test]
fn observers_do_not_change_the_outcome() {
    let scenario = scenario();
    let w = workload(&scenario, 200, 1_800, 11);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let dropper = ProactiveDropper::paper_default();
    let bare = Simulation::new(&scenario, &w, &Pam, &dropper, config, 11).run();
    let mut core = SimCore::new(&scenario, &w, &Pam, &dropper, config, 11).unwrap();
    core.attach(EventLog::new());
    core.attach(|_: &SimEvent| {});
    assert_eq!(bare, core.run_to_completion());
}

#[test]
fn injecting_the_workload_online_matches_the_closed_world_run() {
    let scenario = scenario();
    let w = workload(&scenario, 200, 1_800, 13);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let dropper = ProactiveDropper::paper_default();
    let closed = Simulation::new(&scenario, &w, &Pam, &dropper, config, 13).run();

    let mut core = SimCore::open(&scenario, &Pam, &dropper, config, 13).unwrap();
    for t in &w.tasks {
        let id = core.inject(t.type_id, t.arrival, t.deadline).unwrap();
        assert_eq!(id, t.id, "open core must assign the same dense ids");
    }
    assert_eq!(closed, core.run_to_completion());
}

#[test]
fn interleaved_injection_mid_run_still_conserves() {
    let scenario = scenario();
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let dropper = ProactiveDropper::paper_default();
    let mut core = SimCore::open(&scenario, &Pam, &dropper, config, 17).unwrap();
    // Feed tasks in bursts while the trial is in flight.
    let mut next_arrival = 0u64;
    for burst in 0..8u64 {
        for k in 0..25u64 {
            let type_id = taskdrop::model::TaskTypeId(((burst * 25 + k) % 12) as u16);
            core.inject(type_id, next_arrival + k * 3, next_arrival + k * 3 + 400).unwrap();
        }
        next_arrival += 75;
        core.run_until(next_arrival);
    }
    let result = core.run_to_completion();
    assert_eq!(result.total_tasks, 200);
    assert!(result.is_conserved());
}
