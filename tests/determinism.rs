//! Determinism regressions for the two risk areas ISSUE 1 calls out:
//! PMF normalization drift along convolution/compaction chains, and
//! seed/thread-independence of `TrialRunner` aggregation.
//!
//! These passed on the first green build of the workspace; they stay here so
//! any future change to the convolution kernel, the compaction binning, or
//! the parallel trial runner that breaks them is caught immediately.

use taskdrop::prelude::*;

/// A deliberately awkward PMF: irregular ticks, masses that do not sum to 1
/// in any "nice" binary fashion.
fn awkward_pmf(seed: u64) -> Pmf {
    let pairs: Vec<(Tick, f64)> = (0..9)
        .map(|k| {
            let t = 3 + k * (5 + (seed + k) % 7);
            let w = 1.0 + ((seed.wrapping_mul(k + 1)) % 13) as f64 / 3.0;
            (t, w)
        })
        .collect();
    Pmf::from_weights(pairs).expect("positive weights")
}

/// Eq (1) chains with per-step compaction must not drift off total mass 1,
/// even after hundreds of steps (a machine queue processes thousands of
/// mapping events per trial).
#[test]
fn deadline_convolution_chain_mass_never_drifts() {
    for compaction in [Compaction::MaxImpulses(16), Compaction::MaxImpulses(64)] {
        let mut completion = Pmf::point(0);
        for step in 0..400u64 {
            let exec = awkward_pmf(step);
            let deadline = 40 + step * 9;
            completion = compaction.apply(&deadline_convolve(&completion, &exec, deadline));
            let drift = (completion.total_mass() - 1.0).abs();
            assert!(
                drift < 1e-9,
                "mass drifted to 1 {drift:+e} after {step} steps under {compaction:?}"
            );
        }
    }
}

/// Plain convolution conserves the *product* of masses for sub-distributions
/// (the pruning lineage depends on this exactness).
#[test]
fn convolution_mass_product_is_exact_for_subdistributions() {
    let a = awkward_pmf(1).scale_mass(0.37);
    let b = awkward_pmf(2).scale_mass(0.81);
    let c = a.convolve(&b);
    assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-12);
}

/// Compaction must preserve mass bit-for-bit closely even when bins collapse
/// many impulses (same summation order guarantee documented in `compact.rs`).
#[test]
fn aggressive_compaction_preserves_mass() {
    let mut p = Pmf::point(0);
    for step in 0..40u64 {
        p = p.convolve(&awkward_pmf(step));
    }
    for max in [2, 3, 8, 32] {
        let c = Compaction::MaxImpulses(max).apply(&p);
        assert!((c.total_mass() - p.total_mass()).abs() < 1e-9, "mass lost at MaxImpulses({max})");
        assert!(c.len() <= max);
    }
}

/// The report aggregate must be byte-identical regardless of worker-thread
/// count: trials pull indices from a shared counter, so only the seed
/// derivation — never scheduling — may influence results.
#[test]
fn trial_runner_reports_identical_across_thread_counts() {
    let scenario = Scenario::specint(11);
    let spec = RunSpec {
        level: OversubscriptionLevel::new("det", 150, 1_800),
        gamma: 2.0,
        mapper: HeuristicKind::MinMin,
        dropper: DropperKind::heuristic_default(),
        config: SimConfig { exclude_boundary: 10, ..SimConfig::default() },
    };
    let reference = TrialRunner { trials: 5, master_seed: 0xD5, threads: 1 }.run(&scenario, &spec);
    for threads in [2, 3, 8] {
        let parallel = TrialRunner { trials: 5, master_seed: 0xD5, threads }.run(&scenario, &spec);
        assert_eq!(reference, parallel, "{threads} worker threads changed the report");
    }
    // And the JSON rendering (the artifact experiments persist) is stable too.
    let a = serde_json::to_string(&reference).unwrap();
    let b = serde_json::to_string(
        &TrialRunner { trials: 5, master_seed: 0xD5, threads: 4 }.run(&scenario, &spec),
    )
    .unwrap();
    assert_eq!(a, b);
}

/// Repeated runs in the same process must agree (no hidden global state:
/// thread-local RNGs, time-based seeds, iteration-order dependence).
#[test]
fn trial_runner_is_pure_across_repeated_runs() {
    let scenario = Scenario::transcode(7);
    let spec = RunSpec {
        level: OversubscriptionLevel::new("det", 120, 1_500),
        gamma: 1.0,
        mapper: HeuristicKind::Pam,
        dropper: DropperKind::Optimal,
        config: SimConfig { exclude_boundary: 10, ..SimConfig::default() },
    };
    let runner = TrialRunner::new(3, 99);
    let first = runner.run(&scenario, &spec);
    let second = runner.run(&scenario, &spec);
    assert_eq!(first, second);
}

/// Scenario construction itself is a function of the seed alone.
#[test]
fn scenario_generation_is_seed_deterministic() {
    let a = Scenario::specint(0xFEED);
    let b = Scenario::specint(0xFEED);
    assert_eq!(a.pet, b.pet, "PET matrices differ for identical seeds");
    let wa = Workload::generate(&a, &OversubscriptionLevel::new("w", 200, 2_000), 1.5, 5);
    let wb = Workload::generate(&b, &OversubscriptionLevel::new("w", 200, 2_000), 1.5, 5);
    assert_eq!(wa, wb);
}
