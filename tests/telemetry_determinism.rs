//! Determinism and zero-cost guarantees of the `taskdrop_obs` pipeline.
//!
//! Three properties pin the telemetry layer:
//!
//! 1. **Byte determinism** — the same seed produces a byte-identical JSONL
//!    export (every timestamp is a virtual tick; nothing reads the wall
//!    clock).
//! 2. **Zero observational cost** — an instrumented run and a bare run
//!    produce identical per-step [`StepOutcome`]s (work counters
//!    included) and identical final [`TrialResult`]s: observers are
//!    strictly read-only.
//! 3. **Rollup equivalence** — the stream-reconstructed `TrialResult`
//!    equals the engine's own at the fixed bench seed (the same
//!    configuration `BENCH_core.json` pins), so the exporter can never
//!    drift from the accounting CI already guards.
//!
//! Plus the serving-layer guarantee: flight-recorder contents are rebuilt
//! exactly by `kill_and_restore`'s deterministic replay, while the
//! destroyed timeline survives as the post-mortem snapshot.

use taskdrop::prelude::*;

fn bench_core<'a>(
    scenario: &'a Scenario,
    workload: &'a Workload,
    dropper: &'a ProactiveDropper,
) -> SimCore<'a> {
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    SimCore::new(scenario, workload, &Pam, dropper, config, 0xBE).expect("valid configuration")
}

/// Runs the fixed bench-seed trial with telemetry attached and returns the
/// pipeline plus the engine's own result.
fn instrumented_bench_run(
    scenario: &Scenario,
    workload: &Workload,
    dropper: &ProactiveDropper,
) -> (Telemetry, TrialResult) {
    let mut core = bench_core(scenario, workload, dropper);
    let tel = Telemetry::new().with_sample_every(400);
    tel.attach(&mut core, "bench");
    let mut steps = 0u64;
    loop {
        let outcome = core.step();
        steps += 1;
        if steps % 128 == 0 {
            tel.sample_core(&core, "bench");
        }
        if outcome.is_drained() {
            break;
        }
    }
    tel.sample_core(&core, "bench");
    let engine = core.result().expect("drained");
    (tel, engine)
}

#[test]
fn same_seed_produces_byte_identical_jsonl() {
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("bench", 600, 3_240);
    let workload = Workload::generate(&scenario, &level, 1.0, 0xBE);
    let dropper = ProactiveDropper::paper_default();

    let (first, _) = instrumented_bench_run(&scenario, &workload, &dropper);
    let (second, _) = instrumented_bench_run(&scenario, &workload, &dropper);
    assert!(!first.jsonl().is_empty(), "the run must emit records");
    assert_eq!(first.jsonl(), second.jsonl(), "JSONL export must be byte-identical per seed");
    assert_eq!(first.prometheus(), second.prometheus());
}

#[test]
fn telemetry_attachment_is_observationally_free() {
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("bench", 600, 3_240);
    let workload = Workload::generate(&scenario, &level, 1.0, 0xBE);
    let dropper = ProactiveDropper::paper_default();

    let mut bare = bench_core(&scenario, &workload, &dropper);
    let mut instrumented = bench_core(&scenario, &workload, &dropper);
    let tel = Telemetry::new().with_sample_every(400);
    tel.attach(&mut instrumented, "bench");

    // Lock-step: every step outcome — including the cumulative cache work
    // counters — must match, or attaching telemetry perturbed the engine.
    loop {
        let a = bare.step();
        let b = instrumented.step();
        assert_eq!(a, b, "instrumented step diverged from the bare engine");
        if a.is_drained() {
            break;
        }
    }
    assert_eq!(bare.result().expect("drained"), instrumented.result().expect("drained"));
    assert_eq!(bare.cache_stats(), instrumented.cache_stats());
}

#[test]
fn rollup_equals_engine_result_at_the_bench_seed() {
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("bench", 600, 3_240);
    let workload = Workload::generate(&scenario, &level, 1.0, 0xBE);
    let dropper = ProactiveDropper::paper_default();

    let (tel, engine) = instrumented_bench_run(&scenario, &workload, &dropper);
    let rollup = tel.finish_scope("bench").expect("drained");
    assert_eq!(rollup, engine, "stream rollup must reproduce the engine's accounting");
    // The exported rollup record carries the same result verbatim.
    let line = tel
        .jsonl()
        .lines()
        .find(|l| l.contains("\"record\":\"rollup\""))
        .expect("rollup record emitted")
        .to_string();
    let value: taskdrop::obs::RollupRecord =
        serde_json::from_str(&line).expect("rollup record parses");
    assert_eq!(value.result, engine);
}

fn recorder_fleet<'a>(
    scenario: &'a Scenario,
    dropper: &'a ProactiveDropper,
) -> (ServiceDriver<'a>, FlightRecorder) {
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let bursty = TrafficSource::Bursty(BurstySource::new(21, 0.5, 0.0, 400, 900, 350, 12, 220));
    let diurnal = TrafficSource::Diurnal(DiurnalSource::new(33, 0.12, 0.9, 3_000, 450, 12, 180));
    let mut driver = ServiceDriver::new().with_checkpoint_every(1_000);
    driver.add_shard(
        Shard::new(
            "bursty",
            scenario,
            &Pam,
            dropper,
            config,
            7,
            bursty,
            AdmissionController::new(24, BackpressurePolicy::PreDrop { threshold: 0.2 }),
        )
        .expect("valid shard config"),
    );
    driver.add_shard(
        Shard::new(
            "diurnal",
            scenario,
            &Pam,
            dropper,
            config,
            8,
            diurnal,
            AdmissionController::new(16, BackpressurePolicy::ShedOldest),
        )
        .expect("valid shard config"),
    );
    let recorder = driver.shard_mut(0).expect("shard 0").enable_flight_recorder(32);
    (driver, recorder)
}

#[test]
fn flight_recorder_is_rebuilt_exactly_by_kill_and_restore() {
    let scenario = Scenario::specint(3);
    let dropper = ProactiveDropper::paper_default();

    let (mut disturbed, disturbed_rec) = recorder_fleet(&scenario, &dropper);
    let (mut control, control_rec) = recorder_fleet(&scenario, &dropper);

    for _ in 0..4 {
        disturbed.advance(500).expect("epoch");
        control.advance(500).expect("epoch");
    }
    let pre_kill = disturbed_rec.snapshot();
    assert!(!pre_kill.events.is_empty(), "recorder must have captured the live timeline");

    disturbed.kill_and_restore(0).expect("checkpoint exists");

    // The destroyed timeline survives verbatim as the post-mortem...
    let post_mortem = disturbed.shards()[0].post_mortem().expect("recorder enabled");
    assert_eq!(*post_mortem, pre_kill, "post-mortem must capture the killed timeline verbatim");

    // ...and the replayed shard's *live* recorder converges to the control's
    // exact contents: replay is deterministic, so the ring the restored
    // shard carries forward is byte-identical to one that never died.
    let restored_rec =
        disturbed.shards()[0].flight_recorder().expect("restore re-creates the recorder").clone();
    assert_eq!(restored_rec.snapshot(), control_rec.snapshot());

    disturbed.run_until_idle(500, 200).expect("drain");
    control.run_until_idle(500, 200).expect("control drain");
    assert!(disturbed.is_idle() && control.is_idle());
    assert_eq!(
        restored_rec.snapshot(),
        control_rec.snapshot(),
        "drained recorders must match event for event"
    );
    let results: Vec<TrialResult> =
        disturbed.shards().iter().map(|s| s.core().result().expect("drained")).collect();
    let control_results: Vec<TrialResult> =
        control.shards().iter().map(|s| s.core().result().expect("drained")).collect();
    assert_eq!(results, control_results, "kill/restore must be invisible in the final metrics");
}
