//! Runs every `examples/*.rs` binary at `--quick` scale so the examples can
//! never silently rot: they are compiled by `cargo test` alongside this
//! suite, and this test executes each one and checks it exits cleanly with
//! non-empty output.

use std::path::PathBuf;
use std::process::Command;

/// Every example in `examples/`. Keep in sync with the directory — the test
/// fails loudly if a listed binary was not built, and
/// `no_example_is_missing_from_this_list` fails if one is added but not
/// listed here.
const EXAMPLES: &[&str] = &[
    "approximate_computing",
    "custom_policy",
    "dropping_anatomy",
    "failure_injection",
    "function_chains",
    "online_arrivals",
    "oversubscription_sweep",
    "parallel_fleet",
    "quickstart",
    "service_loop",
    "telemetry",
    "video_transcoding",
];

/// `target/<profile>/examples`, derived from this test binary's own path
/// (`target/<profile>/deps/examples_smoke-<hash>`).
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent()
        .and_then(std::path::Path::parent)
        .expect("test binary lives in target/<profile>/deps");
    profile_dir.join("examples")
}

#[test]
fn every_example_runs_at_quick_scale() {
    let dir = examples_dir();
    for name in EXAMPLES {
        let path = dir.join(name);
        assert!(
            path.is_file(),
            "example `{name}` not found at {path:?}; run this suite via `cargo test` \
             so example binaries are built alongside it"
        );
        let output = Command::new(&path)
            .arg("--quick")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example `{name}`: {e}"));
        assert!(
            output.status.success(),
            "example `{name}` exited with {:?}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(!output.stdout.is_empty(), "example `{name}` printed nothing on stdout");
    }
}

#[test]
fn no_example_is_missing_from_this_list() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut on_disk: Vec<String> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ directory")
        .filter_map(|entry| {
            let name = entry.expect("dir entry").file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, EXAMPLES, "EXAMPLES list out of sync with examples/");
}
