//! Serialisation round-trips for every config/result type an experiment
//! pipeline persists.

use taskdrop::prelude::*;

#[test]
fn run_spec_roundtrip() {
    let spec = RunSpec {
        level: OversubscriptionLevel::new("30k", 4_500, 16_200),
        gamma: 1.0,
        mapper: HeuristicKind::Pam,
        dropper: DropperKind::Heuristic { beta: 1.0, eta: 2 },
        config: SimConfig::default(),
    };
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let back: RunSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.level, spec.level);
    assert_eq!(back.mapper, spec.mapper);
    assert_eq!(back.dropper, spec.dropper);
    assert_eq!(back.config, spec.config);
}

#[test]
fn sim_config_defaults_fill_missing_fields() {
    // Older configs without the kill flag must deserialise with the default.
    let json = r#"{"queue_size":6,"compaction":{"MaxImpulses":64},"exclude_boundary":100}"#;
    let config: SimConfig = serde_json::from_str(json).unwrap();
    assert!(config.kill_running_at_deadline);
}

#[test]
fn workload_roundtrip_preserves_tasks() {
    let scenario = Scenario::transcode(3);
    let level = OversubscriptionLevel::new("w", 120, 4_000);
    let w = Workload::generate(&scenario, &level, 2.0, 17);
    let json = serde_json::to_string(&w).unwrap();
    let back: Workload = serde_json::from_str(&json).unwrap();
    assert_eq!(w, back);
}

#[test]
fn report_serialises_with_trials() {
    let scenario = Scenario::specint(3);
    let spec = RunSpec {
        level: OversubscriptionLevel::new("tiny", 120, 1_200),
        gamma: 1.0,
        mapper: HeuristicKind::MinMin,
        dropper: DropperKind::ReactiveOnly,
        config: SimConfig { exclude_boundary: 10, ..SimConfig::default() },
    };
    let report = TrialRunner::new(2, 5).run(&scenario, &spec);
    let json = serde_json::to_string(&report).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    assert_eq!(back.trials.len(), 2);
}

#[test]
fn pmf_roundtrip() {
    let p = Pmf::from_impulses(vec![(3, 0.25), (9, 0.75)]).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    assert_eq!(json, "[[3,0.25],[9,0.75]]");
    let back: Pmf = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}

#[test]
fn pmf_deserialisation_validates() {
    // Negative mass and excess mass must be rejected at the serde boundary.
    assert!(serde_json::from_str::<Pmf>("[[1,-0.5]]").is_err());
    assert!(serde_json::from_str::<Pmf>("[[1,0.9],[2,0.9]]").is_err());
}
