//! The persistent PET×tail cache is invisible except in speed.
//!
//! Three contracts (DESIGN.md §13):
//!
//! 1. **Regression for the `queue_tail_estimate` hot-path bug**: the
//!    estimate is routed through the core's shared `PolicyCtx`, so
//!    repeated calls against an unmoved queue are answered from the cache
//!    (hit counters advance) and return bit-identical PMFs.
//! 2. **Invalidation property**: after an arbitrary mutation sequence —
//!    injections, stepping, machine failures and repairs — every cached
//!    tail equals the tail a *cold* context (a checkpoint-restored twin of
//!    the same core, which starts with an empty cache) computes from
//!    scratch, bit for bit. Down machines are compared too, so
//!    failure-aware callers see identical state either way.
//! 3. **Surfacing**: `StepOutcome` work counters equal
//!    `SimCore::cache_stats()` and lookups are monotone.

use proptest::prelude::*;
use taskdrop::prelude::*;

fn cfg() -> SimConfig {
    SimConfig { exclude_boundary: 0, ..SimConfig::default() }
}

fn pmf_bits(p: &Pmf) -> Vec<(Tick, u64)> {
    p.iter().map(|i| (i.t, i.p.to_bits())).collect()
}

/// Satellite bugfix regression: `SimCore::queue_tail_estimate` used to
/// build a throwaway evaluator per call; it now reads through the shared
/// cache, so back-to-back calls on an unmoved queue report hits.
#[test]
fn repeated_tail_estimates_hit_the_cache() {
    let scenario = Scenario::specint(7);
    let level = OversubscriptionLevel::new("tail-cache", 400, 2_000);
    let workload = Workload::generate(&scenario, &level, 1.0, 42);
    let dropper = ProactiveDropper::paper_default();
    let mut core = SimCore::new(&scenario, &workload, &Pam, &dropper, cfg(), 1).unwrap();
    core.run_until(600);

    let busy: Vec<MachineId> = core
        .state()
        .machines
        .iter()
        .filter(|m| !m.pending.is_empty())
        .map(|m| m.machine.id)
        .collect();
    assert!(!busy.is_empty(), "oversubscribed mid-trial cluster must have queued work");

    let before = core.cache_stats();
    let first: Vec<Pmf> = busy.iter().map(|&m| core.queue_tail_estimate(m).unwrap()).collect();
    let after_first = core.cache_stats();
    let second: Vec<Pmf> = busy.iter().map(|&m| core.queue_tail_estimate(m).unwrap()).collect();
    let after_second = core.cache_stats();

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(pmf_bits(a), pmf_bits(b));
    }
    // Every second-round lookup is a hit: same revision, same base.
    assert_eq!(
        after_second.tail_hits - after_first.tail_hits,
        busy.len() as u64,
        "repeated estimates must be served from the cache: {after_second:?}"
    );
    assert_eq!(after_second.tail_misses, after_first.tail_misses, "no re-chaining on round two");
    // The first round may hit too (the mapping phase warmed the cache),
    // but it must at least have gone through the counters.
    assert!(after_first.lookups() > before.lookups());
}

/// `StepOutcome` surfaces the cumulative work counters the core reports.
#[test]
fn step_outcomes_surface_cache_work() {
    let scenario = Scenario::specint(7);
    let level = OversubscriptionLevel::new("work", 150, 1_500);
    let workload = Workload::generate(&scenario, &level, 1.0, 9);
    let dropper = ProactiveDropper::paper_default();
    let mut core = SimCore::new(&scenario, &workload, &Pam, &dropper, cfg(), 9).unwrap();
    let mut last = CacheStats::default();
    loop {
        let outcome = core.step();
        let work = outcome.work().expect("closed-world cores never idle");
        assert_eq!(work, core.cache_stats(), "outcome must carry the core's counters");
        assert!(work.lookups() >= last.lookups(), "counters are monotone");
        last = work;
        if outcome.is_drained() {
            break;
        }
    }
    assert!(last.tail_hits + last.tail_misses > 0, "a full trial performs tail lookups");
}

/// Drives a core through a scripted mix of injections and time slices,
/// returning it mid-flight.
fn drive<'a>(scenario: &'a Scenario, failures: bool, seed: u64, ops: &[(u8, u64)]) -> SimCore<'a> {
    static PAM: Pam = Pam;
    static DROPPER: ReactiveOnly = ReactiveOnly;
    let config = SimConfig {
        failures: failures.then_some(taskdrop::sim::FailureSpec { mtbf: 300, mttr: 200 }),
        ..cfg()
    };
    let mut core = SimCore::open(scenario, &PAM, &DROPPER, config, seed).unwrap();
    for &(op, val) in ops {
        if op % 3 == 0 {
            // A burst of arrivals with mixed deadlines.
            for k in 0..=(val % 5) {
                let arrival = core.now() + val % 90;
                let _ = core.inject(
                    TaskTypeId(((val + k) % 12) as u16),
                    arrival,
                    arrival + 40 + (val * (k + 1)) % 400,
                );
            }
        } else {
            core.run_until(core.now() + 1 + val % 150);
        }
    }
    core
}

proptest! {
    // Each case runs a pair of mini-trials; keep the count bounded for
    // the tier-1 budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After any mutation sequence, every machine's cached tail is
    /// bit-identical to one computed from scratch by a cold context (a
    /// restored twin starts with an empty cache and rev counters, so its
    /// first lookup re-chains everything). Failure injection is part of
    /// the script, so the machine-down case is covered: down flags agree
    /// and down machines' tails match too.
    #[test]
    fn warm_cache_matches_cold_recomputation(
        seed in 0u64..500,
        failure_coin in 0u8..2,
        ops in prop::collection::vec((0u8..6, 0u64..300), 1..12),
    ) {
        let failures = failure_coin == 1;
        let scenario = Scenario::specint(11);
        let mut warm = drive(&scenario, failures, seed, &ops);
        // Warm the cache further: estimate every tail once.
        for m in scenario.machines.clone() {
            let _ = warm.queue_tail_estimate(m.id);
        }
        let checkpoint = warm.snapshot();
        static PAM: Pam = Pam;
        static DROPPER: ReactiveOnly = ReactiveOnly;
        let mut cold = SimCore::restore(&scenario, &PAM, &DROPPER, &checkpoint).unwrap();
        prop_assert_eq!(cold.cache_stats().lookups(), 0, "restored caches start cold");
        let mut saw_down = false;
        for m in scenario.machines.clone() {
            let from_warm = warm.queue_tail_estimate(m.id).unwrap();
            let from_cold = cold.queue_tail_estimate(m.id).unwrap();
            prop_assert_eq!(pmf_bits(&from_warm), pmf_bits(&from_cold), "machine {}", m.id);
            prop_assert_eq!(warm.machine_is_down(m.id), cold.machine_is_down(m.id));
            saw_down |= warm.machine_is_down(m.id) == Some(true);
        }
        let _ = saw_down; // failure scripts cover it; uptime scripts cannot
        // And both cores finish byte-identically: the cache never leaks
        // into trial state.
        if warm.total_tasks() > 0 && !warm.is_drained() {
            prop_assert_eq!(warm.run_to_completion(), cold.run_to_completion());
        }
    }
}
