//! End-to-end engine tests across every mapper × dropper combination.

use taskdrop::prelude::*;

fn scenario() -> Scenario {
    Scenario::specint(0xA5)
}

fn workload(scenario: &Scenario, tasks: usize, window: u64) -> Workload {
    let level = OversubscriptionLevel::new("e2e", tasks, window);
    Workload::generate(scenario, &level, 1.0, 99)
}

fn all_mappers() -> Vec<HeuristicKind> {
    HeuristicKind::ALL.to_vec()
}

fn all_droppers() -> Vec<DropperKind> {
    vec![
        DropperKind::ReactiveOnly,
        DropperKind::heuristic_default(),
        DropperKind::Optimal,
        DropperKind::Threshold { base: 0.25 },
    ]
}

#[test]
fn every_combination_conserves_tasks() {
    let scenario = scenario();
    let w = workload(&scenario, 300, 2_500);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    for mapper in all_mappers() {
        for dropper in all_droppers() {
            let m = mapper.build();
            let d = dropper.build();
            let r = Simulation::new(&scenario, &w, m.as_ref(), d.as_ref(), config, 5).run();
            assert!(r.is_conserved(), "{}+{}: fates do not sum: {r:?}", mapper.name(), d.name());
            let pct = r.robustness_pct();
            assert!((0.0..=100.0).contains(&pct), "{}: robustness {pct}", mapper.name());
        }
    }
}

#[test]
fn reactive_only_never_drops_proactively() {
    let scenario = scenario();
    let w = workload(&scenario, 400, 2_000);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    for mapper in all_mappers() {
        let m = mapper.build();
        let r = Simulation::new(&scenario, &w, m.as_ref(), &ReactiveOnly, config, 5).run();
        assert_eq!(r.dropped_proactive, 0, "{}", mapper.name());
    }
}

#[test]
fn combinations_are_deterministic() {
    let scenario = scenario();
    let w = workload(&scenario, 250, 2_000);
    let config = SimConfig::default();
    for mapper in [HeuristicKind::Pam, HeuristicKind::MinMin] {
        for dropper in all_droppers() {
            let m = mapper.build();
            let d = dropper.build();
            let a = Simulation::new(&scenario, &w, m.as_ref(), d.as_ref(), config, 5).run();
            let b = Simulation::new(&scenario, &w, m.as_ref(), d.as_ref(), config, 5).run();
            assert_eq!(a, b, "{}+{}", mapper.name(), d.name());
        }
    }
}

#[test]
fn underload_needs_no_dropping() {
    // When the system keeps up, proactive dropping must not hurt: robustness
    // stays near 100 % and almost nothing is dropped.
    let scenario = scenario();
    let w = workload(&scenario, 100, 60_000);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let r =
        Simulation::new(&scenario, &w, &Pam, &ProactiveDropper::paper_default(), config, 5).run();
    assert!(r.robustness_pct() > 95.0, "underloaded robustness {:.1}", r.robustness_pct());
    assert!(
        r.dropped_proactive < 5,
        "dropper fired {} times on an underloaded system",
        r.dropped_proactive
    );
}

#[test]
fn homogeneous_scenario_runs_all_ordering_heuristics() {
    let scenario = Scenario::homogeneous(0xA5);
    let level = OversubscriptionLevel::new("homo", 400, 2_000);
    let w = Workload::generate(&scenario, &level, 1.0, 3);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    for mapper in [HeuristicKind::Fcfs, HeuristicKind::Edf, HeuristicKind::Sjf] {
        let m = mapper.build();
        let with = Simulation::new(
            &scenario,
            &w,
            m.as_ref(),
            &ProactiveDropper::paper_default(),
            config,
            5,
        )
        .run();
        let without = Simulation::new(&scenario, &w, m.as_ref(), &ReactiveOnly, config, 5).run();
        assert!(with.is_conserved() && without.is_conserved());
        // Oversubscribed homogeneous system: dropping should help (allow a
        // small tolerance for noise at this tiny scale).
        assert!(
            with.robustness_pct() + 3.0 >= without.robustness_pct(),
            "{}: with {:.1} vs without {:.1}",
            mapper.name(),
            with.robustness_pct(),
            without.robustness_pct()
        );
    }
}

#[test]
fn kill_at_deadline_ablation_changes_behaviour() {
    // With kill disabled, started tasks always run to completion: late
    // completions appear and robustness typically suffers in overload.
    let scenario = scenario();
    let w = workload(&scenario, 500, 2_500);
    let kill = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let no_kill =
        SimConfig { exclude_boundary: 0, kill_running_at_deadline: false, ..SimConfig::default() };
    let with_kill = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, kill, 5).run();
    let without_kill = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, no_kill, 5).run();
    assert!(with_kill.is_conserved() && without_kill.is_conserved());
    assert_eq!(with_kill.late, 0, "kill-at-deadline forbids late completions");
    assert!(without_kill.late > 0, "ablation must allow late completions");
    assert!(
        with_kill.robustness_pct() >= without_kill.robustness_pct(),
        "reclaiming doomed executions should not hurt: {:.1} vs {:.1}",
        with_kill.robustness_pct(),
        without_kill.robustness_pct()
    );
}
