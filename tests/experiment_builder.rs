//! `ExperimentBuilder` acceptance: it can express every `RunSpec` the seven
//! figure binaries use, round-trips through serde, and reproduces
//! `TrialRunner` results exactly.

use taskdrop::experiment::{ExperimentBuilder, ExperimentSpec, ScenarioSpec};
use taskdrop::prelude::*;
use taskdrop_bench::figures::{BASE_THRESHOLD, GAMMA, SCENARIO_SEED};

fn paper_levels() -> [OversubscriptionLevel; 3] {
    OversubscriptionLevel::paper_levels(SPECINT_WINDOW)
}

/// Hand-built spec exactly as `taskdrop_bench::figures` wires its cells.
fn figure_run_spec(
    level: &OversubscriptionLevel,
    mapper: HeuristicKind,
    dropper: DropperKind,
) -> RunSpec {
    RunSpec { level: level.clone(), gamma: GAMMA, mapper, dropper, config: SimConfig::default() }
}

fn builder_for(
    scenario: ScenarioSpec,
    level: &OversubscriptionLevel,
    mapper: HeuristicKind,
    dropper: DropperKind,
    master_seed: u64,
) -> ExperimentSpec {
    ExperimentBuilder::new()
        .scenario(scenario)
        .at_level(level.clone())
        .gamma(GAMMA)
        .mapper(mapper)
        .dropper(dropper)
        .trials(3)
        .master_seed(master_seed)
        .build()
        .expect("figure cells are valid experiments")
}

/// Every grid cell of fig05/06/07a/07b/08/09/10, expressed via the builder,
/// produces the exact `RunSpec` the figure harness hands to `TrialRunner`.
#[test]
fn builder_expresses_every_figure_run_spec() {
    let specint = ScenarioSpec::Specint { seed: SCENARIO_SEED };
    let homogeneous = ScenarioSpec::Homogeneous { seed: SCENARIO_SEED };
    let transcode = ScenarioSpec::Transcode { seed: SCENARIO_SEED };
    let levels = paper_levels();
    let mut cells: Vec<(ScenarioSpec, OversubscriptionLevel, HeuristicKind, DropperKind, u64)> =
        Vec::new();

    // fig05: eta sweep, PAM, three levels.
    for level in &levels {
        for eta in 1..=5usize {
            cells.push((
                specint,
                level.clone(),
                HeuristicKind::Pam,
                DropperKind::Heuristic { beta: 1.0, eta },
                0x0505,
            ));
        }
    }
    // fig06: beta sweep, PAM, three levels.
    for level in &levels {
        for half in 2..=8u32 {
            cells.push((
                specint,
                level.clone(),
                HeuristicKind::Pam,
                DropperKind::Heuristic { beta: half as f64 / 2.0, eta: 2 },
                0x0606,
            ));
        }
    }
    // fig07a / fig07b / fig10: mappers × {Heuristic, ReactDrop}.
    for mapper in [HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam] {
        for dropper in [DropperKind::heuristic_default(), DropperKind::ReactiveOnly] {
            cells.push((specint, levels[1].clone(), mapper, dropper, 0x07A0));
            let transcode_level = OversubscriptionLevel::new("20k", 20_000, TRANSCODE_WINDOW);
            cells.push((transcode, transcode_level, mapper, dropper, 0x1010));
        }
    }
    for mapper in [HeuristicKind::Fcfs, HeuristicKind::Edf, HeuristicKind::Sjf, HeuristicKind::Pam]
    {
        for dropper in [DropperKind::heuristic_default(), DropperKind::ReactiveOnly] {
            cells.push((homogeneous, levels[1].clone(), mapper, dropper, 0x07B0));
        }
    }
    // fig08: dropping variants × levels.
    for level in &levels {
        for dropper in [
            DropperKind::Optimal,
            DropperKind::heuristic_default(),
            DropperKind::Threshold { base: BASE_THRESHOLD },
        ] {
            cells.push((specint, level.clone(), HeuristicKind::Pam, dropper, 0x0808));
        }
    }
    // fig09: cost combos × levels.
    for level in &levels {
        for (mapper, dropper) in [
            (HeuristicKind::Pam, DropperKind::Threshold { base: BASE_THRESHOLD }),
            (HeuristicKind::Pam, DropperKind::heuristic_default()),
            (HeuristicKind::MinMin, DropperKind::ReactiveOnly),
        ] {
            cells.push((specint, level.clone(), mapper, dropper, 0x0909));
        }
    }

    assert!(cells.len() > 60, "expected the full grid, got {}", cells.len());
    for (scenario, level, mapper, dropper, seed) in cells {
        let spec = builder_for(scenario, &level, mapper, dropper, seed);
        assert_eq!(spec.run_spec(), figure_run_spec(&level, mapper, dropper));
        assert_eq!(spec.runner().master_seed, seed);
    }
}

#[test]
fn experiment_spec_round_trips_through_serde() {
    let spec = ExperimentBuilder::transcode(0xA5)
        .level("20k", 400, 4_800)
        .gamma(1.5)
        .mapper(HeuristicKind::MinMin)
        .dropper(DropperKind::Threshold { base: 0.25 })
        .queue_size(4)
        .exclude_boundary(5)
        .trials(2)
        .master_seed(0xBEEF)
        .threads(2)
        .build()
        .unwrap();
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}

/// Running through the facade is the same computation as the hand-wired
/// TrialRunner path.
#[test]
fn builder_run_matches_hand_wired_runner() {
    let scenario = Scenario::specint(SCENARIO_SEED);
    let level = OversubscriptionLevel::new("micro", 120, 1_500);
    let spec = ExperimentBuilder::specint(SCENARIO_SEED)
        .at_level(level.clone())
        .gamma(GAMMA)
        .mapper(HeuristicKind::Pam)
        .dropper(DropperKind::heuristic_default())
        .exclude_boundary(10)
        .trials(2)
        .master_seed(42)
        .build()
        .unwrap();
    let via_builder = spec.run().unwrap();
    let hand_wired = TrialRunner::new(2, 42).run(
        &scenario,
        &RunSpec {
            level,
            gamma: GAMMA,
            mapper: HeuristicKind::Pam,
            dropper: DropperKind::heuristic_default(),
            config: SimConfig { exclude_boundary: 10, ..SimConfig::default() },
        },
    );
    assert_eq!(via_builder, hand_wired);
}
