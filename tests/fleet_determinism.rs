//! Worker-count invariance of the parallel shard fleet (DESIGN.md §18):
//! the same fleet plan driven at 1, 2, 4 and 8 workers must produce
//! **byte-identical** output — trial results, admission ledgers, shard
//! checkpoints, and the full telemetry JSONL stream — with and without
//! cross-shard work stealing, and across a mid-run kill/restore.
//!
//! This is the fleet's load-bearing claim: the worker count is a pure
//! throughput knob. The 1-worker run takes the literally-serial code path
//! in `FleetDriver::parallel_advance`, so every multi-worker run is
//! differentially pinned against straight-line single-threaded execution.

use taskdrop::prelude::*;

fn config() -> SimConfig {
    SimConfig { exclude_boundary: 0, ..SimConfig::default() }
}

fn hot_source() -> TrafficSource {
    TrafficSource::Bursty(BurstySource::new(21, 0.5, 0.0, 400, 900, 350, 12, 220))
}

fn cold_source() -> TrafficSource {
    TrafficSource::Bursty(BurstySource::new(5, 0.05, 0.0, 600, 1_200, 80, 12, 400))
}

fn diurnal_source() -> TrafficSource {
    TrafficSource::Diurnal(DiurnalSource::new(33, 0.12, 0.9, 3_000, 450, 12, 180))
}

/// Everything observable about a finished fleet run, ready for byte
/// comparison across worker counts.
#[derive(Debug, PartialEq)]
struct FleetOutput {
    results: Vec<TrialResult>,
    stats: Vec<AdmissionStats>,
    /// Serialized final checkpoint of each shard, taken at the same tick.
    checkpoints: Vec<String>,
    /// The full telemetry JSONL stream (events, epochs, checkpoints,
    /// kill/restore records).
    telemetry: String,
}

/// Builds a four-shard fleet on one scenario, drives it with an optional
/// mid-run kill/restore choreography, and collects every observable byte.
fn run_fleet(workers: usize, stealing: Option<StealPolicy>, kills: &[usize]) -> FleetOutput {
    let scenario = Scenario::specint(3);
    let dropper = ProactiveDropper::paper_default();
    let telemetry = Telemetry::new();
    let mut fleet = FleetDriver::new()
        .with_workers(workers)
        .with_checkpoint_every(800)
        .with_telemetry(&telemetry);
    if let Some(policy) = stealing {
        fleet = fleet.with_stealing(policy);
    }
    let mut add = |name: &str, seed: u64, source: TrafficSource, cap: usize, bp| {
        fleet.add_shard(
            FleetShard::new(
                name,
                &scenario,
                &Pam,
                &dropper,
                config(),
                seed,
                source,
                AdmissionController::new(cap, bp),
            )
            .expect("valid shard"),
        );
    };
    add("hot", 7, hot_source(), 8, BackpressurePolicy::Reject);
    add("cold", 8, cold_source(), 32, BackpressurePolicy::Reject);
    add("diurnal", 9, diurnal_source(), 16, BackpressurePolicy::ShedOldest);
    add("steady", 10, cold_source(), 24, BackpressurePolicy::PreDrop { threshold: 0.2 });

    // Identical choreography at every worker count: a fixed prefix of
    // epochs, then the requested kills, then drain.
    for _ in 0..7 {
        fleet.advance(400).expect("epoch");
    }
    for &victim in kills {
        let revived = fleet.kill_and_restore(victim).expect("kill/restore");
        // A kill can land exactly on a checkpoint boundary, in which case
        // the revival point *is* the current clock.
        assert!(revived <= fleet.clock(), "revived from the future");
        for _ in 0..3 {
            fleet.advance(400).expect("epoch");
        }
    }
    fleet.run_until_idle(400, 400).expect("drain");
    assert!(fleet.is_idle(), "fleet did not drain inside the epoch budget");

    // One final checkpoint sweep so every shard snapshots at the same
    // tick, then serialize everything observable.
    fleet.checkpoint_all();
    FleetOutput {
        results: fleet.shards().iter().map(|s| s.result().expect("drained")).collect(),
        stats: fleet.shards().iter().map(|s| s.admission().stats()).collect(),
        checkpoints: fleet
            .shards()
            .iter()
            .map(|s| {
                serde_json::to_string(s.last_checkpoint().expect("checkpointed"))
                    .expect("serializable checkpoint")
            })
            .collect(),
        telemetry: telemetry.jsonl(),
    }
}

fn steal_policy() -> StealPolicy {
    StealPolicy { saturation: 0.5, headroom: 0.9, max_per_epoch: 6 }
}

/// Without stealing, the fleet's immediate ingress schedule retraces the
/// serial driver — and every worker count retraces the 1-worker run byte
/// for byte.
#[test]
fn fleet_output_is_worker_count_invariant() {
    let baseline = run_fleet(1, None, &[]);
    for workers in [2, 4, 8] {
        let run = run_fleet(workers, None, &[]);
        assert_eq!(run, baseline, "fleet diverged at {workers} workers");
    }
}

/// With stealing enabled the barrier executes cross-shard migrations —
/// planned from the merged snapshot, never thread timing — so the output
/// stays worker-count-invariant even while offers move between shards.
#[test]
fn stealing_fleet_is_worker_count_invariant() {
    let baseline = run_fleet(1, Some(steal_policy()), &[]);
    let moved: u64 = baseline.stats.iter().map(|s| s.stolen_out).sum();
    assert!(moved > 0, "steal thresholds never fired; the differential is vacuous");
    assert_eq!(moved, baseline.stats.iter().map(|s| s.stolen_in).sum::<u64>());
    for workers in [2, 4, 8] {
        let run = run_fleet(workers, Some(steal_policy()), &[]);
        assert_eq!(run, baseline, "stealing fleet diverged at {workers} workers");
    }
}

/// The full gauntlet: stealing on, two mid-run kill/restores (one of a
/// donor-side shard, one of a receiver-side shard). The replay log
/// re-applies the recorded migrations, so even the revived shards rejoin
/// byte-identical at every worker count.
#[test]
fn kill_restore_with_stealing_is_worker_count_invariant() {
    let baseline = run_fleet(1, Some(steal_policy()), &[0, 1]);
    let moved: u64 = baseline.stats.iter().map(|s| s.stolen_out).sum();
    assert!(moved > 0, "steal thresholds never fired; the differential is vacuous");
    for workers in [2, 4, 8] {
        let run = run_fleet(workers, Some(steal_policy()), &[0, 1]);
        assert_eq!(run, baseline, "kill/restore fleet diverged at {workers} workers");
    }
}

/// The `ServicePlan` facade honours the same contract: a plan with a
/// `parallel` block serializes to the same `ServiceReport` bytes at every
/// worker count, stealing included.
#[test]
fn parallel_service_plan_reports_are_byte_identical() {
    let plan_at = |workers: usize| ServicePlan {
        scenario: ScenarioSpec::Specint { seed: 11 },
        epoch: 400,
        checkpoint_every: Some(1_600),
        max_epochs: 300,
        parallel: Some(FleetPlan { workers: Some(workers), stealing: Some(steal_policy()) }),
        shards: vec![
            ShardPlan {
                name: "hot".into(),
                mapper: HeuristicKind::Pam,
                dropper: DropperKind::heuristic_default(),
                config: config(),
                exec_seed: 7,
                source: hot_source(),
                ingress_capacity: 8,
                backpressure: BackpressurePolicy::Reject,
            },
            ShardPlan {
                name: "cold".into(),
                mapper: HeuristicKind::Pam,
                dropper: DropperKind::heuristic_default(),
                config: config(),
                exec_seed: 8,
                source: cold_source(),
                ingress_capacity: 32,
                backpressure: BackpressurePolicy::Reject,
            },
        ],
    };
    let baseline = plan_at(1).run().expect("plan runs");
    assert!(baseline.idle);
    let baseline_bytes = serde_json::to_string(&baseline).expect("serializable report");
    for workers in [2, 4, 8] {
        let report = plan_at(workers).run().expect("plan runs");
        let bytes = serde_json::to_string(&report).expect("serializable report");
        assert_eq!(bytes, baseline_bytes, "report bytes diverged at {workers} workers");
    }
}
