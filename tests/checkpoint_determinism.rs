//! Checkpoint determinism: resuming a trial from a mid-flight
//! [`Checkpoint`] — including a full serde_json round-trip — must be
//! byte-identical to never having stopped.
//!
//! This is the contract that makes the serving layer's kill/restore
//! invisible, so it is pinned from several angles: a property test that
//! interrupts at a random step under randomly drawn workloads and
//! policies, a failure-injection case (outstanding failure/repair events
//! and epoch counters live in the checkpoint), a double-restore case (a
//! checkpoint is reusable, not consumable), and JSON canonicality
//! (identical states serialize to identical bytes).

use proptest::prelude::*;
use taskdrop::prelude::*;

fn quick_config() -> SimConfig {
    SimConfig { exclude_boundary: 0, ..SimConfig::default() }
}

/// Runs `steps` steps, snapshots through a JSON round-trip, restores, and
/// finishes both cores; returns (uninterrupted, resumed) results.
fn interrupted_vs_straight(
    scenario: &Scenario,
    workload: &Workload,
    dropper: &dyn taskdrop::core::DropPolicy,
    config: SimConfig,
    exec_seed: u64,
    steps: usize,
) -> (TrialResult, TrialResult) {
    let mut straight = SimCore::new(scenario, workload, &Pam, dropper, config, exec_seed)
        .expect("valid straight core");
    let expected = straight.run_to_completion();

    let mut first = SimCore::new(scenario, workload, &Pam, dropper, config, exec_seed)
        .expect("valid interrupted core");
    for _ in 0..steps {
        if first.step().is_drained() {
            break;
        }
    }
    let json = serde_json::to_string(&first.snapshot()).expect("serialize checkpoint");
    drop(first); // the trial is dead; only the checkpoint survives
    let checkpoint: Checkpoint = serde_json::from_str(&json).expect("parse checkpoint");
    let mut resumed =
        SimCore::restore(scenario, &Pam, dropper, &checkpoint).expect("restore checkpoint");
    let resumed_result = resumed.run_to_completion();
    (expected, resumed_result)
}

proptest! {
    // Each case runs two full trials; 12 cases keep this file well under
    // the tier-1 budget (the inputs below bound trials to ~200 tasks).
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resuming_from_a_random_interrupt_is_byte_identical(
        seed in 0u64..1_000,
        tasks in 40usize..200,
        steps in 0usize..400,
        heuristic_dropper in (0u8..2).prop_map(|k| k == 0),
    ) {
        let scenario = Scenario::specint(17);
        let window = (tasks as u64) * 12; // ~2x oversubscription
        let level = OversubscriptionLevel::new("cp", tasks, window);
        let workload = Workload::generate(&scenario, &level, 2.0, seed);
        let heuristic = ProactiveDropper::paper_default();
        let dropper: &dyn taskdrop::core::DropPolicy =
            if heuristic_dropper { &heuristic } else { &ReactiveOnly };
        let (expected, resumed) = interrupted_vs_straight(
            &scenario, &workload, dropper, quick_config(), seed ^ 0xC0FFEE, steps,
        );
        prop_assert_eq!(expected, resumed);
    }
}

/// Failure injection exercises the checkpoint paths a clean run never
/// touches: down machines, bumped epochs, outstanding failure/repair
/// events far past the snapshot, and lost-to-failure fates.
#[test]
fn resuming_under_failure_injection_is_byte_identical() {
    let scenario = Scenario::specint(29);
    let level = OversubscriptionLevel::new("cpf", 150, 1_800);
    let workload = Workload::generate(&scenario, &level, 2.0, 5);
    let config = SimConfig {
        failures: Some(taskdrop::sim::FailureSpec { mtbf: 700, mttr: 150 }),
        ..quick_config()
    };
    let dropper = ProactiveDropper::paper_default();
    for steps in [1, 37, 160] {
        let (expected, resumed) =
            interrupted_vs_straight(&scenario, &workload, &dropper, config, 3, steps);
        assert!(expected.is_conserved());
        assert_eq!(expected, resumed, "diverged after interrupt at step {steps}");
    }
}

/// A checkpoint is a value, not a consumable: restoring it twice gives two
/// cores that finish identically, and the original snapshot is unchanged
/// by either run.
#[test]
fn a_checkpoint_restores_any_number_of_times() {
    let scenario = Scenario::transcode(7);
    let level = OversubscriptionLevel::new("cp2", 120, 2_000);
    let workload = Workload::generate(&scenario, &level, 1.5, 9);
    let dropper = ProactiveDropper::paper_default();
    let mut core = SimCore::new(&scenario, &workload, &Pam, &dropper, quick_config(), 4).unwrap();
    core.run_until(600);
    let checkpoint = core.snapshot();
    let expected = core.run_to_completion();

    let first =
        SimCore::restore(&scenario, &Pam, &dropper, &checkpoint).unwrap().run_to_completion();
    let second =
        SimCore::restore(&scenario, &Pam, &dropper, &checkpoint).unwrap().run_to_completion();
    assert_eq!(first, expected);
    assert_eq!(second, expected);
}

/// Identical states must serialize to identical bytes (snapshots are
/// canonical), and a snapshot of a restored core must equal the
/// checkpoint it came from.
#[test]
fn snapshots_are_canonical_json() {
    let scenario = Scenario::specint(3);
    let level = OversubscriptionLevel::new("cp3", 100, 1_400);
    let workload = Workload::generate(&scenario, &level, 2.0, 2);
    let mut core =
        SimCore::new(&scenario, &workload, &Pam, &ReactiveOnly, quick_config(), 6).unwrap();
    core.run_until(500);
    let a = core.snapshot();
    let b = core.snapshot();
    assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());

    let restored = SimCore::restore(&scenario, &Pam, &ReactiveOnly, &a).unwrap();
    assert_eq!(restored.snapshot(), a, "restore must not perturb the state it loads");
}

/// An open-world core's checkpoint carries injected tasks and revives
/// mid-stream injection: inject, snapshot, restore, inject more, drain.
#[test]
fn open_world_checkpoints_carry_injected_tasks() {
    let scenario = Scenario::specint(13);
    let mut core = SimCore::open(&scenario, &Pam, &ReactiveOnly, quick_config(), 2).unwrap();
    for k in 0..30u64 {
        core.inject(taskdrop::model::TaskTypeId((k % 12) as u16), 20 * k, 20 * k + 700).unwrap();
    }
    core.run_until(250);
    let checkpoint = core.snapshot();
    let expected = core.run_to_completion();

    let mut resumed = SimCore::restore(&scenario, &Pam, &ReactiveOnly, &checkpoint).unwrap();
    assert_eq!(resumed.total_tasks(), 30);
    assert_eq!(resumed.run_to_completion(), expected);

    // And the resumed core keeps accepting new work afterwards.
    let now = resumed.now();
    resumed.inject(taskdrop::model::TaskTypeId(0), now + 10, now + 500).unwrap();
    let extended = resumed.run_to_completion();
    assert_eq!(extended.total_tasks, 31);
    assert!(extended.is_conserved());
}

/// The persistent PET×tail cache (DESIGN.md §13) is *derived* state: a
/// snapshot taken from a warm-cache core serializes to exactly the bytes
/// a cold-cache twin produces, and the warm→restore→run path is
/// byte-identical to the cold run. Nothing about the cache — revisions,
/// entries, counters — may leak into `Checkpoint` v1.
#[test]
fn warm_cache_snapshot_equals_cold_snapshot() {
    let scenario = Scenario::specint(21);
    let level = OversubscriptionLevel::new("cp4", 160, 1_800);
    let workload = Workload::generate(&scenario, &level, 1.0, 5);
    let dropper = ProactiveDropper::paper_default();

    // Warm core: stepping + explicit tail estimates fill the cache.
    let mut warm = SimCore::new(&scenario, &workload, &Pam, &dropper, quick_config(), 5).unwrap();
    warm.run_until(700);
    for m in scenario.machines.clone() {
        let _ = warm.queue_tail_estimate(m.id);
    }
    assert!(warm.cache_stats().lookups() > 0, "the cache must actually be warm");
    let warm_bytes = serde_json::to_string(&warm.snapshot()).unwrap();

    // Cold twin: restored from those bytes, cache empty, snapshot again.
    let checkpoint: Checkpoint = serde_json::from_str(&warm_bytes).unwrap();
    let mut cold = SimCore::restore(&scenario, &Pam, &dropper, &checkpoint).unwrap();
    assert_eq!(cold.cache_stats().lookups(), 0);
    let cold_bytes = serde_json::to_string(&cold.snapshot()).unwrap();
    assert_eq!(warm_bytes, cold_bytes, "cache state leaked into the checkpoint");

    // Warm-cache continuation == cold-cache continuation, byte for byte.
    assert_eq!(warm.run_to_completion(), cold.run_to_completion());
}

/// The serialized `Checkpoint` v1 layout is frozen: exactly the seed
/// PR 3 field set, in which the new cache/revision machinery must never
/// appear. A failure here means the checkpoint format changed — bump
/// `CHECKPOINT_VERSION` and write a migration instead.
#[test]
fn checkpoint_v1_field_set_is_frozen() {
    let scenario = Scenario::specint(3);
    let level = OversubscriptionLevel::new("cp5", 60, 900);
    let workload = Workload::generate(&scenario, &level, 2.0, 2);
    let mut core =
        SimCore::new(&scenario, &workload, &Pam, &ReactiveOnly, quick_config(), 6).unwrap();
    core.run_until(400);
    let json = serde_json::to_string(&core.snapshot()).unwrap();

    // Exactly the v1 field set, present by name…
    for field in [
        "version",
        "scenario_name",
        "scenario_seed",
        "config",
        "exec_seed",
        "now",
        "mapping_events",
        "tasks",
        "fates",
        "batch",
        "machines",
        "events",
        "event_seq",
        // MachineCheckpoint fields:
        "down",
        "busy_ticks",
        "epoch",
        "running",
        "pending",
    ] {
        assert!(json.contains(&format!("\"{field}\":")), "v1 field {field} missing");
    }
    // …and none of the derived-state machinery.
    for forbidden in ["queue_rev", "tail_hits", "tail_misses", "conv_", "cache", "ctx"] {
        assert!(!json.contains(forbidden), "derived state {forbidden} leaked into checkpoint v1");
    }
}
