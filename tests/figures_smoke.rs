//! Smoke-runs the figure grids at `Scale::Quick` and asserts the shapes the
//! paper reports. The `fig*` binaries regenerate the real tables; these
//! tests guard the harness itself against regressions.

use taskdrop_bench::figures;
use taskdrop_bench::Scale;

fn series_mean(rows: &[taskdrop_bench::ResultRow], series: &str, x: &str) -> f64 {
    rows.iter()
        .find(|r| r.series == series && r.x == x)
        .unwrap_or_else(|| panic!("missing cell {series}@{x}"))
        .mean
}

#[test]
fn fig07a_grid_has_expected_shape() {
    let rows = figures::fig07a(Scale::Quick);
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!((0.0..=100.0).contains(&r.mean), "{r:?}");
        assert_eq!(r.trials, Scale::Quick.trials());
    }
    // Without dropping, MSD is the weakest mapper (paper §V-E).
    let msd_bare = series_mean(&rows, "MSD+ReactDrop", "MSD");
    let mm_bare = series_mean(&rows, "MM+ReactDrop", "MM");
    let pam_bare = series_mean(&rows, "PAM+ReactDrop", "PAM");
    assert!(msd_bare < mm_bare && msd_bare < pam_bare, "{msd_bare} {mm_bare} {pam_bare}");
    // With dropping, every mapper improves.
    for mapper in ["MSD", "MM", "PAM"] {
        let with = series_mean(&rows, &format!("{mapper}+Heuristic"), mapper);
        let without = series_mean(&rows, &format!("{mapper}+ReactDrop"), mapper);
        assert!(with > without, "{mapper}: {with} vs {without}");
    }
}

#[test]
fn fig08_grid_has_expected_shape() {
    let (rows, reports) = figures::fig08(Scale::Quick);
    assert_eq!(rows.len(), 9);
    for level in ["20k", "30k", "40k"] {
        let optimal = series_mean(&rows, "PAM+Optimal", level);
        let heuristic = series_mean(&rows, "PAM+Heuristic", level);
        let threshold = series_mean(&rows, "PAM+Threshold", level);
        // Optimal ≈ Heuristic (generous tolerance at quick scale).
        assert!(
            (optimal - heuristic).abs() < 10.0,
            "{level}: optimal {optimal} vs heuristic {heuristic}"
        );
        // Both autonomous variants beat the threshold baseline.
        assert!(heuristic > threshold, "{level}: {heuristic} vs {threshold}");
    }
    // Robustness decays with the oversubscription level.
    let h20 = series_mean(&rows, "PAM+Heuristic", "20k");
    let h40 = series_mean(&rows, "PAM+Heuristic", "40k");
    assert!(h20 > h40);
    assert_eq!(reports.len(), 9);
}

#[test]
fn fig05_effective_depth_rows_complete() {
    let rows = figures::fig05(Scale::Quick);
    // 3 levels x eta in 1..=5.
    assert_eq!(rows.len(), 15);
    let mut xs: Vec<&str> = rows.iter().map(|r| r.x.as_str()).collect();
    xs.sort_unstable();
    xs.dedup();
    assert_eq!(xs, vec!["1", "2", "3", "4", "5"]);
}
