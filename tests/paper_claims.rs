//! The paper's headline qualitative claims, asserted end-to-end at small
//! scale with fixed seeds. These are the "shape" guarantees the benchmark
//! harness reproduces quantitatively at larger scale.
//!
//! Several claims compare overlapping configurations (PAM+Heuristic at
//! 900/5000 appears in four of them), so runs are memoised in a
//! process-wide cache: each distinct configuration is simulated once no
//! matter how many tests consult it. Results are deterministic under the
//! fixed master seed, so sharing cannot couple the tests.

use std::collections::BTreeMap;
use std::sync::{Arc, LazyLock, Mutex, OnceLock};
use taskdrop::prelude::*;

const SEED: u64 = 0xC1A1;
const TRIALS: usize = 4;

static SPECINT: LazyLock<Scenario> = LazyLock::new(|| Scenario::specint(0xA5));
static TRANSCODE: LazyLock<Scenario> = LazyLock::new(|| Scenario::transcode(0xA5));

/// Memoised trial runs, keyed by every input that influences the report.
/// The map lock is held only to look up the per-key cell; the (multi-second)
/// simulation itself runs outside it, so distinct configurations still
/// compute in parallel and a panicking run cannot poison the map for
/// unrelated tests.
type ReportCell = Arc<OnceLock<Arc<SimReport>>>;

static CACHE: LazyLock<Mutex<BTreeMap<String, ReportCell>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

fn report(
    scenario: &Scenario,
    mapper: HeuristicKind,
    dropper: DropperKind,
    tasks: usize,
    window: u64,
) -> Arc<SimReport> {
    let key = format!("{}|{mapper:?}|{dropper:?}|{tasks}|{window}", scenario.name);
    let cell = {
        let mut cache = CACHE.lock().expect("cache lock");
        Arc::clone(cache.entry(key).or_default())
    };
    Arc::clone(cell.get_or_init(|| {
        let spec = RunSpec {
            level: OversubscriptionLevel::new("claim", tasks, window),
            gamma: 1.0,
            mapper,
            dropper,
            config: SimConfig { exclude_boundary: 20, ..SimConfig::default() },
        };
        Arc::new(TrialRunner::new(TRIALS, SEED).try_run(scenario, &spec).expect("valid claim spec"))
    }))
}

fn robustness_mean(r: &SimReport) -> f64 {
    r.robustness().expect("trials > 0").mean
}

/// Claim (abstract): "the autonomous proactive dropping mechanism can
/// improve the system robustness by up to 20 %".
#[test]
fn proactive_dropping_improves_robustness_in_overload() {
    let with = report(&SPECINT, HeuristicKind::Pam, DropperKind::heuristic_default(), 900, 5_000);
    let without = report(&SPECINT, HeuristicKind::Pam, DropperKind::ReactiveOnly, 900, 5_000);
    let gain = robustness_mean(&with) - robustness_mean(&without);
    assert!(
        gain > 5.0,
        "expected a clear robustness gain, got {:.1} ({} vs {})",
        gain,
        with.robustness().unwrap(),
        without.robustness().unwrap()
    );
}

/// Claim (§V-F): "regardless of the oversubscription level, there is no
/// statistically and practically significant difference" between
/// PAM+Optimal and PAM+Heuristic.
#[test]
fn optimal_and_heuristic_are_practically_equal() {
    let heuristic =
        report(&SPECINT, HeuristicKind::Pam, DropperKind::heuristic_default(), 700, 4_000);
    let optimal = report(&SPECINT, HeuristicKind::Pam, DropperKind::Optimal, 700, 4_000);
    let diff = (robustness_mean(&optimal) - robustness_mean(&heuristic)).abs();
    assert!(
        diff < 6.0,
        "optimal {} vs heuristic {} differ by {diff:.1} points",
        optimal.robustness().unwrap(),
        heuristic.robustness().unwrap()
    );
}

/// Claim (§V-E): with proactive dropping in place, MSD/MM/PAM converge to
/// almost the same robustness; without it MSD falls far behind.
#[test]
fn dropping_equalises_mapping_heuristics() {
    let mut with = Vec::new();
    let mut without = Vec::new();
    for mapper in [HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam] {
        with.push(robustness_mean(&report(
            &SPECINT,
            mapper,
            DropperKind::heuristic_default(),
            900,
            5_000,
        )));
        without.push(robustness_mean(&report(
            &SPECINT,
            mapper,
            DropperKind::ReactiveOnly,
            900,
            5_000,
        )));
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(
        spread(&with) < spread(&without),
        "dropping should shrink the spread: with {with:?} vs without {without:?}"
    );
    // MSD specifically is the weakest without dropping.
    assert!(
        without[0] < without[1] && without[0] < without[2],
        "MSD must trail MM/PAM without dropping: {without:?}"
    );
}

/// Claim (§V-F): with proactive dropping engaged, only a small share of
/// drops happen reactively (the paper reports ≈7 %).
#[test]
fn reactive_share_is_small_under_proactive_dropping() {
    let r = report(&SPECINT, HeuristicKind::Pam, DropperKind::heuristic_default(), 900, 5_000);
    let share = r.reactive_drop_fraction().expect("oversubscribed: drops happen");
    assert!(
        share.mean < 0.25,
        "reactive share {:.1} % too high for a proactive mechanism",
        share.mean * 100.0
    );
}

/// Claim (Figure 6 direction): raising β makes the dropper more conservative
/// — fewer proactive drops.
#[test]
fn beta_controls_aggression() {
    let drops_at = |beta: f64| {
        let r = report(
            &SPECINT,
            HeuristicKind::Pam,
            DropperKind::Heuristic { beta, eta: 2 },
            700,
            4_000,
        );
        r.trials.iter().map(|t| t.dropped_proactive).sum::<usize>()
    };
    let aggressive = drops_at(1.0);
    let conservative = drops_at(4.0);
    assert!(
        aggressive > conservative,
        "beta=1 should drop more than beta=4: {aggressive} vs {conservative}"
    );
}

/// Claim (Figure 9 direction): dropping-based PAM costs less per robustness
/// point than MinMin without proactive dropping.
#[test]
fn dropping_lowers_normalised_cost() {
    let pam = report(&SPECINT, HeuristicKind::Pam, DropperKind::heuristic_default(), 900, 5_000);
    let mm = report(&SPECINT, HeuristicKind::MinMin, DropperKind::ReactiveOnly, 900, 5_000);
    let (pam_cost, mm_cost) = (
        pam.cost_per_robustness().expect("trials").mean,
        mm.cost_per_robustness().expect("trials").mean,
    );
    assert!(
        pam_cost < mm_cost,
        "PAM+Heuristic {pam_cost:.4} should undercut MM+ReactDrop {mm_cost:.4}"
    );
}

/// Claim (Figure 10): the video-transcoding validation scenario reproduces
/// the equalisation observation.
#[test]
fn transcode_validation_holds() {
    let mut gains = Vec::new();
    for mapper in [HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam] {
        let with = report(&TRANSCODE, mapper, DropperKind::heuristic_default(), 800, 6_500);
        let without = report(&TRANSCODE, mapper, DropperKind::ReactiveOnly, 800, 6_500);
        gains.push(robustness_mean(&with) - robustness_mean(&without));
    }
    assert!(
        gains.iter().all(|&g| g > -2.0),
        "proactive dropping should not hurt any transcode mapper: {gains:?}"
    );
    assert!(
        gains.iter().any(|&g| g > 3.0),
        "proactive dropping should clearly help at least one mapper: {gains:?}"
    );
}
