//! The paper's headline qualitative claims, asserted end-to-end at small
//! scale with fixed seeds. These are the "shape" guarantees the benchmark
//! harness reproduces quantitatively at larger scale.

use taskdrop::prelude::*;

const SEED: u64 = 0xC1A1;

fn runner() -> TrialRunner {
    TrialRunner::new(4, SEED)
}

fn spec(mapper: HeuristicKind, dropper: DropperKind, tasks: usize, window: u64) -> RunSpec {
    RunSpec {
        level: OversubscriptionLevel::new("claim", tasks, window),
        gamma: 1.0,
        mapper,
        dropper,
        config: SimConfig { exclude_boundary: 20, ..SimConfig::default() },
    }
}

/// Claim (abstract): "the autonomous proactive dropping mechanism can
/// improve the system robustness by up to 20 %".
#[test]
fn proactive_dropping_improves_robustness_in_overload() {
    let scenario = Scenario::specint(0xA5);
    let with = runner()
        .run(&scenario, &spec(HeuristicKind::Pam, DropperKind::heuristic_default(), 900, 5_000));
    let without =
        runner().run(&scenario, &spec(HeuristicKind::Pam, DropperKind::ReactiveOnly, 900, 5_000));
    let gain = with.robustness().mean - without.robustness().mean;
    assert!(
        gain > 5.0,
        "expected a clear robustness gain, got {:.1} ({} vs {})",
        gain,
        with.robustness(),
        without.robustness()
    );
}

/// Claim (§V-F): "regardless of the oversubscription level, there is no
/// statistically and practically significant difference" between
/// PAM+Optimal and PAM+Heuristic.
#[test]
fn optimal_and_heuristic_are_practically_equal() {
    let scenario = Scenario::specint(0xA5);
    let heuristic = runner()
        .run(&scenario, &spec(HeuristicKind::Pam, DropperKind::heuristic_default(), 700, 4_000));
    let optimal =
        runner().run(&scenario, &spec(HeuristicKind::Pam, DropperKind::Optimal, 700, 4_000));
    let diff = (optimal.robustness().mean - heuristic.robustness().mean).abs();
    assert!(
        diff < 6.0,
        "optimal {} vs heuristic {} differ by {diff:.1} points",
        optimal.robustness(),
        heuristic.robustness()
    );
}

/// Claim (§V-E): with proactive dropping in place, MSD/MM/PAM converge to
/// almost the same robustness; without it MSD falls far behind.
#[test]
fn dropping_equalises_mapping_heuristics() {
    let scenario = Scenario::specint(0xA5);
    let mut with = Vec::new();
    let mut without = Vec::new();
    for mapper in [HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam] {
        with.push(
            runner()
                .run(&scenario, &spec(mapper, DropperKind::heuristic_default(), 900, 5_000))
                .robustness()
                .mean,
        );
        without.push(
            runner()
                .run(&scenario, &spec(mapper, DropperKind::ReactiveOnly, 900, 5_000))
                .robustness()
                .mean,
        );
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(
        spread(&with) < spread(&without),
        "dropping should shrink the spread: with {with:?} vs without {without:?}"
    );
    // MSD specifically is the weakest without dropping.
    assert!(
        without[0] < without[1] && without[0] < without[2],
        "MSD must trail MM/PAM without dropping: {without:?}"
    );
}

/// Claim (§V-F): with proactive dropping engaged, only a small share of
/// drops happen reactively (the paper reports ≈7 %).
#[test]
fn reactive_share_is_small_under_proactive_dropping() {
    let scenario = Scenario::specint(0xA5);
    let report = runner()
        .run(&scenario, &spec(HeuristicKind::Pam, DropperKind::heuristic_default(), 900, 5_000));
    let share = report.reactive_drop_fraction().expect("oversubscribed: drops happen");
    assert!(
        share.mean < 0.25,
        "reactive share {:.1} % too high for a proactive mechanism",
        share.mean * 100.0
    );
}

/// Claim (Figure 6 direction): raising β makes the dropper more conservative
/// — fewer proactive drops.
#[test]
fn beta_controls_aggression() {
    let scenario = Scenario::specint(0xA5);
    let drops_at = |beta: f64| {
        let report = runner().run(
            &scenario,
            &spec(HeuristicKind::Pam, DropperKind::Heuristic { beta, eta: 2 }, 700, 4_000),
        );
        report.trials.iter().map(|t| t.dropped_proactive).sum::<usize>()
    };
    let aggressive = drops_at(1.0);
    let conservative = drops_at(4.0);
    assert!(
        aggressive > conservative,
        "beta=1 should drop more than beta=4: {aggressive} vs {conservative}"
    );
}

/// Claim (Figure 9 direction): dropping-based PAM costs less per robustness
/// point than MinMin without proactive dropping.
#[test]
fn dropping_lowers_normalised_cost() {
    let scenario = Scenario::specint(0xA5);
    let pam = runner()
        .run(&scenario, &spec(HeuristicKind::Pam, DropperKind::heuristic_default(), 900, 5_000));
    let mm = runner()
        .run(&scenario, &spec(HeuristicKind::MinMin, DropperKind::ReactiveOnly, 900, 5_000));
    assert!(
        pam.cost_per_robustness().mean < mm.cost_per_robustness().mean,
        "PAM+Heuristic {:.4} should undercut MM+ReactDrop {:.4}",
        pam.cost_per_robustness().mean,
        mm.cost_per_robustness().mean
    );
}

/// Claim (Figure 10): the video-transcoding validation scenario reproduces
/// the equalisation observation.
#[test]
fn transcode_validation_holds() {
    let scenario = Scenario::transcode(0xA5);
    let mut gains = Vec::new();
    for mapper in [HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam] {
        let with =
            runner().run(&scenario, &spec(mapper, DropperKind::heuristic_default(), 800, 6_500));
        let without = runner().run(&scenario, &spec(mapper, DropperKind::ReactiveOnly, 800, 6_500));
        gains.push(with.robustness().mean - without.robustness().mean);
    }
    assert!(
        gains.iter().all(|&g| g > -2.0),
        "proactive dropping should not hurt any transcode mapper: {gains:?}"
    );
    assert!(
        gains.iter().any(|&g| g > 3.0),
        "proactive dropping should clearly help at least one mapper: {gains:?}"
    );
}
