//! Reproduces the paper's Figure 2 worked example through the public API,
//! end to end: raw PMFs -> deadline-aware convolution -> queue chain.

use taskdrop::model::queue::{chain, ChainTask};
use taskdrop::prelude::*;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

#[test]
fn figure2_exact_impulses() {
    let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
    let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
    let c = deadline_convolve(&prev, &exec, 13);

    let expected = [(11u64, 0.36), (12, 0.42), (13, 0.20), (14, 0.02)];
    let got = c.to_pairs();
    assert_eq!(got.len(), expected.len());
    for ((t, p), (et, ep)) in got.iter().zip(expected.iter()) {
        assert_eq!(t, et);
        assert!(close(*p, *ep), "at t={t}: {p} vs {ep}");
    }
    assert!(close(chance_of_success(&c, 13), 0.78));
}

#[test]
fn figure2_through_queue_chain() {
    // The same numbers must fall out of the higher-level chain API used by
    // the dropping policies.
    let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
    let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
    let links = chain(&prev, &[ChainTask { deadline: 13, exec: &exec }], Compaction::None);
    assert_eq!(links.len(), 1);
    assert!(close(links[0].chance, 0.78));
    assert!(close(links[0].completion.at(11), 0.36));
    assert!(close(links[0].completion.at(14), 0.02));
}

#[test]
fn figure2_is_compaction_safe() {
    // The default compaction must not disturb a 4-impulse PMF.
    let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
    let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
    let links = chain(&prev, &[ChainTask { deadline: 13, exec: &exec }], Compaction::default());
    assert!(close(links[0].chance, 0.78));
    assert_eq!(links[0].completion.len(), 4);
}
