//! Histogram discretisation of continuous samples into integer-tick impulses.
//!
//! The paper: *"Once the sample execution times were generated, we applied a
//! histogram to discretize the result and produce PMFs."* This module turns a
//! batch of positive samples (milliseconds as `f64`) into `(tick, mass)`
//! pairs ready to become a `Pmf`. It deliberately does **not** depend on the
//! `taskdrop-pmf` crate — the caller constructs the PMF — so the stats crate
//! stays reusable.

use serde::{Deserialize, Serialize};

/// A histogram over positive samples, with equal-width bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    lo: f64,
    /// Bin width (> 0).
    width: f64,
    /// Sample count per bin.
    counts: Vec<u64>,
    /// Total number of samples.
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample
    /// range. Non-finite samples are rejected; all samples must be `>= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `samples` is empty, or any sample is negative
    /// or non-finite.
    #[must_use]
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(!samples.is_empty(), "histogram needs at least one sample");
        assert!(
            samples.iter().all(|s| s.is_finite() && *s >= 0.0),
            "samples must be finite and non-negative"
        );
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(f64::EPSILON);
        let width = span / bins as f64;
        let mut counts = vec![0u64; bins];
        for &s in samples {
            let mut idx = ((s - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1; // s == hi lands in the last bin
            }
            counts[idx] += 1;
        }
        Histogram { lo, width, counts, total: samples.len() as u64 }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i` (as a float).
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Converts to `(tick, mass)` pairs: each non-empty bin becomes one
    /// impulse at its rounded center (clamped to at least `min_tick`), with
    /// mass `count / total`. Pairs whose centers round to the same tick are
    /// emitted as-is; `Pmf::from_impulses` coalesces them.
    #[must_use]
    pub fn to_mass_pairs(&self, min_tick: u64) -> Vec<(u64, f64)> {
        let total = self.total as f64;
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let center = self.bin_center(i).round().max(min_tick as f64) as u64;
                (center, c as f64 / total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_mass_sum() {
        let samples = vec![1.0, 2.0, 2.5, 3.0, 10.0];
        let h = Histogram::from_samples(&samples, 4);
        assert_eq!(h.total(), 5);
        let pairs = h.to_mass_pairs(1);
        let mass: f64 = pairs.iter().map(|&(_, m)| m).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_sample_lands_in_last_bin() {
        let samples = vec![0.0, 10.0];
        let h = Histogram::from_samples(&samples, 5);
        assert_eq!(h.bins(), 5);
        let pairs = h.to_mass_pairs(0);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 1); // center of [0,2) = 1
        assert_eq!(pairs[1].0, 9); // center of [8,10] = 9
    }

    #[test]
    fn identical_samples_single_impulse() {
        let samples = vec![7.3; 100];
        let h = Histogram::from_samples(&samples, 10);
        let pairs = h.to_mass_pairs(1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 7);
        assert!((pairs[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_tick_clamps_small_centers() {
        let samples = vec![0.0, 0.1, 0.2];
        let h = Histogram::from_samples(&samples, 2);
        let pairs = h.to_mass_pairs(1);
        assert!(pairs.iter().all(|&(t, _)| t >= 1));
    }

    #[test]
    fn mean_preserved_approximately() {
        // Uniform-ish spread: histogram mean should track the sample mean
        // within a bin width.
        let samples: Vec<f64> = (0..1000).map(|i| 50.0 + (i % 100) as f64).collect();
        let h = Histogram::from_samples(&samples, 25);
        let pairs = h.to_mass_pairs(1);
        let hist_mean: f64 = pairs.iter().map(|&(t, m)| t as f64 * m).sum();
        let sample_mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let width = 100.0 / 25.0;
        assert!((hist_mean - sample_mean).abs() < width, "{hist_mean} vs {sample_mean}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        let _ = Histogram::from_samples(&[], 4);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = Histogram::from_samples(&[-1.0], 4);
    }
}
