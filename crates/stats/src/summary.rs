//! Summary statistics: mean, standard deviation, Student-t 95 % confidence
//! intervals (the paper reports "the mean and 95% confidence interval" over
//! 30 workload trials), and Welford's online accumulator.

use serde::{Deserialize, Serialize};

/// Two-sided 95 % Student-t critical values for small degrees of freedom;
/// index = df - 1. Falls back to interpolation / the normal value beyond.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom.
#[must_use]
pub fn t_critical_95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T95[df - 1],
        31..=40 => lerp(2.042, 2.021, (df - 30) as f64 / 10.0),
        41..=60 => lerp(2.021, 2.000, (df - 40) as f64 / 20.0),
        61..=120 => lerp(2.000, 1.980, (df - 60) as f64 / 60.0),
        _ => 1.960,
    }
}

fn lerp(a: f64, b: f64, x: f64) -> f64 {
    a + (b - a) * x
}

/// Summary of a batch of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the two-sided 95 % confidence interval of the mean
    /// (0 for n < 2).
    pub ci95: f64,
}

impl Summary {
    /// Summarises a non-empty slice of observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise zero observations");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary { n, mean, std_dev: 0.0, ci95: 0.0 };
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let ci95 = t_critical_95(n - 1) * std_dev / (n as f64).sqrt();
        Summary { n, mean, std_dev, ci95 }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.ci95)
    }
}

/// Convenience: `(mean, ci95 half-width)` of a slice.
#[must_use]
pub fn mean_ci95(values: &[f64]) -> (f64, f64) {
    let s = Summary::of(values);
    (s.mean, s.ci95)
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`None` before any observation).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Bessel-corrected sample variance (`None` before two observations).
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n as f64 - 1.0))
    }

    /// Sample standard deviation (`None` before two observations).
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn summary_known_values() {
        // Values 1..=5: mean 3, sample std sqrt(2.5).
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        // ci95 = t(4) * std / sqrt(5) = 2.776 * 1.5811 / 2.2360
        let expect = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-9);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn t_critical_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..=200 {
            let t = t_critical_95(df);
            assert!(t <= prev + 1e-12, "df={df}");
            prev = t;
        }
        assert!((t_critical_95(29) - 2.045).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn welford_matches_batch() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut w = Welford::new();
        for &v in &values {
            w.push(v);
        }
        let s = Summary::of(&values);
        assert!((w.mean().unwrap() - s.mean).abs() < 1e-9);
        assert!((w.std_dev().unwrap() - s.std_dev).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (50..100).map(|i| i as f64 * 2.0).collect();
        let mut w1 = Welford::new();
        a.iter().for_each(|&v| w1.push(v));
        let mut w2 = Welford::new();
        b.iter().for_each(|&v| w2.push(v));
        w1.merge(&w2);

        let mut seq = Welford::new();
        a.iter().chain(b.iter()).for_each(|&v| seq.push(v));
        assert_eq!(w1.count(), seq.count());
        assert!((w1.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-9);
        assert!((w1.variance().unwrap() - seq.variance().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn welford_empty_merge() {
        let mut w = Welford::new();
        w.merge(&Welford::new());
        assert_eq!(w.count(), 0);
        let mut w2 = Welford::new();
        w2.push(1.0);
        let mut empty = Welford::new();
        empty.merge(&w2);
        assert_eq!(empty.mean(), Some(1.0));
    }
}
