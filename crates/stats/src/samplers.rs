//! Distribution samplers built directly on `rand`'s uniform source.
//!
//! The `rand_distr` crate is outside the approved dependency set, so the
//! classic algorithms are implemented here: Box–Muller for the Normal
//! distribution and Marsaglia–Tsang ("a simple method for generating gamma
//! variables", 2000) for the Gamma distribution. Both are exact samplers,
//! not approximations.

use rand::Rng;

/// Standard-normal sampler via the Box–Muller transform.
///
/// Stateless: each call draws two uniforms and returns one variate. (The
/// second Box–Muller variate is discarded to keep the sampler allocation-
/// and state-free; the uniform draws are cheap relative to the simulator.)
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalSampler;

impl NormalSampler {
    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws a normal variate with the given mean and standard deviation.
    pub fn sample_with<R: Rng + ?Sized>(&self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample(rng)
    }
}

/// Gamma sampler (shape `k`, scale `theta`) using Marsaglia–Tsang.
///
/// Mean is `k * theta`, variance `k * theta^2`. The paper draws execution
/// times from Gamma distributions whose mean comes from SPECint measurements
/// and whose scale parameter is uniform in `[1, 20]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaSampler {
    shape: f64,
    scale: f64,
}

impl GammaSampler {
    /// Creates a sampler with the given shape `k > 0` and scale `theta > 0`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not finite and positive.
    #[must_use]
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "gamma shape must be > 0");
        assert!(scale.is_finite() && scale > 0.0, "gamma scale must be > 0");
        GammaSampler { shape, scale }
    }

    /// Creates a sampler from a target mean and scale: `shape = mean / scale`.
    #[must_use]
    pub fn from_mean_scale(mean: f64, scale: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "gamma mean must be > 0");
        GammaSampler::new(mean / scale, scale)
    }

    /// Distribution mean `k * theta`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Distribution variance `k * theta^2`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Draws one Gamma variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: X ~ Gamma(k+1), return X * U^(1/k).
            let boosted = GammaSampler { shape: self.shape + 1.0, scale: self.scale };
            let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = NormalSampler;
        loop {
            let x = normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v * self.scale;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }

    /// Draws `n` variates into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Exponential sampler with rate `lambda` (mean `1 / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialSampler {
    rate: f64,
}

impl ExponentialSampler {
    /// Creates a sampler with rate `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "exponential rate must be > 0");
        ExponentialSampler { rate }
    }

    /// Distribution mean `1 / lambda`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one exponential variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.rate
    }
}

/// Homogeneous Poisson arrival process: arrival *times* with exponential
/// inter-arrival gaps at `rate` events per tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    exp: ExponentialSampler,
}

impl PoissonProcess {
    /// Creates a process with the given arrival rate (events per tick).
    #[must_use]
    pub fn new(rate: f64) -> Self {
        PoissonProcess { exp: ExponentialSampler::new(rate) }
    }

    /// Generates the first `n` arrival times (ticks, rounded, non-decreasing,
    /// starting after tick 0).
    pub fn arrival_ticks<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            t += self.exp.sample(rng);
            out.push(t.round() as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;

    #[test]
    fn normal_moments() {
        let mut rng = new_rng(1);
        let n = NormalSampler;
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = new_rng(2);
        let g = GammaSampler::new(7.5, 12.0);
        let samples = g.sample_n(&mut rng, 50_000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - g.mean()).abs() / g.mean() < 0.02, "mean {mean} vs {}", g.mean());
        assert!((var - g.variance()).abs() / g.variance() < 0.08, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = new_rng(3);
        let g = GammaSampler::new(0.5, 4.0);
        let samples = g.sample_n(&mut rng, 100_000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - g.mean()).abs() / g.mean() < 0.03, "mean {mean} vs {}", g.mean());
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_from_mean_scale() {
        let g = GammaSampler::from_mean_scale(120.0, 10.0);
        assert!((g.mean() - 120.0).abs() < 1e-12);
        assert!((g.variance() - 1200.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_samples_positive() {
        let mut rng = new_rng(4);
        let g = GammaSampler::new(2.0, 3.0);
        assert!(g.sample_n(&mut rng, 10_000).iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "gamma shape must be > 0")]
    fn gamma_rejects_zero_shape() {
        let _ = GammaSampler::new(0.0, 1.0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = new_rng(5);
        let e = ExponentialSampler::new(0.25);
        let samples: Vec<f64> = (0..50_000).map(|_| e.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_arrivals_monotone_and_rate() {
        let mut rng = new_rng(6);
        let p = PoissonProcess::new(0.1); // one arrival per 10 ticks
        let ticks = p.arrival_ticks(&mut rng, 20_000);
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
        let horizon = *ticks.last().unwrap() as f64;
        let rate = ticks.len() as f64 / horizon;
        assert!((rate - 0.1).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn samplers_deterministic_under_seed() {
        let g = GammaSampler::new(3.0, 2.0);
        let a = g.sample_n(&mut new_rng(7), 100);
        let b = g.sample_n(&mut new_rng(7), 100);
        assert_eq!(a, b);
    }
}
