//! Seeding utilities.
//!
//! Every stochastic component in the workspace is seeded through
//! [`derive_seed`], a SplitMix64 mix of a master seed and a stream index.
//! This gives independent, reproducible streams for parallel trials without
//! any shared state: trial *k* of experiment *e* always sees the same random
//! numbers, regardless of thread count or execution order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used throughout the workspace (ChaCha12 behind `StdRng`).
pub type Rng64 = StdRng;

/// Creates the workspace RNG from a 64-bit seed.
#[must_use]
pub fn new_rng(seed: u64) -> Rng64 {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from `(master, stream)` using two
/// SplitMix64 steps. Distinct streams yield uncorrelated sequences.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(master).wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_differs_across_streams() {
        let seeds: Vec<u64> = (0..100).map(|s| derive_seed(42, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn derive_seed_differs_across_masters() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn rng_reproducible() {
        let mut a = new_rng(123);
        let mut b = new_rng(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
