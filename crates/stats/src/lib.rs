//! Statistical substrate for the `taskdrop` workspace.
//!
//! The paper generates execution-time PMFs by sampling Gamma distributions
//! (mean from SPECint measurements, scale uniform in `[1, 20]`, 500 samples)
//! and discretising the samples with a histogram; workloads arrive through a
//! Poisson-like process; every reported number is a mean with a 95 %
//! confidence interval over 30 trials. This crate provides exactly those
//! tools, all deterministic under a seed:
//!
//! * [`GammaSampler`], [`NormalSampler`], [`ExponentialSampler`] — classic
//!   samplers built on `rand`'s uniform source (Marsaglia–Tsang for Gamma,
//!   Box–Muller for Normal), since distribution crates are out of scope.
//! * [`PoissonProcess`] — arrival-time generation via exponential
//!   inter-arrival times.
//! * [`Histogram`] — sample discretisation into `(tick, mass)` impulses.
//! * [`Summary`] / [`Welford`] — mean, standard deviation and Student-t 95 %
//!   confidence intervals.
//! * [`derive_seed`] — SplitMix64 seed derivation so parallel trials get
//!   independent, reproducible streams.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod histogram;
mod rng;
mod samplers;
mod summary;

pub use histogram::Histogram;
pub use rng::{derive_seed, new_rng, Rng64};
pub use samplers::{ExponentialSampler, GammaSampler, NormalSampler, PoissonProcess};
pub use summary::{mean_ci95, t_critical_95, Summary, Welford};
