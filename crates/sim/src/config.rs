//! Simulation configuration.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use taskdrop_core::{DropPolicy, OptimalDropper, ProactiveDropper, ReactiveOnly, ThresholdDropper};
use taskdrop_pmf::Compaction;

/// Machine failure injection (the paper's future-work "resource failure"
/// compound uncertainty, built as an extension — see DESIGN.md §7).
///
/// Each machine independently alternates between up and down periods with
/// exponentially distributed durations. A failure kills the running task
/// (it is lost); queued tasks stay mapped (the system model forbids
/// remapping) and age towards their deadlines while the machine is repaired.
/// Schedulers are *not* told about failures — they are one more source of
/// uncertainty perturbing the PET-based estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Mean time between failures per machine, in ticks (exponential).
    pub mtbf: u64,
    /// Mean repair duration, in ticks (exponential).
    pub mttr: u64,
}

impl FailureSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// [`SimError::DegenerateFailureSpec`] if either duration is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.mtbf == 0 || self.mttr == 0 {
            return Err(SimError::DegenerateFailureSpec { mtbf: self.mtbf, mttr: self.mttr });
        }
        Ok(())
    }

    /// Steady-state availability `mtbf / (mtbf + mttr)`.
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.mtbf as f64 / (self.mtbf + self.mttr) as f64
    }
}

/// Engine configuration knobs (the paper's Section V-A setup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine-queue capacity *including* the running task (paper: 6).
    pub queue_size: usize,
    /// PMF compaction policy used for all completion-time chains.
    pub compaction: Compaction,
    /// Number of tasks excluded from metrics at each end of the trial
    /// (paper: first and last 100).
    pub exclude_boundary: usize,
    /// Reactively kill the *running* task the moment its deadline passes
    /// (the paper's live-video model: "there is no value in executing tasks
    /// that have missed their deadlines and such tasks should be dropped to
    /// maintain liveness"). Disable for the ablation where started tasks
    /// always run to completion and late finishes waste capacity.
    #[serde(default = "default_true")]
    pub kill_running_at_deadline: bool,
    /// Optional machine failure injection.
    #[serde(default)]
    pub failures: Option<FailureSpec>,
    /// Optional approximate computing (degrade instead of drop); see
    /// [`taskdrop_model::approx`].
    #[serde(default)]
    pub approx: Option<taskdrop_model::ApproxSpec>,
}

fn default_true() -> bool {
    true
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_size: 6,
            compaction: Compaction::default(),
            exclude_boundary: 100,
            kill_running_at_deadline: true,
            failures: None,
            approx: None,
        }
    }
}

impl SimConfig {
    /// Validates invariants (queue size at least 1, failure spec sane).
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroQueueSize`] if `queue_size == 0`,
    /// [`SimError::DegenerateFailureSpec`] if the failure spec is
    /// degenerate.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.queue_size == 0 {
            return Err(SimError::ZeroQueueSize);
        }
        if let Some(f) = &self.failures {
            f.validate()?;
        }
        Ok(())
    }
}

/// Serializable constructor for dropping policies, so experiment configs can
/// name them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DropperKind {
    /// No proactive dropping (reactive only).
    ReactiveOnly,
    /// The approximate-computing extension: degrade to a cheaper variant
    /// when that salvages more utility than dropping (requires
    /// `SimConfig::approx` to be set for degradation to engage).
    Approx {
        /// Robustness improvement factor (≥ 1).
        beta: f64,
        /// Effective depth (≥ 1).
        eta: usize,
    },
    /// The paper's proactive heuristic with parameters β and η.
    Heuristic {
        /// Robustness improvement factor (≥ 1).
        beta: f64,
        /// Effective depth (≥ 1).
        eta: usize,
    },
    /// The paper's optimal subset search.
    Optimal,
    /// The prior-work threshold baseline with its base threshold.
    Threshold {
        /// Base chance-of-success threshold in `[0, 1]`.
        base: f64,
    },
}

impl DropperKind {
    /// The paper-default heuristic (β = 1, η = 2).
    #[must_use]
    pub fn heuristic_default() -> Self {
        DropperKind::Heuristic { beta: 1.0, eta: 2 }
    }

    /// Instantiates the policy.
    #[must_use]
    pub fn build(&self) -> Box<dyn DropPolicy> {
        match *self {
            DropperKind::ReactiveOnly => Box::new(ReactiveOnly),
            DropperKind::Approx { beta, eta } => {
                Box::new(taskdrop_core::ApproxDropper::new(beta, eta))
            }
            DropperKind::Heuristic { beta, eta } => Box::new(ProactiveDropper::new(beta, eta)),
            DropperKind::Optimal => Box::new(OptimalDropper::new()),
            DropperKind::Threshold { base } => Box::new(ThresholdDropper::new(base)),
        }
    }

    /// Display label used in figures (matches the paper's legends).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DropperKind::ReactiveOnly => "ReactDrop",
            DropperKind::Approx { .. } => "Approx",
            DropperKind::Heuristic { .. } => "Heuristic",
            DropperKind::Optimal => "Optimal",
            DropperKind::Threshold { .. } => "Threshold",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.queue_size, 6);
        assert_eq!(c.exclude_boundary, 100);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn dropper_kinds_build_expected_policies() {
        assert_eq!(DropperKind::ReactiveOnly.build().name(), "ReactDrop");
        assert_eq!(DropperKind::heuristic_default().build().name(), "Heuristic");
        assert_eq!(DropperKind::Optimal.build().name(), "Optimal");
        assert_eq!(DropperKind::Threshold { base: 0.25 }.build().name(), "Threshold");
    }

    #[test]
    fn serde_roundtrip() {
        let k = DropperKind::Heuristic { beta: 1.5, eta: 3 };
        let json = serde_json::to_string(&k).unwrap();
        let back: DropperKind = serde_json::from_str(&json).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn zero_queue_rejected() {
        let err = SimConfig { queue_size: 0, ..SimConfig::default() }.validate();
        assert_eq!(err, Err(SimError::ZeroQueueSize));
    }

    #[test]
    fn degenerate_failure_spec_rejected() {
        let cfg =
            SimConfig { failures: Some(FailureSpec { mtbf: 0, mttr: 10 }), ..SimConfig::default() };
        assert_eq!(cfg.validate(), Err(SimError::DegenerateFailureSpec { mtbf: 0, mttr: 10 }));
        assert!((FailureSpec { mtbf: 900, mttr: 100 }).validate().is_ok());
    }
}
