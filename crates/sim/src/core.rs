//! The resumable simulation core: an explicit-lifecycle state machine.
//!
//! [`SimCore`] owns one trial's complete state — machines, queues, the event
//! heap, and per-task fate accounting — and advances it one *mapping event*
//! at a time via [`SimCore::step`]. This replaces the batch-only
//! `Simulation::run()` entry point (now a thin wrapper) with a lifecycle
//! that production-style drivers need:
//!
//! * [`SimCore::step`] — process the next event timestamp (all simultaneous
//!   events, then one mapping event), returning a [`StepOutcome`];
//! * [`SimCore::run_until`] — step while events at or before a tick remain;
//! * [`SimCore::inject`] — admit a task *after* construction (open-world
//!   arrivals: the paper frames dropping as an online decision made at each
//!   mapping event, so tasks need not be known up front);
//! * [`SimCore::state`] — a read-only snapshot of queues and machines
//!   mid-trial;
//! * [`SimObserver`]s attached with [`SimCore::attach`] — a streaming view
//!   of every map/start/complete/drop/degrade/kill/failure/repair decision.
//!
//! Stepping a core to completion is **byte-identical** to the legacy batch
//! run for the same inputs (enforced by `tests/core_equivalence.rs`):
//! observers are strictly read-only and the event-processing order is
//! exactly the old run loop's. One deliberate exception: a *zero-task*
//! workload (impossible via `Workload::generate`, whose levels require at
//! least one task) drains immediately at t = 0, whereas the pre-redesign
//! loop would first process the earliest failure-timeline event if failure
//! injection was configured.

use crate::checkpoint::{
    Checkpoint, EventEntry, MachineCheckpoint, QueuedCheckpoint, RunningCheckpoint,
    CHECKPOINT_VERSION,
};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::event::{Event, EventQueue};
use crate::metrics::{TaskFate, TrialResult};
use crate::observer::{DropKind, ObserverHub, SimEvent, SimObserver};
use std::collections::VecDeque;
use taskdrop_core::DropPolicy;
use taskdrop_model::ctx::{CacheStats, PolicyCtx};
use taskdrop_model::queue as qchain;
use taskdrop_model::view::{
    DropContext, MachineView, MappingInput, PendingView, QueueView, RunningView, UnmappedView,
};
use taskdrop_model::{Machine, MachineId, PetMatrix, Task, TaskId, TaskTypeId};
use taskdrop_pmf::{Pmf, Tick};
use taskdrop_sched::MappingHeuristic;
use taskdrop_stats::{derive_seed, new_rng};
use taskdrop_workload::{Scenario, Workload};

/// A task currently executing on a machine.
struct RunningTask {
    task: Task,
    start: Tick,
    finish: Tick,
    /// Running the approximate (degraded) variant.
    degraded: bool,
}

/// A task waiting in a machine queue, possibly degraded to its approximate
/// variant by the dropping policy.
#[derive(Debug, Clone, Copy)]
struct QueuedTask {
    task: Task,
    degraded: bool,
}

/// Mutable per-machine state.
struct MachineSt {
    machine: Machine,
    running: Option<RunningTask>,
    pending: VecDeque<QueuedTask>,
    busy_ticks: u64,
    /// Incremented each time a task starts; stamps Completion/DeadlineKill
    /// events so stale ones (for an already-ended execution) are ignored.
    epoch: u64,
    /// Failure injection: the machine is down (cannot start tasks).
    down: bool,
    /// Queue revision: bumped on every mutation that can change the queue
    /// tail — map-in, proactive/reactive drop, degrade, start (pop), and
    /// failure/repair. Part of the [`PolicyCtx`] tail-cache key; **derived
    /// state**, never serialized (a restored core starts at revision 0
    /// with a cold cache and converges to the same bytes).
    queue_rev: u64,
}

impl MachineSt {
    fn occupancy(&self) -> usize {
        usize::from(self.running.is_some()) + self.pending.len()
    }
}

/// Records the single fate of every admitted task and how many are resolved,
/// letting the core report drain as soon as all work is accounted for
/// (important under failure injection, whose repair events extend past the
/// drain).
struct FateBook {
    fates: Vec<Option<TaskFate>>,
    resolved: usize,
}

impl FateBook {
    fn new(n: usize) -> Self {
        FateBook { fates: vec![None; n], resolved: 0 }
    }

    fn set(&mut self, task: TaskId, fate: TaskFate) {
        let slot = &mut self.fates[task.index()];
        debug_assert!(slot.is_none(), "task {task} assigned two fates");
        *slot = Some(fate);
        self.resolved += 1;
    }

    fn push_slot(&mut self) {
        self.fates.push(None);
    }

    fn all_resolved(&self) -> bool {
        self.resolved == self.fates.len()
    }
}

/// What one [`SimCore::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One event timestamp was processed; more events are pending.
    Advanced {
        /// Simulation time after the step.
        now: Tick,
        /// Cumulative PET×tail cache work counters ([`SimCore::cache_stats`]).
        work: CacheStats,
    },
    /// No events are scheduled but admitted tasks remain unresolved. Only
    /// reachable on an [open](SimCore::open) core between injections; the
    /// closed-world invariant (every unresolved task has a pending event)
    /// makes it impossible after [`SimCore::new`].
    Idle {
        /// Current simulation time (unchanged).
        now: Tick,
    },
    /// Every admitted task has a fate; [`SimCore::result`] is available.
    /// Further steps are no-ops until new work is [injected](SimCore::inject).
    Drained {
        /// Simulation time of the final mapping event.
        now: Tick,
        /// Cumulative PET×tail cache work counters ([`SimCore::cache_stats`]).
        work: CacheStats,
    },
}

impl StepOutcome {
    /// Whether the core has resolved every admitted task.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        matches!(self, StepOutcome::Drained { .. })
    }

    /// The simulation time this outcome reports.
    #[must_use]
    pub fn now(&self) -> Tick {
        match *self {
            StepOutcome::Advanced { now, .. }
            | StepOutcome::Idle { now }
            | StepOutcome::Drained { now, .. } => now,
        }
    }

    /// The cumulative cache work counters this outcome carries, if the
    /// step did any work (`Idle` does none).
    #[must_use]
    pub fn work(&self) -> Option<CacheStats> {
        match *self {
            StepOutcome::Advanced { work, .. } | StepOutcome::Drained { work, .. } => Some(work),
            StepOutcome::Idle { .. } => None,
        }
    }
}

/// Read-only snapshot of a queued task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedState {
    /// The waiting task.
    pub task: Task,
    /// Whether the dropping policy degraded it to its approximate variant.
    pub degraded: bool,
}

/// Read-only snapshot of a running execution.
///
/// Deliberately omits the engine's realised finish tick: a driver inspecting
/// state mid-trial faces the same execution-time uncertainty the policies
/// do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningState {
    /// The executing task.
    pub task: Task,
    /// Tick at which it started.
    pub start: Tick,
    /// Whether it runs the approximate (degraded) variant.
    pub degraded: bool,
}

/// Read-only snapshot of one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    /// The machine.
    pub machine: Machine,
    /// Whether the machine is down (failure injection).
    pub down: bool,
    /// Busy ticks accrued so far.
    pub busy_ticks: u64,
    /// The current execution, if any.
    pub running: Option<RunningState>,
    /// Queued tasks in FCFS order.
    pub pending: Vec<QueuedState>,
}

/// Read-only snapshot of the whole core, from [`SimCore::state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimState {
    /// Current simulation time.
    pub now: Tick,
    /// Tasks admitted so far (initial workload + injected).
    pub total_tasks: usize,
    /// Tasks whose fate is decided.
    pub resolved_tasks: usize,
    /// Mapping events processed so far.
    pub mapping_events: u64,
    /// Unmapped tasks waiting in the batch queue.
    pub batch: Vec<Task>,
    /// Per-machine queue snapshots.
    pub machines: Vec<MachineState>,
}

/// One resumable trial: scenario + policies + mutable trial state.
///
/// ```
/// use taskdrop_sim::{SimConfig, SimCore, StepOutcome};
/// use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};
/// use taskdrop_sched::Pam;
/// use taskdrop_core::ProactiveDropper;
///
/// let scenario = Scenario::specint(7);
/// let level = OversubscriptionLevel::new("demo", 300, 4_000);
/// let workload = Workload::generate(&scenario, &level, 3.0, 1);
/// let dropper = ProactiveDropper::paper_default();
/// let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
/// let mut core = SimCore::new(&scenario, &workload, &Pam, &dropper, config, 1).unwrap();
/// // Drive the trial event by event.
/// while let StepOutcome::Advanced { .. } = core.step() {}
/// let result = core.result().unwrap();
/// assert!(result.is_conserved());
/// ```
pub struct SimCore<'a, H: ObserverHub = Vec<Box<dyn SimObserver + 'a>>> {
    scenario: &'a Scenario,
    mapper: &'a dyn MappingHeuristic,
    dropper: &'a dyn DropPolicy,
    config: SimConfig,
    exec_seed: u64,
    /// Degraded-variant PET, shared by the policy views and the chain
    /// computations (built once; cells are time-scaled copies).
    approx_pet: Option<PetMatrix>,
    /// Every admitted task, indexed by `TaskId` (dense ids).
    tasks: Vec<Task>,
    machines: Vec<MachineSt>,
    batch: Vec<Task>,
    events: EventQueue,
    fates: FateBook,
    now: Tick,
    mapping_events: u64,
    /// Event delivery backend ([`ObserverHub`]): boxed observers by
    /// default, an [`EventRelay`](crate::EventRelay) buffer for `Send`
    /// cores on fleet worker threads.
    observers: H,
    /// The persistent evaluation context (DESIGN.md §13): policy/mapper
    /// scratch plus the keyed PET×tail cache. Constructed once per core,
    /// reused across steps and serving epochs; derived state that is
    /// rebuilt — never serialized — on checkpoint restore.
    ctx: PolicyCtx,
}

// Manual impl: the mapper/dropper are `&dyn` references whose traits don't
// (and shouldn't) require `Debug`; summarise the trial state instead.
impl<H: ObserverHub> std::fmt::Debug for SimCore<'_, H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCore")
            .field("now", &self.now)
            .field("exec_seed", &self.exec_seed)
            .field("tasks", &self.tasks.len())
            .field("batch", &self.batch.len())
            .field("machines", &self.machines.len())
            .field("mapping_events", &self.mapping_events)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> SimCore<'a> {
    /// Assembles a trial from a pre-generated workload. `exec_seed` drives
    /// the *actual* execution-time draws; each (task, machine) pair gets an
    /// independent deterministic stream, so different policies facing the
    /// same workload see the same realised execution times.
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroQueueSize`] / [`SimError::DegenerateFailureSpec`] for
    /// an invalid `config`; [`SimError::MisnumberedWorkload`] if the
    /// workload's task ids are not the dense sequence `0..len`.
    pub fn new(
        scenario: &'a Scenario,
        workload: &Workload,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
    ) -> Result<Self, SimError> {
        for (index, task) in workload.tasks.iter().enumerate() {
            if task.id.index() != index {
                return Err(SimError::MisnumberedWorkload { index, id: task.id.0 });
            }
        }
        Self::assemble(scenario, workload.tasks.clone(), mapper, dropper, config, exec_seed)
    }

    /// Assembles an *open-world* core with no initial workload: every task
    /// arrives later through [`SimCore::inject`]. Failure timelines (if
    /// configured) are pre-generated out to the same fixed margin a
    /// zero-horizon workload would get.
    ///
    /// # Errors
    ///
    /// Same configuration errors as [`SimCore::new`].
    pub fn open(
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
    ) -> Result<Self, SimError> {
        Self::assemble(scenario, Vec::new(), mapper, dropper, config, exec_seed)
    }

    /// Attaches a streaming observer; it receives every subsequent
    /// [`SimEvent`] in simulation order. Observers are read-only and cannot
    /// change the trial's outcome.
    ///
    /// Only the default hub holds boxed observers; a core on an
    /// [`EventRelay`](crate::EventRelay) hub buffers events instead and
    /// its consumers drain them via [`SimCore::hub_mut`].
    pub fn attach(&mut self, observer: impl SimObserver + 'a) {
        self.observers.push(Box::new(observer));
    }

    /// Rebuilds a core from a [`Checkpoint`], picking the trial up exactly
    /// where [`SimCore::snapshot`] left it. The caller re-supplies the
    /// deterministic context a checkpoint only *names*: the scenario
    /// (validated against the recorded name and seed) and the two stateless
    /// policies. Passing a different mapper or dropper than the original
    /// run's is permitted — the state is policy-agnostic — but then the
    /// continuation is a what-if fork, not a byte-identical resume.
    ///
    /// This is [`SimCore::restore_in`] pinned to the default observer hub;
    /// observers are not part of a checkpoint, so attach them afresh.
    ///
    /// # Errors
    ///
    /// See [`SimCore::restore_in`].
    pub fn restore(
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        checkpoint: &Checkpoint,
    ) -> Result<Self, SimError> {
        Self::restore_in(scenario, mapper, dropper, checkpoint)
    }
}

impl<'a, H: ObserverHub> SimCore<'a, H> {
    /// [`SimCore::open`] for an explicitly chosen [`ObserverHub`] — the
    /// constructor the parallel fleet uses to build `Send` cores on
    /// [`EventRelay`](crate::EventRelay) hubs
    /// (`SimCore::<EventRelay>::open_in(..)`).
    ///
    /// # Errors
    ///
    /// Same configuration errors as [`SimCore::new`].
    pub fn open_in(
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
    ) -> Result<Self, SimError> {
        Self::assemble(scenario, Vec::new(), mapper, dropper, config, exec_seed)
    }

    /// The event delivery backend (to drain an
    /// [`EventRelay`](crate::EventRelay) at a fleet epoch barrier).
    pub fn hub_mut(&mut self) -> &mut H {
        &mut self.observers
    }

    fn assemble(
        scenario: &'a Scenario,
        tasks: Vec<Task>,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let machines: Vec<MachineSt> = scenario
            .machines
            .iter()
            .map(|&machine| MachineSt {
                machine,
                running: None,
                pending: VecDeque::with_capacity(config.queue_size),
                busy_ticks: 0,
                epoch: 0,
                down: false,
                queue_rev: 0,
            })
            .collect();
        let mut events = EventQueue::new();
        for (i, t) in tasks.iter().enumerate() {
            events.push(t.arrival, Event::Arrival(i));
        }
        let approx_pet =
            config.approx.map(|spec| taskdrop_model::approx::degraded_pet(&scenario.pet, spec));
        let fates = FateBook::new(tasks.len());
        let mut core = SimCore {
            scenario,
            mapper,
            dropper,
            config,
            exec_seed,
            approx_pet,
            tasks,
            machines,
            batch: Vec::new(),
            events,
            fates,
            now: 0,
            mapping_events: 0,
            observers: H::default(),
            ctx: PolicyCtx::new(),
        };
        core.schedule_failures();
        Ok(core)
    }

    /// Pre-generates each machine's failure/repair timeline (exponential
    /// up/down durations) out to a horizon comfortably past the last initial
    /// arrival — deadlines are short relative to the window, so the system
    /// drains long before the horizon. Timelines derive from the exec seed,
    /// so a given trial sees the same outages under every policy.
    fn schedule_failures(&mut self) {
        let Some(spec) = self.config.failures else { return };
        let last_arrival = self.tasks.last().map_or(0, |t| t.arrival);
        let horizon = last_arrival.saturating_mul(2) + 120_000;
        let up = taskdrop_stats::ExponentialSampler::new(1.0 / spec.mtbf as f64);
        let repair = taskdrop_stats::ExponentialSampler::new(1.0 / spec.mttr as f64);
        for machine in &self.scenario.machines {
            let mut rng = new_rng(derive_seed(self.exec_seed, 0xFA11_0000 + machine.id.0 as u64));
            let mut t = 0.0f64;
            loop {
                let fail_at = t + up.sample(&mut rng).max(1.0);
                if fail_at >= horizon as f64 {
                    break;
                }
                let up_at = fail_at + repair.sample(&mut rng).max(1.0);
                self.events.push(fail_at.round() as Tick, Event::MachineFailure(machine.id));
                self.events.push(up_at.round() as Tick, Event::MachineRepair(machine.id));
                t = up_at;
            }
        }
    }

    /// Admits a new task mid-trial (open-world arrival). The core assigns
    /// the next dense [`TaskId`] and schedules the arrival; the task behaves
    /// exactly as if it had been part of the initial workload.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownTaskType`] for a type the scenario lacks,
    /// [`SimError::InjectedInPast`] if `arrival` precedes the current
    /// simulation time, [`SimError::InvalidDeadline`] if
    /// `deadline <= arrival`.
    pub fn inject(
        &mut self,
        type_id: TaskTypeId,
        arrival: Tick,
        deadline: Tick,
    ) -> Result<TaskId, SimError> {
        if type_id.index() >= self.scenario.task_type_count() {
            return Err(SimError::UnknownTaskType {
                type_id: type_id.0,
                task_types: self.scenario.task_type_count(),
            });
        }
        if arrival < self.now {
            return Err(SimError::InjectedInPast { now: self.now, arrival });
        }
        if deadline <= arrival {
            return Err(SimError::InvalidDeadline { arrival, deadline });
        }
        let id = TaskId(self.tasks.len() as u64);
        let task = Task { id, type_id, arrival, deadline };
        self.tasks.push(task);
        self.fates.push_slot();
        self.events.push(arrival, Event::Arrival(id.index()));
        Ok(id)
    }

    /// Processes the next event timestamp: every event sharing it, then one
    /// mapping event for the batch (a mapping event is "triggered by
    /// completing or arrival of a task"). Returns where that leaves the
    /// trial. Once [`StepOutcome::Drained`], further calls are no-ops until
    /// new work is [injected](SimCore::inject); remaining failure-timeline
    /// events have nothing left to disturb and stay unprocessed, matching
    /// the legacy batch run.
    pub fn step(&mut self) -> StepOutcome {
        if self.fates.all_resolved() {
            return StepOutcome::Drained { now: self.now, work: self.cache_stats() };
        }
        let Some((t, ev)) = self.events.pop() else {
            return StepOutcome::Idle { now: self.now };
        };
        self.now = t;
        self.handle(ev);
        while self.events.peek_time() == Some(self.now) {
            let (_, ev) = self.events.pop().expect("peeked");
            self.handle(ev);
        }
        self.mapping_event();
        self.mapping_events += 1;
        emit(&mut self.observers, SimEvent::MappingRound { now: self.now });
        if self.fates.all_resolved() {
            StepOutcome::Drained { now: self.now, work: self.cache_stats() }
        } else {
            StepOutcome::Advanced { now: self.now, work: self.cache_stats() }
        }
    }

    /// Steps while events at or before `tick` remain (and the core is not
    /// drained). The clock only moves when events are processed, so after
    /// this returns [`SimCore::now`] is the time of the last event at or
    /// before `tick`, not `tick` itself.
    pub fn run_until(&mut self, tick: Tick) -> StepOutcome {
        while !self.fates.all_resolved() && self.events.peek_time().is_some_and(|t| t <= tick) {
            self.step();
        }
        if self.fates.all_resolved() {
            StepOutcome::Drained { now: self.now, work: self.cache_stats() }
        } else if self.events.peek_time().is_none() {
            StepOutcome::Idle { now: self.now }
        } else {
            StepOutcome::Advanced { now: self.now, work: self.cache_stats() }
        }
    }

    /// Runs the trial to completion and returns its result — the resumable
    /// equivalent of the legacy `Simulation::run()`.
    ///
    /// # Panics
    ///
    /// Panics if the event queue empties with unresolved tasks, which the
    /// closed-world invariant makes unreachable for cores built by
    /// [`SimCore::new`] (every unresolved task always has a pending event).
    #[must_use]
    pub fn run_to_completion(&mut self) -> TrialResult {
        loop {
            match self.step() {
                StepOutcome::Advanced { .. } => {}
                StepOutcome::Drained { .. } => break,
                StepOutcome::Idle { .. } => {
                    unreachable!("event queue exhausted with unresolved tasks")
                }
            }
        }
        debug_assert!(self.batch.is_empty(), "batch tasks leaked past drain");
        debug_assert!(self.machines.iter().all(|m| m.running.is_none() && m.pending.is_empty()));
        self.result().expect("drained above")
    }

    /// The trial's final metrics.
    ///
    /// # Errors
    ///
    /// [`SimError::NotDrained`] while any admitted task is unresolved.
    pub fn result(&self) -> Result<TrialResult, SimError> {
        if !self.fates.all_resolved() {
            return Err(SimError::NotDrained {
                resolved: self.fates.resolved,
                total: self.fates.fates.len(),
            });
        }
        let busy_ticks: Vec<u64> = self.machines.iter().map(|m| m.busy_ticks).collect();
        let prices: Vec<f64> =
            self.machines.iter().map(|m| self.scenario.price_per_hour(m.machine.id)).collect();
        Ok(TrialResult::from_accounting(
            &self.fates.fates,
            self.config.exclude_boundary,
            self.config.approx.map_or(0.0, |a| a.value),
            busy_ticks,
            &prices,
            self.now,
            self.mapping_events,
        ))
    }

    /// Current simulation time (the last processed event timestamp).
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Timestamp of the next scheduled event, if any.
    #[must_use]
    pub fn next_event_time(&self) -> Option<Tick> {
        self.events.peek_time()
    }

    /// Tasks admitted so far (initial workload + injections).
    #[must_use]
    pub fn total_tasks(&self) -> usize {
        self.fates.fates.len()
    }

    /// Tasks whose fate is already decided.
    #[must_use]
    pub fn resolved_tasks(&self) -> usize {
        self.fates.resolved
    }

    /// Whether every admitted task has a fate.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.fates.all_resolved()
    }

    /// The fate of a task, or `None` while it is still in flight (or the id
    /// is unknown).
    #[must_use]
    pub fn fate(&self, task: TaskId) -> Option<TaskFate> {
        self.fates.fates.get(task.index()).copied().flatten()
    }

    /// The engine configuration this core runs under.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The scenario this core runs on (machines, PET matrix, truth model).
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// The policy-facing completion-time estimate of `machine`'s queue tail
    /// — where a task appended *right now* would wait before starting. Built
    /// from the learned PET the same way the mapping phase builds its tails
    /// (the engine's realised finish times are not leaked), so serving-layer
    /// admission controllers can reuse the paper's completion-PMF threshold
    /// without reimplementing the chain. Routed through the core's
    /// persistent [`PolicyCtx`]: repeated calls against an unmoved queue
    /// are served from the PET×tail cache (see [`SimCore::cache_stats`])
    /// instead of re-chaining. Note the mapping phase never consults a
    /// *down* machine's tail (it exposes no free slots); callers pricing
    /// placement should skip machines for which [`SimCore::machine_is_down`]
    /// is true. `None` for an unknown machine id.
    pub fn queue_tail_estimate(&mut self, machine: MachineId) -> Option<Pmf> {
        let m = self.machines.get(machine.index())?;
        Some(queue_tail(
            &self.scenario.pet,
            self.approx_pet.as_ref(),
            self.now,
            m,
            self.config,
            &mut self.ctx,
        ))
    }

    /// Cumulative hit/miss counters of the persistent PET×tail cache —
    /// deterministic for a given trial, surfaced per step through
    /// [`StepOutcome`] and recorded in `BENCH_core.json` (CI fails on any
    /// drift at the fixed bench seed).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.cache_stats()
    }

    /// Whether `machine` is currently down (failure injection): a down
    /// machine cannot start tasks and the mapper gives it no new work.
    /// `None` for an unknown machine id.
    #[must_use]
    pub fn machine_is_down(&self, machine: MachineId) -> Option<bool> {
        self.machines.get(machine.index()).map(|m| m.down)
    }

    /// Forwards an externally produced lifecycle event to this core's
    /// observers, so one observer chain sees the complete task lifecycle
    /// from ingress to fate. The only admissible events are
    /// [`SimEvent::AdmissionDropped`] and [`SimEvent::CascadeForfeited`] —
    /// the lifecycle stages that happen *outside* the core (the serving
    /// layer's refusals and the graph layer's forfeits); every other
    /// variant describes an engine decision, and a forged one (terminal or
    /// not) would corrupt stream-reconstructed accounting such as
    /// [`MetricsObserver`].
    ///
    /// # Panics
    ///
    /// Panics if `ev` is any variant other than
    /// [`SimEvent::AdmissionDropped`], [`SimEvent::CascadeForfeited`], or
    /// [`SimEvent::TaskMigrated`].
    ///
    /// [`MetricsObserver`]: crate::MetricsObserver
    pub fn notify_observers(&mut self, ev: &SimEvent) {
        assert!(
            matches!(
                ev,
                SimEvent::AdmissionDropped { .. }
                    | SimEvent::CascadeForfeited { .. }
                    | SimEvent::TaskMigrated { .. }
            ),
            "only AdmissionDropped/CascadeForfeited/TaskMigrated may be forwarded from outside the engine: {ev:?}"
        );
        emit(&mut self.observers, *ev);
    }

    /// A read-only snapshot of the batch queue and every machine queue.
    /// Running entries omit the engine's realised finish times, so a driver
    /// cannot leak the truth model into a policy.
    #[must_use]
    pub fn state(&self) -> SimState {
        SimState {
            now: self.now,
            total_tasks: self.total_tasks(),
            resolved_tasks: self.resolved_tasks(),
            mapping_events: self.mapping_events,
            batch: self.batch.clone(),
            machines: self
                .machines
                .iter()
                .map(|m| MachineState {
                    machine: m.machine,
                    down: m.down,
                    busy_ticks: m.busy_ticks,
                    running: m.running.as_ref().map(|r| RunningState {
                        task: r.task,
                        start: r.start,
                        degraded: r.degraded,
                    }),
                    pending: m
                        .pending
                        .iter()
                        .map(|qt| QueuedState { task: qt.task, degraded: qt.degraded })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Serializes the complete mutable trial state into a [`Checkpoint`].
    ///
    /// Side-effect free: the core is untouched and can keep stepping.
    /// Together with [`SimCore::restore`], resuming from the snapshot is
    /// byte-identical to an uninterrupted run (see the
    /// [`checkpoint`](crate::checkpoint) module docs for why no RNG state
    /// needs capturing). Observers are *not* part of a checkpoint — attach
    /// them afresh after restoring.
    #[must_use]
    pub fn snapshot(&self) -> Checkpoint {
        let (entries, event_seq) = self.events.snapshot();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            scenario_name: self.scenario.name.clone(),
            scenario_seed: self.scenario.seed,
            config: self.config,
            exec_seed: self.exec_seed,
            now: self.now,
            mapping_events: self.mapping_events,
            tasks: self.tasks.clone(),
            fates: self.fates.fates.clone(),
            batch: self.batch.clone(),
            machines: self
                .machines
                .iter()
                .map(|m| MachineCheckpoint {
                    down: m.down,
                    busy_ticks: m.busy_ticks,
                    epoch: m.epoch,
                    running: m.running.as_ref().map(|r| RunningCheckpoint {
                        task: r.task,
                        start: r.start,
                        finish: r.finish,
                        degraded: r.degraded,
                    }),
                    pending: m
                        .pending
                        .iter()
                        .map(|qt| QueuedCheckpoint { task: qt.task, degraded: qt.degraded })
                        .collect(),
                })
                .collect(),
            events: entries
                .into_iter()
                .map(|(time, seq, event)| EventEntry { time, seq, event })
                .collect(),
            event_seq,
        }
    }

    /// Rebuilds a core from a [`Checkpoint`] on any [`ObserverHub`] —
    /// [`SimCore::restore`] pins this to the default hub; the parallel
    /// fleet restores straight onto [`EventRelay`](crate::EventRelay)
    /// hubs. The restored hub starts empty ([`Default`]): observers and
    /// buffered events are never part of a checkpoint.
    ///
    /// # Errors
    ///
    /// [`SimError::CheckpointVersion`] for an unknown format version;
    /// [`SimError::CheckpointMismatch`] if the checkpoint fails structural
    /// validation — scenario identity, dense task ids, fate-table sizing,
    /// queue occupancy, task-table membership of every queued entry,
    /// event-heap consistency (sequence counter, payload bounds, no event
    /// before the clock, in-flight executions matched by current-epoch
    /// completion events), and single-placement of every unresolved task;
    /// plus any config validation error.
    pub fn restore_in(
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        checkpoint: &Checkpoint,
    ) -> Result<Self, SimError> {
        validate_checkpoint(scenario, checkpoint)?;

        let machines: Vec<MachineSt> = scenario
            .machines
            .iter()
            .zip(&checkpoint.machines)
            .map(|(&machine, mc)| MachineSt {
                machine,
                running: mc.running.map(|r| RunningTask {
                    task: r.task,
                    start: r.start,
                    finish: r.finish,
                    degraded: r.degraded,
                }),
                pending: mc
                    .pending
                    .iter()
                    .map(|qc| QueuedTask { task: qc.task, degraded: qc.degraded })
                    .collect(),
                busy_ticks: mc.busy_ticks,
                epoch: mc.epoch,
                down: mc.down,
                queue_rev: 0,
            })
            .collect();
        let events = EventQueue::from_snapshot(
            checkpoint.events.iter().map(|e| (e.time, e.seq, e.event)).collect(),
            checkpoint.event_seq,
        );
        let approx_pet = checkpoint
            .config
            .approx
            .map(|spec| taskdrop_model::approx::degraded_pet(&scenario.pet, spec));
        Ok(SimCore {
            scenario,
            mapper,
            dropper,
            config: checkpoint.config,
            exec_seed: checkpoint.exec_seed,
            approx_pet,
            tasks: checkpoint.tasks.clone(),
            machines,
            batch: checkpoint.batch.clone(),
            events,
            fates: FateBook {
                resolved: checkpoint.resolved_tasks(),
                fates: checkpoint.fates.clone(),
            },
            now: checkpoint.now,
            mapping_events: checkpoint.mapping_events,
            observers: H::default(),
            // Cache and scratch are derived state: a restored core starts
            // cold and re-derives identical bytes (tests/tail_cache.rs).
            ctx: PolicyCtx::new(),
        })
    }

    fn handle(&mut self, ev: Event) {
        let now = self.now;
        let SimCore { tasks, machines, batch, events, fates, observers, .. } = self;
        match ev {
            Event::Arrival(i) => {
                let task = tasks[i];
                batch.push(task);
                emit(observers, SimEvent::Arrived { task });
            }
            Event::Completion(mid, epoch) => {
                let m = &mut machines[mid.index()];
                if m.epoch != epoch {
                    return; // stale: that execution was killed earlier
                }
                let r = m.running.take().expect("epoch-matched completion");
                debug_assert_eq!(r.finish, now);
                m.epoch += 1; // invalidate any outstanding kill event
                m.busy_ticks += r.finish - r.start;
                resolve(
                    fates,
                    observers,
                    SimEvent::Completed {
                        task: r.task.id,
                        machine: mid,
                        now,
                        on_time: r.finish < r.task.deadline,
                        degraded: r.degraded,
                    },
                );
                start_next(
                    self.scenario,
                    self.config,
                    self.exec_seed,
                    now,
                    m,
                    events,
                    fates,
                    observers,
                );
            }
            Event::DeadlineKill(mid, epoch) => {
                let m = &mut machines[mid.index()];
                if m.epoch != epoch {
                    return; // stale: the execution already ended
                }
                let r = m.running.take().expect("epoch-matched kill");
                debug_assert_eq!(r.task.deadline, now);
                debug_assert!(r.finish >= now, "kill scheduled after completion");
                m.epoch += 1; // invalidate the outstanding completion event
                m.busy_ticks += now - r.start;
                resolve(fates, observers, SimEvent::Killed { task: r.task.id, machine: mid, now });
                start_next(
                    self.scenario,
                    self.config,
                    self.exec_seed,
                    now,
                    m,
                    events,
                    fates,
                    observers,
                );
            }
            Event::MachineFailure(mid) => {
                let m = &mut machines[mid.index()];
                m.down = true;
                m.queue_rev += 1;
                let lost = m.running.take().map(|r| {
                    m.epoch += 1; // invalidate completion/kill events
                    m.busy_ticks += now - r.start;
                    r.task.id
                });
                let ev = SimEvent::MachineFailed { machine: mid, now, lost };
                if lost.is_some() {
                    resolve(fates, observers, ev);
                } else {
                    emit(observers, ev);
                }
            }
            Event::MachineRepair(mid) => {
                let m = &mut machines[mid.index()];
                m.down = false;
                m.queue_rev += 1;
                emit(observers, SimEvent::MachineRepaired { machine: mid, now });
                start_next(
                    self.scenario,
                    self.config,
                    self.exec_seed,
                    now,
                    m,
                    events,
                    fates,
                    observers,
                );
            }
        }
    }

    /// One mapping event: reactive drops, the dropping policy, the mapping
    /// heuristic, then starting idle machines (paper Figure 4 + Mapper).
    fn mapping_event(&mut self) {
        let now = self.now;
        let SimCore {
            scenario,
            mapper,
            dropper,
            config,
            exec_seed,
            approx_pet,
            machines,
            batch,
            events,
            fates,
            observers,
            ctx,
            ..
        } = self;
        let config = *config;
        let exec_seed = *exec_seed;
        let scenario: &Scenario = scenario;
        let approx_pet = approx_pet.as_ref();
        let pet = &scenario.pet;

        // (1) Reactive drops: machine queues and batch queue.
        for m in machines.iter_mut() {
            let before = m.pending.len();
            m.pending.retain(|qt| {
                let keep = !qt.task.expired(now);
                if !keep {
                    resolve(
                        fates,
                        observers,
                        SimEvent::Dropped { task: qt.task.id, now, kind: DropKind::Reactive },
                    );
                }
                keep
            });
            if m.pending.len() != before {
                m.queue_rev += 1;
            }
        }
        batch.retain(|task| {
            let keep = !task.expired(now);
            if !keep {
                resolve(
                    fates,
                    observers,
                    SimEvent::Dropped { task: task.id, now, kind: DropKind::Reactive },
                );
            }
            keep
        });

        // (2) Proactive dropping policy, queue by queue.
        let capacity = scenario.capacity(config.queue_size);
        let drop_ctx = DropContext {
            compaction: config.compaction,
            pressure: batch.len() as f64 / capacity as f64,
            approx: config.approx,
        };
        for m in machines.iter_mut() {
            if m.pending.is_empty() {
                continue;
            }
            let view = QueueView {
                machine: m.machine.id,
                machine_type: m.machine.type_id,
                now,
                running: running_view(pet, now, m, config),
                pending: m
                    .pending
                    .iter()
                    .map(|qt| PendingView {
                        id: qt.task.id,
                        type_id: qt.task.type_id,
                        deadline: qt.task.deadline,
                        degraded: qt.degraded,
                    })
                    .collect(),
                pet,
                approx_pet,
            };
            let decision = dropper.select_drops(&view, &drop_ctx, ctx);
            if !decision.is_empty() {
                // Drops and degrades both change what a tail chain sees.
                m.queue_rev += 1;
            }
            let mut last: Option<usize> = None;
            for &idx in &decision.drops {
                assert!(idx < m.pending.len(), "dropper returned out-of-range index");
                assert!(last.is_none_or(|p| p < idx), "dropper indices must increase");
                last = Some(idx);
            }
            // Degrades: validated, disjoint from drops, not already degraded.
            let mut last_deg: Option<usize> = None;
            for &idx in &decision.degrades {
                assert!(idx < m.pending.len(), "degrade index out of range");
                assert!(last_deg.is_none_or(|p| p < idx), "degrade indices must increase");
                assert!(!decision.drops.contains(&idx), "cannot drop and degrade one task");
                assert!(
                    config.approx.is_some(),
                    "policy degraded a task but approximate computing is disabled"
                );
                assert!(!m.pending[idx].degraded, "task degraded twice");
                m.pending[idx].degraded = true;
                emit(
                    observers,
                    SimEvent::Degraded { task: m.pending[idx].task.id, machine: m.machine.id, now },
                );
                last_deg = Some(idx);
            }
            for &idx in decision.drops.iter().rev() {
                let qt = m.pending.remove(idx).expect("validated index");
                resolve(
                    fates,
                    observers,
                    SimEvent::Dropped { task: qt.task.id, now, kind: DropKind::Proactive },
                );
            }
        }

        // (3) Mapping heuristic fills free slots from the batch queue.
        if !batch.is_empty() {
            let machine_views: Vec<MachineView> = machines
                .iter()
                .map(|m| {
                    // A down machine exposes no free slots: the mapper must
                    // not feed a queue that cannot drain.
                    let free_slots = if m.down {
                        0
                    } else {
                        config.queue_size - m.occupancy().min(config.queue_size)
                    };
                    // Tails are only consulted for machines the mapper can
                    // fill; skipping full queues avoids most of the chain
                    // work in heavy oversubscription. The shared ctx serves
                    // unchanged queues straight from its PET×tail cache.
                    let tail = if free_slots == 0 {
                        Pmf::point(now)
                    } else {
                        queue_tail(pet, approx_pet, now, m, config, ctx)
                    };
                    MachineView {
                        machine: m.machine.id,
                        machine_type: m.machine.type_id,
                        free_slots,
                        tail,
                    }
                })
                .collect();
            let unmapped: Vec<UnmappedView> = batch
                .iter()
                .map(|t| UnmappedView {
                    id: t.id,
                    type_id: t.type_id,
                    arrival: t.arrival,
                    deadline: t.deadline,
                })
                .collect();
            let input = MappingInput {
                now,
                pet,
                machines: machine_views,
                unmapped: &unmapped,
                compaction: config.compaction,
            };
            let assignments = mapper.map(input, ctx);

            let mut taken = vec![false; batch.len()];
            for a in &assignments {
                assert!(a.task_idx < batch.len(), "mapper returned out-of-range task index");
                assert!(!taken[a.task_idx], "mapper assigned a task twice");
                taken[a.task_idx] = true;
                let m = &mut machines[a.machine.index()];
                assert!(
                    m.occupancy() < config.queue_size,
                    "mapper overfilled queue of {}",
                    a.machine
                );
                m.pending.push_back(QueuedTask { task: batch[a.task_idx], degraded: false });
                m.queue_rev += 1;
                emit(
                    observers,
                    SimEvent::Mapped { task: batch[a.task_idx].id, machine: a.machine, now },
                );
            }
            let mut keep_iter = taken.iter();
            batch.retain(|_| !keep_iter.next().expect("mask sized to batch"));
        }

        // (4) Idle machines start their newly queued work immediately.
        for m in machines.iter_mut() {
            if m.running.is_none() && !m.pending.is_empty() {
                start_next(scenario, config, exec_seed, now, m, events, fates, observers);
            }
        }
    }
}

/// Structural validation of a [`Checkpoint`] against the scenario it is
/// being restored onto — the "fail loudly instead of corrupting a trial"
/// half of the checkpoint contract. Checks, in order:
///
/// * format version and config validity;
/// * scenario identity (name + seed) and machine count;
/// * dense task ids, in-range task types, fate-table sizing;
/// * every queued/batched/running task is recorded in the task table
///   *verbatim* (fate accounting and stale-event handling index by id);
/// * machine-queue occupancy within the configured capacity;
/// * event-heap consistency: sequence counter covers every entry, event
///   payloads reference real tasks/machines, and no event is scheduled
///   before the checkpoint clock (the engine never leaves one behind, and
///   replaying it would rewind time);
/// * placement: each unresolved task sits in exactly one of batch /
///   pending / running / an unprocessed `Arrival` event; resolved tasks
///   sit in none (a double-placed task would be resolved twice, a
///   dangling one would strand the drain loop);
/// * in-flight executions line up with the heap: a running task has
///   exactly one current-epoch `Completion` at its recorded finish (and
///   at most one `DeadlineKill`, at its deadline) and started at or
///   before the clock; no `Completion`/`DeadlineKill` carries an epoch
///   the machine has not reached yet.
///
/// # Errors
///
/// [`SimError::CheckpointVersion`], [`SimError::CheckpointMismatch`]
/// (whose `field` names the failed invariant),
/// [`SimError::MisnumberedWorkload`], [`SimError::UnknownTaskType`], or a
/// config validation error.
#[allow(clippy::too_many_lines)] // a flat checklist; splitting would obscure it
fn validate_checkpoint(scenario: &Scenario, checkpoint: &Checkpoint) -> Result<(), SimError> {
    let mismatch = |field: &'static str, expected: String, found: String| {
        Err(SimError::CheckpointMismatch { field, expected, found })
    };
    if checkpoint.version != CHECKPOINT_VERSION {
        return Err(SimError::CheckpointVersion {
            found: checkpoint.version,
            supported: CHECKPOINT_VERSION,
        });
    }
    checkpoint.config.validate()?;
    if checkpoint.scenario_name != scenario.name || checkpoint.scenario_seed != scenario.seed {
        return mismatch(
            "scenario",
            format!("{} (seed {})", scenario.name, scenario.seed),
            format!("{} (seed {})", checkpoint.scenario_name, checkpoint.scenario_seed),
        );
    }
    if checkpoint.machines.len() != scenario.machine_count() {
        return mismatch(
            "machines",
            scenario.machine_count().to_string(),
            checkpoint.machines.len().to_string(),
        );
    }
    if checkpoint.fates.len() != checkpoint.tasks.len() {
        return mismatch(
            "fates",
            format!("{} entries", checkpoint.tasks.len()),
            format!("{} entries", checkpoint.fates.len()),
        );
    }
    for (index, task) in checkpoint.tasks.iter().enumerate() {
        if task.id.index() != index {
            return Err(SimError::MisnumberedWorkload { index, id: task.id.0 });
        }
        if task.type_id.index() >= scenario.task_type_count() {
            return Err(SimError::UnknownTaskType {
                type_id: task.type_id.0,
                task_types: scenario.task_type_count(),
            });
        }
    }
    let known_task = |task: &Task| {
        checkpoint.tasks.get(task.id.index()).is_some_and(|recorded| recorded == task)
    };
    let unknown = |field: &'static str, task: &Task| {
        mismatch(
            field,
            "a task recorded in the checkpoint's task table".to_string(),
            format!("{task:?}"),
        )
    };
    for task in &checkpoint.batch {
        if !known_task(task) {
            return unknown("batch", task);
        }
    }
    for (idx, mc) in checkpoint.machines.iter().enumerate() {
        let occupancy = usize::from(mc.running.is_some()) + mc.pending.len();
        if occupancy > checkpoint.config.queue_size {
            return mismatch(
                "queue occupancy",
                format!("<= {} on m{idx}", checkpoint.config.queue_size),
                occupancy.to_string(),
            );
        }
        if let Some(r) = &mc.running {
            if !known_task(&r.task) {
                return unknown("running", &r.task);
            }
            if r.start > checkpoint.now {
                return mismatch(
                    "running",
                    format!("execution started at or before the clock ({})", checkpoint.now),
                    format!("start {}", r.start),
                );
            }
        }
        for qc in &mc.pending {
            if !known_task(&qc.task) {
                return unknown("pending", &qc.task);
            }
        }
    }
    if let Some(max_seq) = checkpoint.events.iter().map(|e| e.seq).max() {
        if max_seq > checkpoint.event_seq {
            return mismatch(
                "event_seq",
                format!(">= {max_seq}"),
                checkpoint.event_seq.to_string(),
            );
        }
    }
    // Per-machine tallies of events carrying the machine's *current* epoch;
    // anything stale (older epoch) is legitimately ignored by the engine,
    // anything from a not-yet-reached epoch would fire falsely later.
    let mut completions = vec![0usize; checkpoint.machines.len()];
    let mut kills = vec![0usize; checkpoint.machines.len()];
    for entry in &checkpoint.events {
        if entry.time < checkpoint.now {
            return mismatch(
                "events",
                format!("scheduled at or after the checkpoint clock ({})", checkpoint.now),
                format!("{:?} at {}", entry.event, entry.time),
            );
        }
        let bad_event = || {
            mismatch(
                "events",
                "a payload consistent with the checkpoint state".to_string(),
                format!("{:?}", entry.event),
            )
        };
        match entry.event {
            Event::Arrival(i) => {
                if i >= checkpoint.tasks.len() {
                    return bad_event();
                }
            }
            Event::Completion(m, ep) | Event::DeadlineKill(m, ep) => {
                let Some(mc) = checkpoint.machines.get(m.index()) else {
                    return bad_event();
                };
                if ep > mc.epoch {
                    return bad_event();
                }
                if ep == mc.epoch {
                    let Some(r) = &mc.running else { return bad_event() };
                    let is_completion = matches!(entry.event, Event::Completion(..));
                    let expected_time = if is_completion { r.finish } else { r.task.deadline };
                    if entry.time != expected_time {
                        return bad_event();
                    }
                    if is_completion {
                        completions[m.index()] += 1;
                    } else {
                        kills[m.index()] += 1;
                    }
                }
            }
            Event::MachineFailure(m) | Event::MachineRepair(m) => {
                if m.index() >= scenario.machine_count() {
                    return bad_event();
                }
            }
        }
    }
    for (idx, mc) in checkpoint.machines.iter().enumerate() {
        let expected = usize::from(mc.running.is_some());
        if completions[idx] != expected || kills[idx] > expected {
            return mismatch(
                "running",
                format!(
                    "m{idx} with {expected} current-epoch completion event(s) (and at most that many kills)"
                ),
                format!("{} completion(s), {} kill(s)", completions[idx], kills[idx]),
            );
        }
    }
    // Placement consistency: an unresolved task sits in exactly one place
    // (batch, a pending slot, running, or an unprocessed Arrival event); a
    // resolved one sits in none.
    let mut placements = vec![0u32; checkpoint.tasks.len()];
    for task in &checkpoint.batch {
        placements[task.id.index()] += 1;
    }
    for mc in &checkpoint.machines {
        if let Some(r) = &mc.running {
            placements[r.task.id.index()] += 1;
        }
        for qc in &mc.pending {
            placements[qc.task.id.index()] += 1;
        }
    }
    for entry in &checkpoint.events {
        if let Event::Arrival(i) = entry.event {
            placements[i] += 1; // index validated above
        }
    }
    for (index, &count) in placements.iter().enumerate() {
        let expected = u32::from(checkpoint.fates[index].is_none());
        if count != expected {
            return mismatch(
                "placement",
                format!(
                    "task{index} ({}) in {expected} queue/event slot(s)",
                    if expected == 1 { "unresolved" } else { "resolved" },
                ),
                format!("{count} slot(s)"),
            );
        }
    }
    Ok(())
}

/// Delivers one event through the core's hub (boxed observers or a
/// buffering relay — the engine does not care which).
fn emit<H: ObserverHub>(observers: &mut H, ev: SimEvent) {
    observers.deliver(&ev);
}

/// Records the fate a terminal event implies and notifies observers. The
/// event→fate mapping lives in one place — [`SimEvent::resolved`] — so the
/// engine's accounting and the observer stream cannot drift apart.
fn resolve<H: ObserverHub>(fates: &mut FateBook, observers: &mut H, ev: SimEvent) {
    let (task, fate) = ev.resolved().expect("resolve() called with a non-terminal event");
    fates.set(task, fate);
    emit(observers, ev);
}

/// Actual execution time of `task` on `machine`, drawn from the truth
/// model. Deterministic per (exec_seed, task, machine) regardless of
/// event order or policy, so policy comparisons share the same luck.
fn actual_exec(scenario: &Scenario, exec_seed: u64, task: &Task, machine: Machine) -> Tick {
    let stream = task.id.0 * scenario.machine_count() as u64 + machine.id.0 as u64;
    let mut rng = new_rng(derive_seed(exec_seed, stream));
    scenario.truth.sample(task.type_id, machine.type_id, &mut rng)
}

/// Starts the next runnable pending task on an idle machine, reactively
/// dropping heads that can no longer begin before their deadlines.
#[allow(clippy::too_many_arguments)] // split borrows of one SimCore
fn start_next<H: ObserverHub>(
    scenario: &Scenario,
    config: SimConfig,
    exec_seed: u64,
    now: Tick,
    m: &mut MachineSt,
    events: &mut EventQueue,
    fates: &mut FateBook,
    observers: &mut H,
) {
    debug_assert!(m.running.is_none());
    if m.down {
        return; // queue frozen until repair
    }
    while let Some(QueuedTask { task, degraded }) = m.pending.pop_front() {
        m.queue_rev += 1;
        if task.expired(now) {
            resolve(
                fates,
                observers,
                SimEvent::Dropped { task: task.id, now, kind: DropKind::Reactive },
            );
            continue;
        }
        let full_exec = actual_exec(scenario, exec_seed, &task, m.machine);
        let exec = if degraded {
            let factor = config.approx.map_or(1.0, |a| a.time_factor);
            ((full_exec as f64 * factor).round() as Tick).max(1)
        } else {
            full_exec
        };
        let finish = now + exec;
        m.epoch += 1;
        if config.kill_running_at_deadline && finish >= task.deadline {
            // The execution will overshoot (or exactly meet) the
            // deadline; the engine kills it right at the deadline
            // (live-video semantics). Pushed *before* the completion so
            // that on a `finish == deadline` tie the kill wins and the
            // completion goes stale. Scheduling the kill only when it
            // will fire keeps the heap small; the engine's foreknowledge
            // of `finish` is not leaked to any policy.
            events.push(task.deadline, Event::DeadlineKill(m.machine.id, m.epoch));
        }
        events.push(finish, Event::Completion(m.machine.id, m.epoch));
        emit(observers, SimEvent::Started { task: task.id, machine: m.machine.id, now, degraded });
        m.running = Some(RunningTask { task, start: now, finish, degraded });
        return;
    }
}

/// Completion-time view of the running task: the learned execution PMF
/// shifted to its start tick and conditioned on "not finished by now"; falls
/// back to a point mass one tick ahead when the learned support is already
/// exhausted (the actual draw exceeded everything the PET saw). Under
/// kill-at-deadline semantics the machine frees no later than the running
/// task's deadline, so the estimate is clamped there.
fn running_view(
    pet: &PetMatrix,
    now: Tick,
    m: &MachineSt,
    config: SimConfig,
) -> Option<RunningView> {
    let r = m.running.as_ref()?;
    // A degraded runner's estimate scales its learned PMF the same way the
    // engine scales its actual draw.
    let exec_estimate = if r.degraded {
        let factor = config.approx.map_or(1.0, |a| a.time_factor);
        pet.pmf(r.task.type_id, m.machine.type_id).time_scale(factor)
    } else {
        pet.pmf(r.task.type_id, m.machine.type_id).clone()
    };
    let shifted = exec_estimate.shift(r.start);
    let mut completion = shifted.condition_at_least(now + 1).unwrap_or_else(|| Pmf::point(now + 1));
    if self_kill_applies(config, r, now) {
        completion = completion.clamp_max(r.task.deadline.max(now + 1));
    }
    Some(RunningView {
        id: r.task.id,
        type_id: r.task.type_id,
        deadline: r.task.deadline,
        completion,
    })
}

/// The clamp only applies while the kill can still fire (deadline ahead).
fn self_kill_applies(config: SimConfig, r: &RunningTask, now: Tick) -> bool {
    config.kill_running_at_deadline && r.task.deadline > now
}

/// Completion PMF of the queue tail: where a newly appended task would wait.
/// Degraded entries chain with the degraded PET.
///
/// Served through the persistent [`PolicyCtx`]: the cache key is the
/// complete input of the chain — the machine's queue revision (pending
/// content), the predecessor completion `base` (running task + clock) and
/// the compaction policy — so a hit is bit-identical to recomputation.
/// Empty queues return `base` directly without touching the cache (no
/// chain work to save). Misses re-chain with the shared evaluator scratch
/// and refill the entry.
fn queue_tail(
    pet: &PetMatrix,
    approx_pet: Option<&PetMatrix>,
    now: Tick,
    m: &MachineSt,
    config: SimConfig,
    ctx: &mut PolicyCtx,
) -> Pmf {
    let base = match running_view(pet, now, m, config) {
        Some(r) => r.completion,
        None => Pmf::point(now),
    };
    if m.pending.is_empty() {
        return base;
    }
    let key = m.machine.id.index();
    if let Some(tail) = ctx.tails.lookup_tail(key, m.queue_rev, &base, config.compaction) {
        return tail;
    }
    let tasks: Vec<qchain::ChainTask<'_>> = m
        .pending
        .iter()
        .map(|qt| {
            let source = if qt.degraded { approx_pet.unwrap_or(pet) } else { pet };
            qchain::ChainTask {
                deadline: qt.task.deadline,
                exec: source.pmf(qt.task.type_id, m.machine.type_id),
            }
        })
        .collect();
    let tail = ctx.eval.tail(&base, &tasks, config.compaction);
    ctx.tails.store_tail(key, m.queue_rev, base, config.compaction, tail.clone());
    tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_core::{ProactiveDropper, ReactiveOnly};
    use taskdrop_sched::Pam;
    use taskdrop_workload::OversubscriptionLevel;

    fn scenario() -> Scenario {
        Scenario::specint(7)
    }

    fn workload(scenario: &Scenario, tasks: usize, window: Tick) -> Workload {
        let level = OversubscriptionLevel::new("core", tasks, window);
        Workload::generate(scenario, &level, 3.0, 42)
    }

    fn cfg() -> SimConfig {
        SimConfig { exclude_boundary: 0, ..SimConfig::default() }
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let s = scenario();
        let w = workload(&s, 10, 1_000);
        let bad = SimConfig { queue_size: 0, ..cfg() };
        let err = SimCore::new(&s, &w, &Pam, &ReactiveOnly, bad, 1).err();
        assert_eq!(err, Some(SimError::ZeroQueueSize));
    }

    #[test]
    fn misnumbered_workload_rejected() {
        let s = scenario();
        let mut w = workload(&s, 5, 1_000);
        w.tasks[3].id = TaskId(77);
        let err = SimCore::new(&s, &w, &Pam, &ReactiveOnly, cfg(), 1).err();
        assert_eq!(err, Some(SimError::MisnumberedWorkload { index: 3, id: 77 }));
    }

    #[test]
    fn stepping_reaches_drain_and_result() {
        let s = scenario();
        let w = workload(&s, 120, 2_000);
        let dropper = ProactiveDropper::paper_default();
        let mut core = SimCore::new(&s, &w, &Pam, &dropper, cfg(), 1).unwrap();
        assert_eq!(core.result(), Err(SimError::NotDrained { resolved: 0, total: 120 }));
        let mut steps = 0u64;
        while let StepOutcome::Advanced { .. } = core.step() {
            steps += 1;
        }
        let r = core.result().unwrap();
        assert!(r.is_conserved());
        // One mapping event per step (the final step drains).
        assert_eq!(r.mapping_events, steps + 1);
        // Drained cores stay drained.
        assert!(core.step().is_drained());
    }

    #[test]
    fn run_until_respects_the_clock() {
        let s = scenario();
        let w = workload(&s, 200, 4_000);
        let mut core = SimCore::new(&s, &w, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        let outcome = core.run_until(1_000);
        assert!(!outcome.is_drained());
        assert!(core.now() <= 1_000);
        assert!(core.next_event_time().is_some_and(|t| t > 1_000));
        let mid = core.state();
        assert!(mid.resolved_tasks < mid.total_tasks);
        let r = core.run_to_completion();
        assert!(r.is_conserved());
    }

    #[test]
    fn state_snapshot_is_consistent_mid_trial() {
        let s = scenario();
        let w = workload(&s, 300, 2_000);
        let mut core = SimCore::new(&s, &w, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        core.run_until(800);
        let st = core.state();
        assert_eq!(st.machines.len(), s.machine_count());
        assert_eq!(st.now, core.now());
        let queued: usize = st.machines.iter().map(|m| m.pending.len()).sum();
        let running: usize = st.machines.iter().filter(|m| m.running.is_some()).count();
        // Everything is somewhere: resolved, queued, running, batched, or
        // still in the future.
        assert!(st.resolved_tasks + queued + running + st.batch.len() <= st.total_tasks);
        for m in &st.machines {
            assert!(m.pending.len() < core.config().queue_size);
        }
    }

    #[test]
    fn open_core_accepts_injections_and_drains() {
        let s = scenario();
        let mut core = SimCore::open(&s, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        assert!(core.step().is_drained(), "no work yet");
        let mut ids = Vec::new();
        for k in 0..40u64 {
            let id = core.inject(TaskTypeId((k % 12) as u16), 10 * k, 10 * k + 600).unwrap();
            ids.push(id);
        }
        assert_eq!(core.total_tasks(), 40);
        let r = core.run_to_completion();
        assert!(r.is_conserved());
        assert_eq!(r.total_tasks, 40);
        for id in ids {
            assert!(core.fate(id).is_some());
        }
    }

    #[test]
    fn inject_validates_its_arguments() {
        let s = scenario();
        let mut core = SimCore::open(&s, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        assert_eq!(
            core.inject(TaskTypeId(99), 0, 10).err(),
            Some(SimError::UnknownTaskType { type_id: 99, task_types: 12 })
        );
        assert_eq!(
            core.inject(TaskTypeId(0), 5, 5).err(),
            Some(SimError::InvalidDeadline { arrival: 5, deadline: 5 })
        );
        core.inject(TaskTypeId(0), 100, 700).unwrap();
        core.run_until(100);
        let now = core.now();
        assert!(now >= 100);
        assert_eq!(
            core.inject(TaskTypeId(0), now.saturating_sub(1), now + 500).err(),
            Some(SimError::InjectedInPast { now, arrival: now - 1 })
        );
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let s = scenario();
        let w = workload(&s, 150, 1_800);
        let dropper = ProactiveDropper::paper_default();
        let mut reference = SimCore::new(&s, &w, &Pam, &dropper, cfg(), 9).unwrap();
        let expected = reference.run_to_completion();

        let mut interrupted = SimCore::new(&s, &w, &Pam, &dropper, cfg(), 9).unwrap();
        for _ in 0..40 {
            interrupted.step();
        }
        let cp = interrupted.snapshot();
        // Snapshotting is side-effect free: the interrupted core finishes
        // identically, and so does a core restored from the checkpoint.
        assert_eq!(interrupted.run_to_completion(), expected);
        let mut restored = SimCore::restore(&s, &Pam, &dropper, &cp).unwrap();
        assert_eq!(restored.now(), cp.now);
        assert_eq!(restored.run_to_completion(), expected);
    }

    #[test]
    fn restore_validates_version_and_context() {
        let s = scenario();
        let w = workload(&s, 20, 600);
        let core = SimCore::new(&s, &w, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        let cp = core.snapshot();

        let mut wrong_version = cp.clone();
        wrong_version.version = 99;
        assert_eq!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &wrong_version).err(),
            Some(SimError::CheckpointVersion { found: 99, supported: CHECKPOINT_VERSION })
        );

        let other = Scenario::specint(s.seed + 1);
        assert!(matches!(
            SimCore::restore(&other, &Pam, &ReactiveOnly, &cp).err(),
            Some(SimError::CheckpointMismatch { field: "scenario", .. })
        ));

        let mut missized = cp.clone();
        missized.fates.push(None);
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &missized).err(),
            Some(SimError::CheckpointMismatch { field: "fates", .. })
        ));

        let mut bad_seq = cp.clone();
        bad_seq.event_seq = 0;
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &bad_seq).err(),
            Some(SimError::CheckpointMismatch { field: "event_seq", .. })
        ));

        // Queue/batch/event entries must reference recorded tasks and real
        // machines — a corrupted checkpoint fails restore, not step().
        let alien = Task::new(TaskId(77), TaskTypeId(0), 1, 100);
        let mut bad_batch = cp.clone();
        bad_batch.batch.push(alien);
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &bad_batch).err(),
            Some(SimError::CheckpointMismatch { field: "batch", .. })
        ));

        let mut bad_pending = cp.clone();
        bad_pending.machines[0]
            .pending
            .push(crate::checkpoint::QueuedCheckpoint { task: alien, degraded: false });
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &bad_pending).err(),
            Some(SimError::CheckpointMismatch { field: "pending", .. })
        ));

        // A recorded task whose fields drifted from the task table is just
        // as alien as an out-of-range id.
        let mut drifted = cp.clone();
        let mut twisted = drifted.tasks[3];
        twisted.deadline += 1;
        drifted.batch.push(twisted);
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &drifted).err(),
            Some(SimError::CheckpointMismatch { field: "batch", .. })
        ));

        let mut bad_event = cp.clone();
        bad_event.events.push(crate::checkpoint::EventEntry {
            time: 1,
            seq: bad_event.event_seq,
            event: Event::Arrival(999),
        });
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &bad_event).err(),
            Some(SimError::CheckpointMismatch { field: "events", .. })
        ));

        let mut bad_machine_event = cp.clone();
        bad_machine_event.events.push(crate::checkpoint::EventEntry {
            time: 1,
            seq: bad_machine_event.event_seq,
            event: Event::MachineRepair(taskdrop_model::MachineId(200)),
        });
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &bad_machine_event).err(),
            Some(SimError::CheckpointMismatch { field: "events", .. })
        ));

        // A recorded task placed twice (here: batch + its own pending
        // arrival event) would be resolved twice; restore refuses it.
        let mut double_placed = cp.clone();
        let first = double_placed.tasks[0];
        double_placed.batch.push(first);
        assert!(matches!(
            SimCore::restore(&s, &Pam, &ReactiveOnly, &double_placed).err(),
            Some(SimError::CheckpointMismatch { field: "placement", .. })
        ));
    }

    #[test]
    fn notify_observers_forwards_but_rejects_terminal_events() {
        let s = scenario();
        let seen = std::cell::Cell::new(0usize);
        let mut core = SimCore::open(&s, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        core.attach(|_: &SimEvent| seen.set(seen.get() + 1));
        core.notify_observers(&SimEvent::AdmissionDropped {
            type_id: TaskTypeId(0),
            arrival: 5,
            deadline: 50,
            now: 5,
            kind: crate::observer::AdmissionDropKind::RejectedFull,
        });
        assert_eq!(seen.get(), 1);
        let terminal = SimEvent::Dropped { task: TaskId(0), now: 5, kind: DropKind::Reactive };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.notify_observers(&terminal)
        }));
        assert!(panicked.is_err(), "terminal events must be refused");
    }

    #[test]
    fn injection_after_drain_revives_the_core() {
        let s = scenario();
        let mut core = SimCore::open(&s, &Pam, &ReactiveOnly, cfg(), 1).unwrap();
        core.inject(TaskTypeId(0), 0, 500).unwrap();
        let _ = core.run_to_completion();
        assert!(core.is_drained());
        let now = core.now();
        core.inject(TaskTypeId(1), now + 50, now + 900).unwrap();
        assert!(!core.is_drained());
        let r = core.run_to_completion();
        assert_eq!(r.total_tasks, 2);
        assert!(r.is_conserved());
    }
}
