//! Per-trial metrics: task fates, robustness, drop breakdown, cost.

use serde::{Deserialize, Serialize};
use taskdrop_pmf::Tick;

/// What ultimately happened to a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskFate {
    /// Completed strictly before its deadline.
    OnTime,
    /// Completed strictly before its deadline in *approximate* (degraded)
    /// mode, yielding partial value (the future-work extension).
    OnTimeApprox,
    /// Ran to completion but finished at or after its deadline.
    Late,
    /// Reactively dropped: its deadline passed while it waited (batch queue,
    /// machine queue, or at the moment it would have started), or it was
    /// killed at its deadline while running.
    DroppedReactive,
    /// Proactively dropped by the dropping policy.
    DroppedProactive,
    /// Lost when its machine failed mid-execution (failure injection).
    LostToFailure,
    /// Forfeited by a dependency-aware graph layer before it was ever
    /// injected: a predecessor was dropped/killed/lost, its subtree was
    /// pruned, or chain-aware admission shed it at release time. The
    /// engine itself never assigns this fate — it exists so graph-level
    /// fate tables (`taskdrop_dag`) and stream-reconstructed accounting
    /// share one vocabulary with the per-task fates.
    Forfeited,
}

/// Metrics of one simulation trial.
///
/// The *counted window* excludes the first and last `exclude_boundary` tasks
/// (by arrival order), per the paper's Section V-A; whole-trial totals are
/// kept as well for conservation checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Total tasks in the workload.
    pub total_tasks: usize,
    /// Tasks inside the counted window.
    pub counted_tasks: usize,
    /// Counted tasks completing strictly before their deadlines at full
    /// fidelity.
    pub on_time: usize,
    /// Counted tasks completing on time in approximate (degraded) mode.
    #[serde(default)]
    pub on_time_approx: usize,
    /// Relative value of an approximate completion (from the config; 0 when
    /// approximate computing is disabled).
    #[serde(default)]
    pub approx_value: f64,
    /// Counted tasks that ran but finished late.
    pub late: usize,
    /// Counted tasks dropped reactively.
    pub dropped_reactive: usize,
    /// Counted tasks dropped proactively.
    pub dropped_proactive: usize,
    /// Counted tasks lost to machine failures (0 unless failure injection
    /// is enabled).
    #[serde(default)]
    pub lost_to_failure: usize,
    /// Counted graph nodes forfeited before injection by a
    /// dependency-aware layer (0 for independent-task trials; see
    /// [`TaskFate::Forfeited`]).
    #[serde(default)]
    pub forfeited: usize,
    /// Whole-trial busy time per machine, in ticks.
    pub busy_ticks: Vec<u64>,
    /// Whole-trial dollar cost of busy time (AWS-style hourly prices).
    pub cost_dollars: f64,
    /// Tick at which the system drained back to idle.
    pub makespan: Tick,
    /// Number of mapping events processed.
    pub mapping_events: u64,
}

impl TrialResult {
    /// Aggregates per-task fates and per-machine busy time into a result —
    /// the single definition of the counted window, the fate tally, and the
    /// busy-ticks→dollars conversion, shared by the engine's own accounting
    /// (`SimCore::result`) and the stream-reconstructed one
    /// (`MetricsObserver::result`).
    ///
    /// # Panics
    ///
    /// Panics if any fate inside the counted window is still `None`; callers
    /// check drain first.
    pub(crate) fn from_accounting(
        fates: &[Option<TaskFate>],
        exclude_boundary: usize,
        approx_value: f64,
        busy_ticks: Vec<u64>,
        prices_per_hour: &[f64],
        makespan: Tick,
        mapping_events: u64,
    ) -> TrialResult {
        let n = fates.len();
        let lo = exclude_boundary.min(n);
        let hi = n.saturating_sub(exclude_boundary).max(lo);
        let mut on_time = 0;
        let mut on_time_approx = 0;
        let mut late = 0;
        let mut reactive = 0;
        let mut proactive = 0;
        let mut lost = 0;
        let mut forfeited = 0;
        for fate in &fates[lo..hi] {
            match fate.expect("every task must have a fate after drain") {
                TaskFate::OnTime => on_time += 1,
                TaskFate::OnTimeApprox => on_time_approx += 1,
                TaskFate::Late => late += 1,
                TaskFate::DroppedReactive => reactive += 1,
                TaskFate::DroppedProactive => proactive += 1,
                TaskFate::LostToFailure => lost += 1,
                TaskFate::Forfeited => forfeited += 1,
            }
        }
        let cost_dollars: f64 = busy_ticks
            .iter()
            .zip(prices_per_hour)
            .map(|(&busy, &price)| busy as f64 / 3_600_000.0 * price)
            .sum();
        TrialResult {
            total_tasks: n,
            counted_tasks: hi - lo,
            on_time,
            on_time_approx,
            approx_value,
            late,
            dropped_reactive: reactive,
            dropped_proactive: proactive,
            lost_to_failure: lost,
            forfeited,
            busy_ticks,
            cost_dollars,
            makespan,
            mapping_events,
        }
    }

    /// Robustness: percentage of counted tasks completed on time at full
    /// fidelity (the paper's headline metric; approximate completions do
    /// not count here).
    #[must_use]
    pub fn robustness_pct(&self) -> f64 {
        if self.counted_tasks == 0 {
            return 0.0;
        }
        100.0 * self.on_time as f64 / self.counted_tasks as f64
    }

    /// Utility: robustness credit including approximate completions at
    /// their partial value — `(full + value · approx) / counted × 100`.
    /// Equals [`TrialResult::robustness_pct`] when approximate computing is
    /// disabled.
    #[must_use]
    pub fn utility_pct(&self) -> f64 {
        if self.counted_tasks == 0 {
            return 0.0;
        }
        100.0 * (self.on_time as f64 + self.approx_value * self.on_time_approx as f64)
            / self.counted_tasks as f64
    }

    /// Fraction of all drops that were reactive (the paper reports ≈7 %
    /// under the proactive heuristic).
    #[must_use]
    pub fn reactive_drop_fraction(&self) -> Option<f64> {
        let total = self.dropped_reactive + self.dropped_proactive;
        (total > 0).then(|| self.dropped_reactive as f64 / total as f64)
    }

    /// Incurred cost divided by robustness percentage — the normalised cost
    /// metric of the paper's Figure 9.
    #[must_use]
    pub fn cost_per_robustness(&self) -> f64 {
        let r = self.robustness_pct();
        if r == 0.0 {
            f64::INFINITY
        } else {
            self.cost_dollars / r
        }
    }

    /// Conservation check: every counted task has exactly one fate.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.on_time
            + self.on_time_approx
            + self.late
            + self.dropped_reactive
            + self.dropped_proactive
            + self.lost_to_failure
            + self.forfeited
            == self.counted_tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrialResult {
        TrialResult {
            total_tasks: 1200,
            counted_tasks: 1000,
            on_time: 400,
            on_time_approx: 0,
            approx_value: 0.0,
            late: 100,
            dropped_reactive: 50,
            dropped_proactive: 450,
            lost_to_failure: 0,
            forfeited: 0,
            busy_ticks: vec![1000, 2000],
            cost_dollars: 2.0,
            makespan: 90_000,
            mapping_events: 2400,
        }
    }

    #[test]
    fn forfeited_counts_toward_conservation() {
        let mut r = sample();
        r.forfeited = 30;
        assert!(!r.is_conserved(), "forfeits must be matched by counted tasks");
        r.counted_tasks += 30;
        r.total_tasks += 30;
        assert!(r.is_conserved());
        // Forfeited work dilutes robustness: the denominator grew.
        assert!(r.robustness_pct() < 40.0);
    }

    #[test]
    fn robustness_is_on_time_share() {
        assert!((sample().robustness_pct() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn reactive_fraction() {
        assert!((sample().reactive_drop_fraction().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cost_per_robustness_normalises() {
        assert!((sample().cost_per_robustness() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn conservation_detects_mismatch() {
        let mut r = sample();
        assert!(r.is_conserved());
        r.on_time += 1;
        assert!(!r.is_conserved());
    }

    #[test]
    fn zero_counted_is_zero_robustness() {
        let mut r = sample();
        r.counted_tasks = 0;
        assert_eq!(r.robustness_pct(), 0.0);
        assert!(r.cost_per_robustness().is_infinite());
    }
}
