//! The discrete-event queue.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use taskdrop_model::MachineId;
use taskdrop_pmf::Tick;

/// An engine event.
///
/// `Completion` and `DeadlineKill` carry the machine's *epoch* — a counter
/// incremented every time a new task starts — so events belonging to an
/// already-finished or killed task are recognised as stale and ignored.
///
/// Serializable because pending events are part of a
/// [`Checkpoint`](crate::Checkpoint): failure timelines are pre-generated at
/// construction and in-flight executions carry their realised finish times,
/// so the outstanding event set cannot be recomputed from the rest of the
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Task `workload_index` arrives.
    Arrival(usize),
    /// The task started in this epoch on this machine completes.
    Completion(MachineId, u64),
    /// The task started in this epoch reaches its deadline while running
    /// and is reactively killed (no value in finishing late).
    DeadlineKill(MachineId, u64),
    /// The machine fails: its running task is lost, its queue freezes.
    MachineFailure(MachineId),
    /// The machine comes back from repair.
    MachineRepair(MachineId),
}

/// Min-heap of `(time, seq, event)`. The monotone sequence number makes
/// ordering total and FIFO among equal timestamps, keeping the engine
/// deterministic.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Tick, u64, EventKey)>>,
    seq: u64,
}

/// Orderable encoding of [`Event`] (derives `Ord` cheaply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    Arrival(usize),
    Completion(u16, u64),
    DeadlineKill(u16, u64),
    MachineFailure(u16),
    MachineRepair(u16),
}

impl From<Event> for EventKey {
    fn from(e: Event) -> Self {
        match e {
            Event::Arrival(i) => EventKey::Arrival(i),
            Event::Completion(m, ep) => EventKey::Completion(m.0, ep),
            Event::DeadlineKill(m, ep) => EventKey::DeadlineKill(m.0, ep),
            Event::MachineFailure(m) => EventKey::MachineFailure(m.0),
            Event::MachineRepair(m) => EventKey::MachineRepair(m.0),
        }
    }
}

impl From<EventKey> for Event {
    fn from(k: EventKey) -> Self {
        match k {
            EventKey::Arrival(i) => Event::Arrival(i),
            EventKey::Completion(m, ep) => Event::Completion(MachineId(m), ep),
            EventKey::DeadlineKill(m, ep) => Event::DeadlineKill(MachineId(m), ep),
            EventKey::MachineFailure(m) => Event::MachineFailure(MachineId(m)),
            EventKey::MachineRepair(m) => Event::MachineRepair(MachineId(m)),
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Tick, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, event.into())));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Tick, Event)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t, k.into()))
    }

    /// Time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Tick> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of outstanding events.
    #[must_use]
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    #[must_use]
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Snapshot for checkpointing: every outstanding `(time, seq, event)`
    /// entry in pop order, plus the live sequence counter. Sorting makes the
    /// snapshot canonical — two queues with identical pending events and
    /// counters produce identical snapshots even if their heap arrays are
    /// arranged differently.
    pub fn snapshot(&self) -> (Vec<(Tick, u64, Event)>, u64) {
        let mut entries: Vec<(Tick, u64, EventKey)> =
            self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        (entries.into_iter().map(|(t, s, k)| (t, s, k.into())).collect(), self.seq)
    }

    /// Rebuilds a queue from a [`EventQueue::snapshot`]. Pop order — and
    /// every future FIFO tie-break, because the sequence counter resumes
    /// where it left off — is identical to the queue that was snapshotted.
    pub fn from_snapshot(entries: Vec<(Tick, u64, Event)>, seq: u64) -> Self {
        let heap = entries.into_iter().map(|(t, s, e)| Reverse((t, s, e.into()))).collect();
        EventQueue { heap, seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::Arrival(2));
        q.push(10, Event::Arrival(0));
        q.push(20, Event::Completion(MachineId(1), 4));
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, Event::Arrival(0))));
        assert_eq!(q.pop(), Some((20, Event::Completion(MachineId(1), 4))));
        assert_eq!(q.pop(), Some((30, Event::Arrival(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        q.push(5, Event::Arrival(7));
        q.push(5, Event::DeadlineKill(MachineId(0), 1));
        q.push(5, Event::Arrival(8));
        assert_eq!(q.pop(), Some((5, Event::Arrival(7))));
        assert_eq!(q.pop(), Some((5, Event::DeadlineKill(MachineId(0), 1))));
        assert_eq!(q.pop(), Some((5, Event::Arrival(8))));
    }

    #[test]
    fn snapshot_roundtrip_preserves_pop_order_and_ties() {
        let mut q = EventQueue::new();
        q.push(5, Event::Arrival(7));
        q.push(2, Event::Completion(MachineId(1), 9));
        q.push(5, Event::DeadlineKill(MachineId(0), 1));
        let (entries, seq) = q.snapshot();
        assert_eq!(seq, 3);
        assert_eq!(entries.len(), 3);
        // Canonical order: sorted by (time, seq).
        assert_eq!(entries[0].0, 2);
        let mut restored = EventQueue::from_snapshot(entries, seq);
        // A post-restore push ties at t=5 and must lose to both originals.
        restored.push(5, Event::Arrival(8));
        q.push(5, Event::Arrival(8));
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::Arrival(0));
        q.push(2, Event::Arrival(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
