//! The legacy batch entry point, now a thin wrapper over [`SimCore`].
//!
//! [`Simulation`] assembles one trial and runs it to completion in a single
//! call — the original closed-world API. All simulation logic lives in
//! [`crate::core`]; `tests/core_equivalence.rs` pins the wrapper's results
//! byte-identical to a manually stepped [`SimCore`]. (Degenerate exception,
//! unreachable through `Workload::generate`: a zero-task workload with
//! failure injection now reports `makespan: 0` instead of processing the
//! first failure event — see the note in [`crate::core`].)

use crate::config::SimConfig;
use crate::core::SimCore;
use crate::metrics::TrialResult;
use taskdrop_core::DropPolicy;
use taskdrop_sched::MappingHeuristic;
use taskdrop_workload::{Scenario, Workload};

/// One simulation trial: a scenario + workload + mapper + dropper.
///
/// ```
/// use taskdrop_sim::{SimConfig, Simulation};
/// use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};
/// use taskdrop_sched::Pam;
/// use taskdrop_core::ProactiveDropper;
///
/// let scenario = Scenario::specint(7);
/// let level = OversubscriptionLevel::new("demo", 400, 6_000);
/// let workload = Workload::generate(&scenario, &level, 3.0, 1);
/// let dropper = ProactiveDropper::paper_default();
/// let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
/// let sim = Simulation::new(&scenario, &workload, &Pam, &dropper, config, 1);
/// let result = sim.run();
/// assert!(result.is_conserved());
/// ```
pub struct Simulation<'a> {
    core: SimCore<'a>,
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation").field("core", &self.core).finish()
    }
}

impl<'a> Simulation<'a> {
    /// Assembles a trial. `exec_seed` drives the *actual* execution-time
    /// draws; each (task, machine) pair gets an independent deterministic
    /// stream, so different policies facing the same workload see the same
    /// realised execution times.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config` or a misnumbered workload. Use
    /// [`SimCore::new`] for the `Result`-returning equivalent (plus
    /// stepping, injection and observers).
    #[must_use]
    pub fn new(
        scenario: &'a Scenario,
        workload: &Workload,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
    ) -> Self {
        let core = SimCore::new(scenario, workload, mapper, dropper, config, exec_seed)
            .unwrap_or_else(|e| panic!("invalid simulation: {e}"));
        Simulation { core }
    }

    /// Runs the trial to completion (system drained back to idle).
    #[must_use]
    pub fn run(mut self) -> TrialResult {
        self.core.run_to_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_core::{ProactiveDropper, ReactiveOnly};
    use taskdrop_pmf::Tick;
    use taskdrop_sched::{Fcfs, MinMin, Pam};
    use taskdrop_workload::OversubscriptionLevel;

    fn small_workload(scenario: &Scenario, tasks: usize, window: Tick) -> Workload {
        let level = OversubscriptionLevel::new("test", tasks, window);
        Workload::generate(scenario, &level, 3.0, 42)
    }

    fn config_no_boundary() -> SimConfig {
        SimConfig { exclude_boundary: 0, ..SimConfig::default() }
    }

    #[test]
    fn conservation_every_task_has_one_fate() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 4_000);
        let r = Simulation::new(
            &scenario,
            &w,
            &MinMin,
            &ProactiveDropper::paper_default(),
            config_no_boundary(),
            1,
        )
        .run();
        assert_eq!(r.counted_tasks, 400);
        assert!(r.is_conserved(), "{r:?}");
    }

    #[test]
    fn underloaded_system_completes_everything() {
        let scenario = Scenario::specint(7);
        // 50 tasks over 100 s: ~0.5 tasks/s against ~64/s capacity.
        let w = small_workload(&scenario, 50, 100_000);
        let r =
            Simulation::new(&scenario, &w, &MinMin, &ReactiveOnly, config_no_boundary(), 1).run();
        assert!(
            r.robustness_pct() > 95.0,
            "underloaded robustness {:.1}% (fates: late {}, reactive {})",
            r.robustness_pct(),
            r.late,
            r.dropped_reactive
        );
        assert_eq!(r.dropped_proactive, 0);
    }

    #[test]
    fn oversubscription_degrades_robustness() {
        let scenario = Scenario::specint(7);
        let light = small_workload(&scenario, 300, 30_000);
        let heavy = small_workload(&scenario, 1200, 10_000);
        let run = |w: &Workload| {
            Simulation::new(&scenario, w, &Pam, &ReactiveOnly, config_no_boundary(), 1)
                .run()
                .robustness_pct()
        };
        assert!(run(&light) > run(&heavy) + 5.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 300, 3_000);
        let run = || {
            Simulation::new(
                &scenario,
                &w,
                &Pam,
                &ProactiveDropper::paper_default(),
                config_no_boundary(),
                9,
            )
            .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exec_seed_changes_outcomes() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 500, 5_000);
        let run = |seed| {
            Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, config_no_boundary(), seed).run()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn boundary_exclusion_shrinks_counted_window() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 4_000);
        let cfg = SimConfig { exclude_boundary: 100, ..SimConfig::default() };
        let r = Simulation::new(&scenario, &w, &MinMin, &ReactiveOnly, cfg, 1).run();
        assert_eq!(r.total_tasks, 400);
        assert_eq!(r.counted_tasks, 200);
        assert!(r.is_conserved());
    }

    #[test]
    fn queue_size_one_still_works() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 200, 4_000);
        let cfg = SimConfig { queue_size: 1, exclude_boundary: 0, ..SimConfig::default() };
        let r = Simulation::new(&scenario, &w, &Fcfs, &ReactiveOnly, cfg, 1).run();
        assert!(r.is_conserved());
    }

    #[test]
    fn proactive_dropper_records_proactive_fates() {
        let scenario = Scenario::specint(7);
        // Heavy oversubscription so dropping definitely engages.
        let w = small_workload(&scenario, 1000, 8_000);
        let r = Simulation::new(
            &scenario,
            &w,
            &Pam,
            &ProactiveDropper::paper_default(),
            config_no_boundary(),
            1,
        )
        .run();
        assert!(r.dropped_proactive > 0, "expected proactive drops: {r:?}");
    }

    #[test]
    fn failure_injection_loses_tasks_and_conserves() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 8_000);
        let cfg = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 2_000, mttr: 500 }),
            ..SimConfig::default()
        };
        let r = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, cfg, 1).run();
        assert!(r.is_conserved(), "{r:?}");
        assert!(r.lost_to_failure > 0, "flaky machines must lose some work: {r:?}");
    }

    #[test]
    fn failures_reduce_robustness() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 8_000);
        let healthy = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let flaky = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 1_500, mttr: 800 }),
            ..SimConfig::default()
        };
        let a = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, healthy, 1).run();
        let b = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, flaky, 1).run();
        assert!(
            a.robustness_pct() > b.robustness_pct(),
            "healthy {:.1}% vs flaky {:.1}%",
            a.robustness_pct(),
            b.robustness_pct()
        );
    }

    #[test]
    fn failure_injection_is_deterministic() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 300, 4_000);
        let cfg = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 3_000, mttr: 400 }),
            ..SimConfig::default()
        };
        let run = || Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, cfg, 9).run();
        assert_eq!(run(), run());
    }

    #[test]
    fn near_infinite_mtbf_behaves_like_no_failures() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 300, 4_000);
        let none = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let rare = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: u64::MAX / 4, mttr: 100 }),
            ..SimConfig::default()
        };
        let a = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, none, 1).run();
        let b = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, rare, 1).run();
        assert_eq!(a.on_time, b.on_time);
        assert_eq!(b.lost_to_failure, 0);
    }

    #[test]
    fn busy_time_and_cost_accrue() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 200, 10_000);
        let r =
            Simulation::new(&scenario, &w, &MinMin, &ReactiveOnly, config_no_boundary(), 1).run();
        assert!(r.busy_ticks.iter().sum::<u64>() > 0);
        assert!(r.cost_dollars > 0.0);
        assert!(r.makespan > 0);
    }

    #[test]
    fn approx_mode_yields_partial_completions() {
        use taskdrop_core::ApproxDropper;
        use taskdrop_model::ApproxSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 800, 4_000);
        let cfg = SimConfig {
            exclude_boundary: 0,
            approx: Some(ApproxSpec::new(0.4, 0.6)),
            ..SimConfig::default()
        };
        let r = Simulation::new(&scenario, &w, &Pam, &ApproxDropper::paper_default(), cfg, 1).run();
        assert!(r.is_conserved(), "{r:?}");
        assert!(r.on_time_approx > 0, "degradation never engaged: {r:?}");
        assert!(r.utility_pct() > r.robustness_pct());
        assert!((r.approx_value - 0.6).abs() < 1e-12);
    }

    #[test]
    fn approx_dropper_without_spec_equals_heuristic() {
        use taskdrop_core::ApproxDropper;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 500, 3_000);
        let cfg = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let a = Simulation::new(&scenario, &w, &Pam, &ApproxDropper::paper_default(), cfg, 1).run();
        let h =
            Simulation::new(&scenario, &w, &Pam, &ProactiveDropper::paper_default(), cfg, 1).run();
        assert_eq!(a, h, "with approx disabled the two policies must coincide");
    }

    #[test]
    fn approx_mode_improves_utility_over_plain_dropping() {
        use taskdrop_core::ApproxDropper;
        use taskdrop_model::ApproxSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 800, 4_000);
        let base_cfg = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let approx_cfg = SimConfig { approx: Some(ApproxSpec::half_time()), ..base_cfg };
        let plain =
            Simulation::new(&scenario, &w, &Pam, &ProactiveDropper::paper_default(), base_cfg, 1)
                .run();
        let approx =
            Simulation::new(&scenario, &w, &Pam, &ApproxDropper::paper_default(), approx_cfg, 1)
                .run();
        assert!(
            approx.utility_pct() + 2.0 > plain.utility_pct(),
            "approx utility {:.1} should not trail plain dropping {:.1}",
            approx.utility_pct(),
            plain.utility_pct()
        );
    }
}
