//! The discrete-event simulation engine.

use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::metrics::{TaskFate, TrialResult};
use std::collections::VecDeque;
use taskdrop_core::DropPolicy;
use taskdrop_model::queue as qchain;
use taskdrop_model::view::{
    DropContext, MachineView, MappingInput, PendingView, QueueView, RunningView, UnmappedView,
};
use taskdrop_model::{Machine, Task};
use taskdrop_pmf::{Pmf, Tick};
use taskdrop_sched::MappingHeuristic;
use taskdrop_stats::{derive_seed, new_rng};
use taskdrop_workload::{Scenario, Workload};

/// A task currently executing on a machine.
struct RunningTask {
    task: Task,
    start: Tick,
    finish: Tick,
    /// Running the approximate (degraded) variant.
    degraded: bool,
}

/// A task waiting in a machine queue, possibly degraded to its approximate
/// variant by the dropping policy.
#[derive(Debug, Clone, Copy)]
struct QueuedTask {
    task: Task,
    degraded: bool,
}

/// Mutable per-machine state.
struct MachineSt {
    machine: Machine,
    running: Option<RunningTask>,
    pending: VecDeque<QueuedTask>,
    busy_ticks: u64,
    /// Incremented each time a task starts; stamps Completion/DeadlineKill
    /// events so stale ones (for an already-ended execution) are ignored.
    epoch: u64,
    /// Failure injection: the machine is down (cannot start tasks).
    down: bool,
}

impl MachineSt {
    fn occupancy(&self) -> usize {
        usize::from(self.running.is_some()) + self.pending.len()
    }
}

/// Records the single fate of every workload task and how many are resolved,
/// letting the run loop stop as soon as all work is accounted for (important
/// under failure injection, whose repair events extend past the drain).
struct FateBook {
    fates: Vec<Option<TaskFate>>,
    resolved: usize,
}

impl FateBook {
    fn new(n: usize) -> Self {
        FateBook { fates: vec![None; n], resolved: 0 }
    }

    fn set(&mut self, task: &Task, fate: TaskFate) {
        let slot = &mut self.fates[task.id.index()];
        debug_assert!(slot.is_none(), "task {} assigned two fates", task.id);
        *slot = Some(fate);
        self.resolved += 1;
    }

    fn all_resolved(&self) -> bool {
        self.resolved == self.fates.len()
    }
}

/// One simulation trial: a scenario + workload + mapper + dropper.
///
/// ```
/// use taskdrop_sim::{SimConfig, Simulation};
/// use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};
/// use taskdrop_sched::Pam;
/// use taskdrop_core::ProactiveDropper;
///
/// let scenario = Scenario::specint(7);
/// let level = OversubscriptionLevel::new("demo", 400, 6_000);
/// let workload = Workload::generate(&scenario, &level, 3.0, 1);
/// let dropper = ProactiveDropper::paper_default();
/// let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
/// let sim = Simulation::new(&scenario, &workload, &Pam, &dropper, config, 1);
/// let result = sim.run();
/// assert!(result.is_conserved());
/// ```
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    workload: &'a Workload,
    mapper: &'a dyn MappingHeuristic,
    dropper: &'a dyn DropPolicy,
    config: SimConfig,
    exec_seed: u64,
}

impl<'a> Simulation<'a> {
    /// Assembles a trial. `exec_seed` drives the *actual* execution-time
    /// draws; each (task, machine) pair gets an independent deterministic
    /// stream, so different policies facing the same workload see the same
    /// realised execution times.
    #[must_use]
    pub fn new(
        scenario: &'a Scenario,
        workload: &'a Workload,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
    ) -> Self {
        config.validate();
        Simulation { scenario, workload, mapper, dropper, config, exec_seed }
    }

    /// Pre-generates each machine's failure/repair timeline (exponential
    /// up/down durations) out to a horizon comfortably past the last arrival
    /// — deadlines are short relative to the window, so the system drains
    /// long before the horizon. Timelines derive from the exec seed, so a
    /// given trial sees the same outages under every policy.
    fn schedule_failures(&self, events: &mut EventQueue) {
        let Some(spec) = self.config.failures else { return };
        let horizon = self.workload.horizon().saturating_mul(2) + 120_000;
        let up = taskdrop_stats::ExponentialSampler::new(1.0 / spec.mtbf as f64);
        let repair = taskdrop_stats::ExponentialSampler::new(1.0 / spec.mttr as f64);
        for machine in &self.scenario.machines {
            let mut rng = new_rng(derive_seed(self.exec_seed, 0xFA11_0000 + machine.id.0 as u64));
            let mut t = 0.0f64;
            loop {
                let fail_at = t + up.sample(&mut rng).max(1.0);
                if fail_at >= horizon as f64 {
                    break;
                }
                let up_at = fail_at + repair.sample(&mut rng).max(1.0);
                events.push(fail_at.round() as Tick, Event::MachineFailure(machine.id));
                events.push(up_at.round() as Tick, Event::MachineRepair(machine.id));
                t = up_at;
            }
        }
    }

    /// Actual execution time of `task` on `machine`, drawn from the truth
    /// model. Deterministic per (exec_seed, task, machine) regardless of
    /// event order or policy, so policy comparisons share the same luck.
    fn actual_exec(&self, task: &Task, machine: Machine) -> Tick {
        let stream = task.id.0 * self.scenario.machine_count() as u64 + machine.id.0 as u64;
        let mut rng = new_rng(derive_seed(self.exec_seed, stream));
        self.scenario.truth.sample(task.type_id, machine.type_id, &mut rng)
    }

    /// Runs the trial to completion (system drained back to idle).
    #[must_use]
    pub fn run(self) -> TrialResult {
        let n = self.workload.len();
        let mut fates = FateBook::new(n);
        let mut machines: Vec<MachineSt> = self
            .scenario
            .machines
            .iter()
            .map(|&machine| MachineSt {
                machine,
                running: None,
                pending: VecDeque::with_capacity(self.config.queue_size),
                busy_ticks: 0,
                epoch: 0,
                down: false,
            })
            .collect();
        let mut batch: Vec<Task> = Vec::new();
        let mut events = EventQueue::new();
        for (i, t) in self.workload.tasks.iter().enumerate() {
            events.push(t.arrival, Event::Arrival(i));
        }
        self.schedule_failures(&mut events);
        // Degraded-variant PET, shared by the policy views and the chain
        // computations (built once; cells are time-scaled copies).
        let approx_pet = self
            .config
            .approx
            .map(|spec| taskdrop_model::approx::degraded_pet(&self.scenario.pet, spec));

        let mut now: Tick = 0;
        let mut mapping_events: u64 = 0;
        while let Some((t, ev)) = events.pop() {
            now = t;
            self.handle(ev, now, &mut machines, &mut batch, &mut events, &mut fates);
            // Drain every event sharing this timestamp, then run one
            // mapping event for the batch (a mapping event is "triggered by
            // completing or arrival of a task").
            while events.peek_time() == Some(now) {
                let (_, ev) = events.pop().expect("peeked");
                self.handle(ev, now, &mut machines, &mut batch, &mut events, &mut fates);
            }
            self.mapping_event(
                now,
                &mut machines,
                &mut batch,
                &mut events,
                &mut fates,
                approx_pet.as_ref(),
            );
            mapping_events += 1;
            if fates.all_resolved() {
                // All tasks accounted for; any remaining events are failure
                // timeline entries with nothing left to disturb.
                break;
            }
        }

        debug_assert!(batch.is_empty(), "batch tasks leaked past drain");
        debug_assert!(machines.iter().all(|m| m.running.is_none() && m.pending.is_empty()));

        self.finalize(now, mapping_events, &machines, &fates)
    }

    fn handle(
        &self,
        ev: Event,
        now: Tick,
        machines: &mut [MachineSt],
        batch: &mut Vec<Task>,
        events: &mut EventQueue,
        fates: &mut FateBook,
    ) {
        match ev {
            Event::Arrival(i) => batch.push(self.workload.tasks[i]),
            Event::Completion(mid, epoch) => {
                let m = &mut machines[mid.index()];
                if m.epoch != epoch {
                    return; // stale: that execution was killed earlier
                }
                let r = m.running.take().expect("epoch-matched completion");
                debug_assert_eq!(r.finish, now);
                m.epoch += 1; // invalidate any outstanding kill event
                m.busy_ticks += r.finish - r.start;
                let fate = match (r.finish < r.task.deadline, r.degraded) {
                    (true, false) => TaskFate::OnTime,
                    (true, true) => TaskFate::OnTimeApprox,
                    (false, _) => TaskFate::Late,
                };
                fates.set(&r.task, fate);
                self.start_next(now, m, events, fates);
            }
            Event::DeadlineKill(mid, epoch) => {
                let m = &mut machines[mid.index()];
                if m.epoch != epoch {
                    return; // stale: the execution already ended
                }
                let r = m.running.take().expect("epoch-matched kill");
                debug_assert_eq!(r.task.deadline, now);
                debug_assert!(r.finish >= now, "kill scheduled after completion");
                m.epoch += 1; // invalidate the outstanding completion event
                m.busy_ticks += now - r.start;
                fates.set(&r.task, TaskFate::DroppedReactive);
                self.start_next(now, m, events, fates);
            }
            Event::MachineFailure(mid) => {
                let m = &mut machines[mid.index()];
                m.down = true;
                if let Some(r) = m.running.take() {
                    m.epoch += 1; // invalidate completion/kill events
                    m.busy_ticks += now - r.start;
                    fates.set(&r.task, TaskFate::LostToFailure);
                }
            }
            Event::MachineRepair(mid) => {
                let m = &mut machines[mid.index()];
                m.down = false;
                self.start_next(now, m, events, fates);
            }
        }
    }

    /// Starts the next runnable pending task on an idle machine, reactively
    /// dropping heads that can no longer begin before their deadlines.
    fn start_next(
        &self,
        now: Tick,
        m: &mut MachineSt,
        events: &mut EventQueue,
        fates: &mut FateBook,
    ) {
        debug_assert!(m.running.is_none());
        if m.down {
            return; // queue frozen until repair
        }
        while let Some(QueuedTask { task, degraded }) = m.pending.pop_front() {
            if task.expired(now) {
                fates.set(&task, TaskFate::DroppedReactive);
                continue;
            }
            let full_exec = self.actual_exec(&task, m.machine);
            let exec = if degraded {
                let factor = self.config.approx.map_or(1.0, |a| a.time_factor);
                ((full_exec as f64 * factor).round() as Tick).max(1)
            } else {
                full_exec
            };
            let finish = now + exec;
            m.epoch += 1;
            if self.config.kill_running_at_deadline && finish >= task.deadline {
                // The execution will overshoot (or exactly meet) the
                // deadline; the engine kills it right at the deadline
                // (live-video semantics). Pushed *before* the completion so
                // that on a `finish == deadline` tie the kill wins and the
                // completion goes stale. Scheduling the kill only when it
                // will fire keeps the heap small; the engine's foreknowledge
                // of `finish` is not leaked to any policy.
                events.push(task.deadline, Event::DeadlineKill(m.machine.id, m.epoch));
            }
            events.push(finish, Event::Completion(m.machine.id, m.epoch));
            m.running = Some(RunningTask { task, start: now, finish, degraded });
            return;
        }
    }

    /// One mapping event: reactive drops, the dropping policy, the mapping
    /// heuristic, then starting idle machines (paper Figure 4 + Mapper).
    fn mapping_event(
        &self,
        now: Tick,
        machines: &mut [MachineSt],
        batch: &mut Vec<Task>,
        events: &mut EventQueue,
        fates: &mut FateBook,
        approx_pet: Option<&taskdrop_model::PetMatrix>,
    ) {
        let pet = &self.scenario.pet;

        // (1) Reactive drops: machine queues and batch queue.
        for m in machines.iter_mut() {
            m.pending.retain(|qt| {
                let keep = !qt.task.expired(now);
                if !keep {
                    fates.set(&qt.task, TaskFate::DroppedReactive);
                }
                keep
            });
        }
        batch.retain(|task| {
            let keep = !task.expired(now);
            if !keep {
                fates.set(task, TaskFate::DroppedReactive);
            }
            keep
        });

        // (2) Proactive dropping policy, queue by queue.
        let capacity = self.scenario.capacity(self.config.queue_size);
        let ctx = DropContext {
            compaction: self.config.compaction,
            pressure: batch.len() as f64 / capacity as f64,
            approx: self.config.approx,
        };
        for m in machines.iter_mut() {
            if m.pending.is_empty() {
                continue;
            }
            let view = QueueView {
                machine: m.machine.id,
                machine_type: m.machine.type_id,
                now,
                running: running_view(pet, now, m, self.config),
                pending: m
                    .pending
                    .iter()
                    .map(|qt| PendingView {
                        id: qt.task.id,
                        type_id: qt.task.type_id,
                        deadline: qt.task.deadline,
                        degraded: qt.degraded,
                    })
                    .collect(),
                pet,
                approx_pet,
            };
            let decision = self.dropper.select_drops(&view, &ctx);
            let mut last: Option<usize> = None;
            for &idx in &decision.drops {
                assert!(idx < m.pending.len(), "dropper returned out-of-range index");
                assert!(last.is_none_or(|p| p < idx), "dropper indices must increase");
                last = Some(idx);
            }
            // Degrades: validated, disjoint from drops, not already degraded.
            let mut last_deg: Option<usize> = None;
            for &idx in &decision.degrades {
                assert!(idx < m.pending.len(), "degrade index out of range");
                assert!(last_deg.is_none_or(|p| p < idx), "degrade indices must increase");
                assert!(!decision.drops.contains(&idx), "cannot drop and degrade one task");
                assert!(
                    self.config.approx.is_some(),
                    "policy degraded a task but approximate computing is disabled"
                );
                assert!(!m.pending[idx].degraded, "task degraded twice");
                m.pending[idx].degraded = true;
                last_deg = Some(idx);
            }
            for &idx in decision.drops.iter().rev() {
                let qt = m.pending.remove(idx).expect("validated index");
                fates.set(&qt.task, TaskFate::DroppedProactive);
            }
        }

        // (3) Mapping heuristic fills free slots from the batch queue.
        if !batch.is_empty() {
            let machine_views: Vec<MachineView> = machines
                .iter()
                .map(|m| {
                    // A down machine exposes no free slots: the mapper must
                    // not feed a queue that cannot drain.
                    let free_slots = if m.down {
                        0
                    } else {
                        self.config.queue_size - m.occupancy().min(self.config.queue_size)
                    };
                    // Tails are only consulted for machines the mapper can
                    // fill; skipping full queues avoids most of the chain
                    // work in heavy oversubscription.
                    let tail = if free_slots == 0 {
                        Pmf::point(now)
                    } else {
                        queue_tail(pet, approx_pet, now, m, self.config)
                    };
                    MachineView {
                        machine: m.machine.id,
                        machine_type: m.machine.type_id,
                        free_slots,
                        tail,
                    }
                })
                .collect();
            let unmapped: Vec<UnmappedView> = batch
                .iter()
                .map(|t| UnmappedView {
                    id: t.id,
                    type_id: t.type_id,
                    arrival: t.arrival,
                    deadline: t.deadline,
                })
                .collect();
            let input = MappingInput {
                now,
                pet,
                machines: machine_views,
                unmapped: &unmapped,
                compaction: self.config.compaction,
            };
            let assignments = self.mapper.map(input);

            let mut taken = vec![false; batch.len()];
            for a in &assignments {
                assert!(a.task_idx < batch.len(), "mapper returned out-of-range task index");
                assert!(!taken[a.task_idx], "mapper assigned a task twice");
                taken[a.task_idx] = true;
                let m = &mut machines[a.machine.index()];
                assert!(
                    m.occupancy() < self.config.queue_size,
                    "mapper overfilled queue of {}",
                    a.machine
                );
                m.pending.push_back(QueuedTask { task: batch[a.task_idx], degraded: false });
            }
            let mut keep_iter = taken.iter();
            batch.retain(|_| !keep_iter.next().expect("mask sized to batch"));
        }

        // (4) Idle machines start their newly queued work immediately.
        for m in machines.iter_mut() {
            if m.running.is_none() && !m.pending.is_empty() {
                self.start_next(now, m, events, fates);
            }
        }
    }

    fn finalize(
        &self,
        makespan: Tick,
        mapping_events: u64,
        machines: &[MachineSt],
        fates: &FateBook,
    ) -> TrialResult {
        let n = fates.fates.len();
        let lo = self.config.exclude_boundary.min(n);
        let hi = n.saturating_sub(self.config.exclude_boundary).max(lo);
        let mut on_time = 0;
        let mut on_time_approx = 0;
        let mut late = 0;
        let mut reactive = 0;
        let mut proactive = 0;
        let mut lost = 0;
        for fate in &fates.fates[lo..hi] {
            match fate.expect("every task must have a fate after drain") {
                TaskFate::OnTime => on_time += 1,
                TaskFate::OnTimeApprox => on_time_approx += 1,
                TaskFate::Late => late += 1,
                TaskFate::DroppedReactive => reactive += 1,
                TaskFate::DroppedProactive => proactive += 1,
                TaskFate::LostToFailure => lost += 1,
            }
        }
        let busy_ticks: Vec<u64> = machines.iter().map(|m| m.busy_ticks).collect();
        let cost_dollars: f64 = machines
            .iter()
            .map(|m| m.busy_ticks as f64 / 3_600_000.0 * self.scenario.price_per_hour(m.machine.id))
            .sum();
        TrialResult {
            total_tasks: n,
            counted_tasks: hi - lo,
            on_time,
            on_time_approx,
            approx_value: self.config.approx.map_or(0.0, |a| a.value),
            late,
            dropped_reactive: reactive,
            dropped_proactive: proactive,
            lost_to_failure: lost,
            busy_ticks,
            cost_dollars,
            makespan,
            mapping_events,
        }
    }
}

/// Completion-time view of the running task: the learned execution PMF
/// shifted to its start tick and conditioned on "not finished by now"; falls
/// back to a point mass one tick ahead when the learned support is already
/// exhausted (the actual draw exceeded everything the PET saw). Under
/// kill-at-deadline semantics the machine frees no later than the running
/// task's deadline, so the estimate is clamped there.
fn running_view(
    pet: &taskdrop_model::PetMatrix,
    now: Tick,
    m: &MachineSt,
    config: SimConfig,
) -> Option<RunningView> {
    let r = m.running.as_ref()?;
    // A degraded runner's estimate scales its learned PMF the same way the
    // engine scales its actual draw.
    let exec_estimate = if r.degraded {
        let factor = config.approx.map_or(1.0, |a| a.time_factor);
        pet.pmf(r.task.type_id, m.machine.type_id).time_scale(factor)
    } else {
        pet.pmf(r.task.type_id, m.machine.type_id).clone()
    };
    let shifted = exec_estimate.shift(r.start);
    let mut completion = shifted.condition_at_least(now + 1).unwrap_or_else(|| Pmf::point(now + 1));
    if self_kill_applies(config, r, now) {
        completion = completion.clamp_max(r.task.deadline.max(now + 1));
    }
    Some(RunningView {
        id: r.task.id,
        type_id: r.task.type_id,
        deadline: r.task.deadline,
        completion,
    })
}

/// The clamp only applies while the kill can still fire (deadline ahead).
fn self_kill_applies(config: SimConfig, r: &RunningTask, now: Tick) -> bool {
    config.kill_running_at_deadline && r.task.deadline > now
}

/// Completion PMF of the queue tail: where a newly appended task would wait.
/// Degraded entries chain with the degraded PET.
fn queue_tail(
    pet: &taskdrop_model::PetMatrix,
    approx_pet: Option<&taskdrop_model::PetMatrix>,
    now: Tick,
    m: &MachineSt,
    config: SimConfig,
) -> Pmf {
    let base = match running_view(pet, now, m, config) {
        Some(r) => r.completion,
        None => Pmf::point(now),
    };
    if m.pending.is_empty() {
        return base;
    }
    let tasks: Vec<qchain::ChainTask<'_>> = m
        .pending
        .iter()
        .map(|qt| {
            let source = if qt.degraded { approx_pet.unwrap_or(pet) } else { pet };
            qchain::ChainTask {
                deadline: qt.task.deadline,
                exec: source.pmf(qt.task.type_id, m.machine.type_id),
            }
        })
        .collect();
    let links = qchain::chain(&base, &tasks, config.compaction);
    links.last().expect("non-empty pending").completion.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_core::{ProactiveDropper, ReactiveOnly};
    use taskdrop_sched::{Fcfs, MinMin, Pam};
    use taskdrop_workload::OversubscriptionLevel;

    fn small_workload(scenario: &Scenario, tasks: usize, window: Tick) -> Workload {
        let level = OversubscriptionLevel::new("test", tasks, window);
        Workload::generate(scenario, &level, 3.0, 42)
    }

    fn config_no_boundary() -> SimConfig {
        SimConfig { exclude_boundary: 0, ..SimConfig::default() }
    }

    #[test]
    fn conservation_every_task_has_one_fate() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 4_000);
        let r = Simulation::new(
            &scenario,
            &w,
            &MinMin,
            &ProactiveDropper::paper_default(),
            config_no_boundary(),
            1,
        )
        .run();
        assert_eq!(r.counted_tasks, 400);
        assert!(r.is_conserved(), "{r:?}");
    }

    #[test]
    fn underloaded_system_completes_everything() {
        let scenario = Scenario::specint(7);
        // 50 tasks over 100 s: ~0.5 tasks/s against ~64/s capacity.
        let w = small_workload(&scenario, 50, 100_000);
        let r =
            Simulation::new(&scenario, &w, &MinMin, &ReactiveOnly, config_no_boundary(), 1).run();
        assert!(
            r.robustness_pct() > 95.0,
            "underloaded robustness {:.1}% (fates: late {}, reactive {})",
            r.robustness_pct(),
            r.late,
            r.dropped_reactive
        );
        assert_eq!(r.dropped_proactive, 0);
    }

    #[test]
    fn oversubscription_degrades_robustness() {
        let scenario = Scenario::specint(7);
        let light = small_workload(&scenario, 300, 30_000);
        let heavy = small_workload(&scenario, 1200, 10_000);
        let run = |w: &Workload| {
            Simulation::new(&scenario, w, &Pam, &ReactiveOnly, config_no_boundary(), 1)
                .run()
                .robustness_pct()
        };
        assert!(run(&light) > run(&heavy) + 5.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 300, 3_000);
        let run = || {
            Simulation::new(
                &scenario,
                &w,
                &Pam,
                &ProactiveDropper::paper_default(),
                config_no_boundary(),
                9,
            )
            .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exec_seed_changes_outcomes() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 500, 5_000);
        let run = |seed| {
            Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, config_no_boundary(), seed).run()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn boundary_exclusion_shrinks_counted_window() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 4_000);
        let cfg = SimConfig { exclude_boundary: 100, ..SimConfig::default() };
        let r = Simulation::new(&scenario, &w, &MinMin, &ReactiveOnly, cfg, 1).run();
        assert_eq!(r.total_tasks, 400);
        assert_eq!(r.counted_tasks, 200);
        assert!(r.is_conserved());
    }

    #[test]
    fn queue_size_one_still_works() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 200, 4_000);
        let cfg = SimConfig { queue_size: 1, exclude_boundary: 0, ..SimConfig::default() };
        let r = Simulation::new(&scenario, &w, &Fcfs, &ReactiveOnly, cfg, 1).run();
        assert!(r.is_conserved());
    }

    #[test]
    fn proactive_dropper_records_proactive_fates() {
        let scenario = Scenario::specint(7);
        // Heavy oversubscription so dropping definitely engages.
        let w = small_workload(&scenario, 1000, 8_000);
        let r = Simulation::new(
            &scenario,
            &w,
            &Pam,
            &ProactiveDropper::paper_default(),
            config_no_boundary(),
            1,
        )
        .run();
        assert!(r.dropped_proactive > 0, "expected proactive drops: {r:?}");
    }

    #[test]
    fn failure_injection_loses_tasks_and_conserves() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 8_000);
        let cfg = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 2_000, mttr: 500 }),
            ..SimConfig::default()
        };
        let r = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, cfg, 1).run();
        assert!(r.is_conserved(), "{r:?}");
        assert!(r.lost_to_failure > 0, "flaky machines must lose some work: {r:?}");
    }

    #[test]
    fn failures_reduce_robustness() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 400, 8_000);
        let healthy = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let flaky = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 1_500, mttr: 800 }),
            ..SimConfig::default()
        };
        let a = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, healthy, 1).run();
        let b = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, flaky, 1).run();
        assert!(
            a.robustness_pct() > b.robustness_pct(),
            "healthy {:.1}% vs flaky {:.1}%",
            a.robustness_pct(),
            b.robustness_pct()
        );
    }

    #[test]
    fn failure_injection_is_deterministic() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 300, 4_000);
        let cfg = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 3_000, mttr: 400 }),
            ..SimConfig::default()
        };
        let run = || Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, cfg, 9).run();
        assert_eq!(run(), run());
    }

    #[test]
    fn near_infinite_mtbf_behaves_like_no_failures() {
        use crate::config::FailureSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 300, 4_000);
        let none = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let rare = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: u64::MAX / 4, mttr: 100 }),
            ..SimConfig::default()
        };
        let a = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, none, 1).run();
        let b = Simulation::new(&scenario, &w, &Pam, &ReactiveOnly, rare, 1).run();
        assert_eq!(a.on_time, b.on_time);
        assert_eq!(b.lost_to_failure, 0);
    }

    #[test]
    fn busy_time_and_cost_accrue() {
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 200, 10_000);
        let r =
            Simulation::new(&scenario, &w, &MinMin, &ReactiveOnly, config_no_boundary(), 1).run();
        assert!(r.busy_ticks.iter().sum::<u64>() > 0);
        assert!(r.cost_dollars > 0.0);
        assert!(r.makespan > 0);
    }

    #[test]
    fn approx_mode_yields_partial_completions() {
        use taskdrop_core::ApproxDropper;
        use taskdrop_model::ApproxSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 800, 4_000);
        let cfg = SimConfig {
            exclude_boundary: 0,
            approx: Some(ApproxSpec::new(0.4, 0.6)),
            ..SimConfig::default()
        };
        let r = Simulation::new(&scenario, &w, &Pam, &ApproxDropper::paper_default(), cfg, 1).run();
        assert!(r.is_conserved(), "{r:?}");
        assert!(r.on_time_approx > 0, "degradation never engaged: {r:?}");
        assert!(r.utility_pct() > r.robustness_pct());
        assert!((r.approx_value - 0.6).abs() < 1e-12);
    }

    #[test]
    fn approx_dropper_without_spec_equals_heuristic() {
        use taskdrop_core::ApproxDropper;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 500, 3_000);
        let cfg = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let a = Simulation::new(&scenario, &w, &Pam, &ApproxDropper::paper_default(), cfg, 1).run();
        let h =
            Simulation::new(&scenario, &w, &Pam, &ProactiveDropper::paper_default(), cfg, 1).run();
        assert_eq!(a, h, "with approx disabled the two policies must coincide");
    }

    #[test]
    fn approx_mode_improves_utility_over_plain_dropping() {
        use taskdrop_core::ApproxDropper;
        use taskdrop_model::ApproxSpec;
        let scenario = Scenario::specint(7);
        let w = small_workload(&scenario, 800, 4_000);
        let base_cfg = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let approx_cfg = SimConfig { approx: Some(ApproxSpec::half_time()), ..base_cfg };
        let plain =
            Simulation::new(&scenario, &w, &Pam, &ProactiveDropper::paper_default(), base_cfg, 1)
                .run();
        let approx =
            Simulation::new(&scenario, &w, &Pam, &ApproxDropper::paper_default(), approx_cfg, 1)
                .run();
        assert!(
            approx.utility_pct() + 2.0 > plain.utility_pct(),
            "approx utility {:.1} should not trail plain dropping {:.1}",
            approx.utility_pct(),
            plain.utility_pct()
        );
    }
}
