//! Streaming observation of a running trial.
//!
//! A [`SimObserver`] attached to a [`SimCore`](crate::SimCore) receives one
//! [`SimEvent`] for every state change the engine makes — mapping, starts,
//! completions, drops, degradations, deadline kills, machine failures and
//! repairs — as it happens, instead of waiting for the end-of-trial
//! [`TrialResult`]. Observers are strictly read-only: they cannot influence
//! the trial, so an instrumented run is byte-identical to a bare one.
//!
//! [`MetricsObserver`] rebuilds a full [`TrialResult`] from nothing but the
//! event stream; the integration tests assert it matches the engine's own
//! accounting exactly, which pins down the stream's completeness (every task
//! receives exactly one terminal event, busy time is fully attributed).

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::{TaskFate, TrialResult};
use serde::{Deserialize, Serialize};
use taskdrop_model::{MachineId, Task, TaskId, TaskTypeId};
use taskdrop_pmf::Tick;
use taskdrop_workload::Scenario;

/// Why a task was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropKind {
    /// The engine's reactive rule: the deadline had already passed while the
    /// task waited (batch queue, machine queue, or at the head of the queue
    /// when the machine became free).
    Reactive,
    /// The configured dropping policy sacrificed the task to raise the
    /// queue's instantaneous robustness.
    Proactive,
}

/// Which backpressure rule turned an offered task away at admission (the
/// serving layer in front of [`SimCore`](crate::SimCore); see
/// [`SimEvent::AdmissionDropped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDropKind {
    /// The bounded ingress queue was full and the policy rejects new work.
    RejectedFull,
    /// The oldest queued entry was evicted to make room for a newer one.
    ShedOldest,
    /// The probabilistic pre-drop refused the task: its estimated chance of
    /// success (completion-PMF mass before the deadline, the paper's Eq 2)
    /// fell below the configured threshold.
    PreDropped,
    /// The task's deadline passed while it waited in the ingress queue,
    /// before it could be injected.
    Expired,
    /// The offer could not be injected at all (e.g. it named a task type
    /// the scenario lacks — a misconfigured traffic source).
    Invalid,
}

/// Why a dependency-aware layer forfeited a graph node before it ever
/// reached the core (see [`SimEvent::CascadeForfeited`]). Forfeiture is the
/// graph counterpart of a drop: the node itself was still viable, but the
/// work it depends on (or the subtree it anchors) is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForfeitKind {
    /// A predecessor was dropped, killed, or lost, so this node's inputs
    /// will never exist.
    Cascade,
    /// The node's whole subtree was shed by a graph-aware pruning policy
    /// (its estimated chance of success fell below the threshold).
    Pruned,
    /// A chain-aware admission controller turned the node away at release
    /// time; with its output missing, the subtree is forfeited with it.
    AdmissionShed,
}

/// Which side of a cross-shard migration an event describes (see
/// [`SimEvent::TaskMigrated`]). Every migration emits exactly one
/// [`Donated`](MigrationKind::Donated) event on the source shard and one
/// [`Received`](MigrationKind::Received) event on the destination shard, so
/// fleet-wide the two counts always balance — the no-duplication /
/// no-loss ledger of the work-stealing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationKind {
    /// The task left this shard's ingress queue for another shard.
    Donated,
    /// The task joined this shard's ingress queue from another shard.
    Received,
}

/// One engine state change, streamed to observers as it happens.
///
/// Every task admitted to the core receives **exactly one terminal event**:
/// [`SimEvent::Completed`], [`SimEvent::Killed`], [`SimEvent::Dropped`], or
/// [`SimEvent::MachineFailed`] with `lost = Some(id)`. All other events are
/// lifecycle notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SimEvent {
    /// A task entered the batch queue (its arrival tick is `task.arrival`).
    Arrived {
        /// The arriving task.
        task: Task,
    },
    /// The mapping heuristic assigned a task to a machine queue.
    Mapped {
        /// The mapped task.
        task: TaskId,
        /// Destination machine.
        machine: MachineId,
        /// Mapping time.
        now: Tick,
    },
    /// A task began executing.
    Started {
        /// The started task.
        task: TaskId,
        /// Executing machine.
        machine: MachineId,
        /// Start time.
        now: Tick,
        /// Whether it runs the approximate (degraded) variant.
        degraded: bool,
    },
    /// The dropping policy degraded a queued task to its approximate variant.
    Degraded {
        /// The degraded task.
        task: TaskId,
        /// Machine whose queue holds the task.
        machine: MachineId,
        /// Decision time.
        now: Tick,
    },
    /// A task ran to completion. **Terminal.**
    Completed {
        /// The completed task.
        task: TaskId,
        /// Executing machine.
        machine: MachineId,
        /// Completion time.
        now: Tick,
        /// Whether it finished strictly before its deadline.
        on_time: bool,
        /// Whether it ran the approximate (degraded) variant.
        degraded: bool,
    },
    /// A running task was killed at its deadline (live-video semantics;
    /// counted as a reactive drop). **Terminal.**
    Killed {
        /// The killed task.
        task: TaskId,
        /// Machine it was running on.
        machine: MachineId,
        /// Kill time (the task's deadline).
        now: Tick,
    },
    /// A waiting task was dropped. **Terminal.**
    Dropped {
        /// The dropped task.
        task: TaskId,
        /// Drop time.
        now: Tick,
        /// Reactive expiry or a proactive policy decision.
        kind: DropKind,
    },
    /// A machine failed; any running task is lost. **Terminal** for `lost`.
    MachineFailed {
        /// The failed machine.
        machine: MachineId,
        /// Failure time.
        now: Tick,
        /// The task lost mid-execution, if the machine was busy.
        lost: Option<TaskId>,
    },
    /// A machine came back from repair.
    MachineRepaired {
        /// The repaired machine.
        machine: MachineId,
        /// Repair time.
        now: Tick,
    },
    /// A mapping event (reactive drops → policy → mapper → starts) finished.
    /// Emitted once per [`SimCore::step`](crate::SimCore::step); marks a
    /// consistent point for dashboards and metrics.
    MappingRound {
        /// Time of the mapping event.
        now: Tick,
    },
    /// A serving-layer admission controller turned an offered task away
    /// *before* it was admitted to the core (emitted by `taskdrop_serve`
    /// through [`SimCore::notify_observers`](crate::SimCore::notify_observers),
    /// never by the core itself). The task was never assigned a [`TaskId`],
    /// so this is **not** a terminal event and does not enter the fate
    /// accounting — it is the admission layer's own loss ledger.
    AdmissionDropped {
        /// Requested task type.
        type_id: TaskTypeId,
        /// Nominal arrival tick of the offered task.
        arrival: Tick,
        /// Requested deadline.
        deadline: Tick,
        /// Decision time (the serving layer's virtual clock).
        now: Tick,
        /// Which backpressure rule fired.
        kind: AdmissionDropKind,
    },
    /// A dependency-aware graph layer (`taskdrop_dag`) forfeited a held
    /// graph node: its predecessors can no longer produce the inputs it
    /// needs, its subtree was pruned, or admission shed it at release time.
    /// Emitted from outside the core through
    /// [`SimCore::notify_observers`](crate::SimCore::notify_observers),
    /// never by the core itself. The node was never injected, so it has no
    /// [`TaskId`] and this is **not** a terminal event for the core's own
    /// fate accounting — it is the graph layer's loss ledger, mirrored into
    /// [`MetricsObserver`] totals as [`TaskFate::Forfeited`].
    CascadeForfeited {
        /// Graph instance the node belongs to (the coordinator's dense
        /// graph index).
        graph: u64,
        /// Node index within its graph.
        node: u32,
        /// The resolved core task whose fate triggered the cascade, if the
        /// trigger was a predecessor's drop/kill/loss (`None` for pruning
        /// and admission shedding, which fire before any task exists).
        cause: Option<TaskId>,
        /// Decision time.
        now: Tick,
        /// Why the node was forfeited.
        kind: ForfeitKind,
    },
    /// A serving-layer fleet moved a still-queued ingress offer from one
    /// shard to another at an epoch barrier (deterministic work stealing).
    /// Emitted from outside the core through
    /// [`SimCore::notify_observers`](crate::SimCore::notify_observers),
    /// never by the core itself, once per side: the donor shard sees
    /// [`MigrationKind::Donated`], the receiver [`MigrationKind::Received`].
    /// The offer had not been admitted yet, so it has no [`TaskId`] and this
    /// is **not** a terminal event — it is the migration ledger of the
    /// work-stealing layer.
    TaskMigrated {
        /// Requested task type of the migrated offer.
        type_id: TaskTypeId,
        /// Nominal arrival tick of the offer.
        arrival: Tick,
        /// Requested deadline.
        deadline: Tick,
        /// Decision time (the fleet's epoch-barrier clock).
        now: Tick,
        /// Which side of the transfer this shard is.
        kind: MigrationKind,
        /// Fleet index of the shard on the other side of the transfer.
        peer: u32,
    },
}

impl SimEvent {
    /// If this event is terminal for a task, the task and its
    /// [`TaskFate`] — the same mapping the engine's own accounting uses.
    #[must_use]
    pub fn resolved(&self) -> Option<(TaskId, TaskFate)> {
        match *self {
            SimEvent::Completed { task, on_time, degraded, .. } => {
                let fate = match (on_time, degraded) {
                    (true, false) => TaskFate::OnTime,
                    (true, true) => TaskFate::OnTimeApprox,
                    (false, _) => TaskFate::Late,
                };
                Some((task, fate))
            }
            SimEvent::Killed { task, .. } => Some((task, TaskFate::DroppedReactive)),
            SimEvent::Dropped { task, kind, .. } => {
                let fate = match kind {
                    DropKind::Reactive => TaskFate::DroppedReactive,
                    DropKind::Proactive => TaskFate::DroppedProactive,
                };
                Some((task, fate))
            }
            SimEvent::MachineFailed { lost: Some(task), .. } => {
                Some((task, TaskFate::LostToFailure))
            }
            _ => None,
        }
    }
}

/// A read-only subscriber to the engine's event stream.
///
/// Observers run synchronously inside [`SimCore::step`](crate::SimCore::step)
/// in attachment order; keep `on_event` cheap for hot trials.
pub trait SimObserver {
    /// Called for every [`SimEvent`], in simulation order.
    fn on_event(&mut self, ev: &SimEvent);
}

/// Any `FnMut(&SimEvent)` closure is an observer.
impl<F: FnMut(&SimEvent)> SimObserver for F {
    fn on_event(&mut self, ev: &SimEvent) {
        self(ev)
    }
}

/// The event delivery backend of a [`SimCore`](crate::SimCore).
///
/// The core is generic over how events leave it. The default hub — a
/// `Vec<Box<dyn SimObserver>>` — delivers synchronously to dynamically
/// attached observers and is the right choice everywhere single-threaded.
/// [`EventRelay`] instead buffers events in a plain `Vec<SimEvent>`; it
/// holds no trait objects, so a core built on it is `Send` and can run an
/// epoch on a worker thread, with the buffered events drained at the
/// single-threaded epoch barrier in deterministic shard order.
///
/// A hub is passive storage/fan-out only: it must not influence the trial
/// (the same read-only contract as [`SimObserver`]). `Default` is the
/// empty hub, used by checkpoint restore and core assembly.
pub trait ObserverHub: Default {
    /// Delivers one event, in simulation order.
    fn deliver(&mut self, ev: &SimEvent);
}

/// The default hub: synchronous fan-out to attached boxed observers.
impl<'a> ObserverHub for Vec<Box<dyn SimObserver + 'a>> {
    fn deliver(&mut self, ev: &SimEvent) {
        for obs in self.iter_mut() {
            obs.on_event(ev);
        }
    }
}

/// A `Send` observer hub that buffers events instead of delivering them.
///
/// This is the hub the parallel fleet runs on: a
/// [`SimCore<EventRelay>`](crate::SimCore) owns no `dyn SimObserver`
/// boxes, so whole shards move onto crossbeam scoped threads; after the
/// epoch's parallel phase, the driver drains each shard's relay **in
/// shard-index order** on the barrier thread and feeds the events to
/// telemetry there. Because every consumer folds over event *data* only,
/// barrier-time replay is byte-identical to inline delivery at any worker
/// count.
#[derive(Debug, Default)]
pub struct EventRelay {
    events: Vec<SimEvent>,
}

impl EventRelay {
    /// An empty relay.
    #[must_use]
    pub fn new() -> Self {
        EventRelay::default()
    }

    /// Buffered events not yet drained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes every buffered event, leaving the relay empty (the buffer's
    /// allocation is handed off with the events).
    #[must_use]
    pub fn take(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }
}

impl ObserverHub for EventRelay {
    fn deliver(&mut self, ev: &SimEvent) {
        self.events.push(*ev);
    }
}

/// An observer that records every event (tests, offline analysis, replays).
#[derive(Debug, Default)]
pub struct EventLog {
    /// Events in simulation order.
    pub events: Vec<SimEvent>,
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        EventLog::default()
    }
}

impl SimObserver for EventLog {
    fn on_event(&mut self, ev: &SimEvent) {
        self.events.push(*ev);
    }
}

/// Rebuilds a [`TrialResult`] from the event stream alone.
///
/// This is the "metrics as a pluggable observer" half of the API: it holds
/// no reference to the engine and sees only what every other observer sees,
/// yet [`MetricsObserver::result`] reproduces the engine's own
/// [`TrialResult`] byte for byte (asserted by the integration tests). Use it
/// as a template for custom streaming metrics.
///
/// Attach it **before the first step**: the reconstruction can only cover
/// events the observer actually saw, so one attached mid-trial reports only
/// the remainder (tasks resolved earlier are missing from its totals, and
/// executions already in flight contribute no busy time).
#[derive(Debug)]
pub struct MetricsObserver {
    exclude_boundary: usize,
    approx_value: f64,
    /// Hourly price per machine index (from the scenario's machine types).
    prices: Vec<f64>,
    fates: Vec<Option<TaskFate>>,
    busy_ticks: Vec<u64>,
    /// Start tick of each machine's current execution.
    running_since: Vec<Option<Tick>>,
    makespan: Tick,
    mapping_events: u64,
    /// Graph nodes forfeited before injection ([`SimEvent::CascadeForfeited`]).
    forfeited: usize,
}

impl MetricsObserver {
    /// An observer mirroring the accounting the engine would do under
    /// `config` on `scenario`.
    #[must_use]
    pub fn new(scenario: &Scenario, config: &SimConfig) -> Self {
        MetricsObserver {
            exclude_boundary: config.exclude_boundary,
            approx_value: config.approx.map_or(0.0, |a| a.value),
            prices: scenario.machines.iter().map(|m| scenario.price_per_hour(m.id)).collect(),
            fates: Vec::new(),
            busy_ticks: vec![0; scenario.machine_count()],
            running_since: vec![None; scenario.machine_count()],
            makespan: 0,
            mapping_events: 0,
            forfeited: 0,
        }
    }

    /// Graph nodes seen forfeited so far (the
    /// [`SimEvent::CascadeForfeited`] tally; 0 for independent-task
    /// trials).
    #[must_use]
    pub fn forfeited(&self) -> usize {
        self.forfeited
    }

    fn set_fate(&mut self, task: TaskId, fate: TaskFate) {
        let idx = task.index();
        if self.fates.len() <= idx {
            self.fates.resize(idx + 1, None);
        }
        debug_assert!(self.fates[idx].is_none(), "task {task} resolved twice in event stream");
        self.fates[idx] = Some(fate);
    }

    fn accrue_busy(&mut self, machine: MachineId, now: Tick) {
        // A missing start means the observer was attached while this
        // execution was already running; its ticks cannot be attributed.
        if let Some(start) = self.running_since[machine.index()].take() {
            self.busy_ticks[machine.index()] += now - start;
        }
    }

    /// The reconstructed [`TrialResult`].
    ///
    /// Forfeited graph nodes never received a [`TaskId`], so they ride on
    /// top of the per-task fate table: each observed
    /// [`SimEvent::CascadeForfeited`] adds one task with
    /// [`TaskFate::Forfeited`] to the totals and the counted window (never
    /// boundary-trimmed — forfeiture is a steady-state loss, not a warm-up
    /// artefact), keeping the result conserved and the robustness
    /// denominator honest about every unit of offered graph work.
    ///
    /// # Errors
    ///
    /// [`SimError::NotDrained`] if any observed task has no terminal event
    /// yet.
    pub fn result(&self) -> Result<TrialResult, SimError> {
        let n = self.fates.len();
        let resolved = self.fates.iter().filter(|f| f.is_some()).count();
        if resolved != n {
            return Err(SimError::NotDrained { resolved, total: n });
        }
        let mut result = TrialResult::from_accounting(
            &self.fates,
            self.exclude_boundary,
            self.approx_value,
            self.busy_ticks.clone(),
            &self.prices,
            self.makespan,
            self.mapping_events,
        );
        result.total_tasks += self.forfeited;
        result.counted_tasks += self.forfeited;
        result.forfeited += self.forfeited;
        Ok(result)
    }
}

impl SimObserver for MetricsObserver {
    fn on_event(&mut self, ev: &SimEvent) {
        if let Some((task, fate)) = ev.resolved() {
            self.set_fate(task, fate);
        }
        match *ev {
            SimEvent::Arrived { task } => {
                // Reserve the fate slot so totals count tasks that are still
                // in flight.
                let idx = task.id.index();
                if self.fates.len() <= idx {
                    self.fates.resize(idx + 1, None);
                }
            }
            SimEvent::Started { machine, now, .. } => {
                self.running_since[machine.index()] = Some(now);
            }
            SimEvent::Completed { machine, now, .. } | SimEvent::Killed { machine, now, .. } => {
                self.accrue_busy(machine, now);
            }
            SimEvent::MachineFailed { machine, now, lost: Some(_) } => {
                self.accrue_busy(machine, now);
            }
            SimEvent::MappingRound { now } => {
                self.makespan = now;
                self.mapping_events += 1;
            }
            SimEvent::CascadeForfeited { .. } => {
                self.forfeited += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_model::TaskTypeId;

    fn task(id: u64) -> Task {
        Task::new(TaskId(id), TaskTypeId(0), 5, 50)
    }

    #[test]
    fn resolved_maps_terminal_events_to_fates() {
        let m = MachineId(0);
        let cases = [
            (
                SimEvent::Completed {
                    task: TaskId(1),
                    machine: m,
                    now: 9,
                    on_time: true,
                    degraded: false,
                },
                Some((TaskId(1), TaskFate::OnTime)),
            ),
            (
                SimEvent::Completed {
                    task: TaskId(1),
                    machine: m,
                    now: 9,
                    on_time: true,
                    degraded: true,
                },
                Some((TaskId(1), TaskFate::OnTimeApprox)),
            ),
            (
                SimEvent::Completed {
                    task: TaskId(1),
                    machine: m,
                    now: 9,
                    on_time: false,
                    degraded: false,
                },
                Some((TaskId(1), TaskFate::Late)),
            ),
            (
                SimEvent::Killed { task: TaskId(2), machine: m, now: 9 },
                Some((TaskId(2), TaskFate::DroppedReactive)),
            ),
            (
                SimEvent::Dropped { task: TaskId(3), now: 9, kind: DropKind::Proactive },
                Some((TaskId(3), TaskFate::DroppedProactive)),
            ),
            (
                SimEvent::MachineFailed { machine: m, now: 9, lost: Some(TaskId(4)) },
                Some((TaskId(4), TaskFate::LostToFailure)),
            ),
            (SimEvent::MachineFailed { machine: m, now: 9, lost: None }, None),
            (SimEvent::Arrived { task: task(0) }, None),
            (SimEvent::MappingRound { now: 9 }, None),
        ];
        for (ev, want) in cases {
            assert_eq!(ev.resolved(), want, "{ev:?}");
        }
    }

    #[test]
    fn migration_events_are_not_terminal() {
        let ev = SimEvent::TaskMigrated {
            type_id: TaskTypeId(2),
            arrival: 10,
            deadline: 90,
            now: 40,
            kind: MigrationKind::Donated,
            peer: 1,
        };
        assert_eq!(ev.resolved(), None, "migrated offers have no TaskId yet");
    }

    #[test]
    fn event_relay_buffers_and_hands_off() {
        let mut relay = EventRelay::new();
        assert!(relay.is_empty());
        relay.deliver(&SimEvent::Arrived { task: task(0) });
        relay.deliver(&SimEvent::MappingRound { now: 5 });
        assert_eq!(relay.len(), 2);
        let events = relay.take();
        assert!(relay.is_empty());
        assert!(matches!(events[1], SimEvent::MappingRound { now: 5 }));
    }

    #[test]
    fn vec_hub_fans_out_to_boxed_observers() {
        use std::cell::Cell;
        let count = Cell::new(0usize);
        {
            let mut hub: Vec<Box<dyn SimObserver + '_>> =
                vec![Box::new(|_: &SimEvent| count.set(count.get() + 1))];
            hub.deliver(&SimEvent::MappingRound { now: 3 });
            hub.deliver(&SimEvent::MappingRound { now: 4 });
        }
        assert_eq!(count.get(), 2);
        // The relay hub, unlike the vec hub, is Send (the fleet's claim).
        fn assert_send<T: Send>() {}
        assert_send::<EventRelay>();
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0usize;
        {
            let mut obs = |_: &SimEvent| count += 1;
            obs.on_event(&SimEvent::MappingRound { now: 1 });
            obs.on_event(&SimEvent::MappingRound { now: 2 });
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        log.on_event(&SimEvent::Arrived { task: task(0) });
        log.on_event(&SimEvent::MappingRound { now: 5 });
        assert_eq!(log.events.len(), 2);
        assert!(matches!(log.events[1], SimEvent::MappingRound { now: 5 }));
    }

    #[test]
    fn metrics_observer_reports_not_drained_mid_flight() {
        let scenario = Scenario::transcode(1);
        let mut obs = MetricsObserver::new(&scenario, &SimConfig::default());
        obs.on_event(&SimEvent::Arrived { task: task(0) });
        assert_eq!(obs.result(), Err(SimError::NotDrained { resolved: 0, total: 1 }));
        obs.on_event(&SimEvent::Dropped { task: TaskId(0), now: 60, kind: DropKind::Reactive });
        obs.on_event(&SimEvent::MappingRound { now: 60 });
        let r = obs.result().expect("drained");
        assert_eq!(r.total_tasks, 1);
        assert_eq!(r.mapping_events, 1);
        assert_eq!(r.makespan, 60);
    }
}
