//! Discrete-event simulator for an oversubscribed heterogeneous computing
//! system with pluggable mapping heuristics and dropping policies.
//!
//! This is the test-bed of the reproduced paper (Figure 1): arriving tasks
//! enter a **batch queue**; at every *mapping event* (a task arrival or
//! completion) the engine
//!
//! 1. reactively drops expired tasks (machine queues and batch queue),
//! 2. invokes the configured [`DropPolicy`](taskdrop_core::DropPolicy) on
//!    every machine queue (the paper's Task Dropper),
//! 3. invokes the configured
//!    [`MappingHeuristic`](taskdrop_sched::MappingHeuristic) to fill free
//!    machine-queue slots from the batch queue (the Mapper), and
//! 4. starts tasks on idle machines, drawing *actual* execution times from
//!    the scenario's truth model — not from the learned PET — so the
//!    scheduler faces genuine execution-time uncertainty.
//!
//! Machine queues are bounded (default 6 slots including the running task),
//! FCFS, non-preemptive, and mapped tasks are never remapped, matching the
//! paper's system model. Metrics follow Section V-A: robustness is the
//! percentage of *counted* tasks (first and last 100 excluded) completing
//! strictly before their deadlines; the cost model accrues busy-time dollars
//! per machine (Figure 9).
//!
//! [`TrialRunner`] repeats trials with independent workload seeds in
//! parallel (crossbeam scoped threads) and aggregates mean ± 95 % CI — the
//! paper's 30-trial methodology. Everything is deterministic under the
//! master seed, regardless of thread count.

#![warn(missing_docs)]

mod config;
mod engine;
mod event;
mod metrics;
mod report;
mod runner;

pub use config::{DropperKind, FailureSpec, SimConfig};
pub use engine::Simulation;
pub use metrics::{TaskFate, TrialResult};
pub use report::SimReport;
pub use runner::{RunSpec, TrialRunner};
