//! Discrete-event simulator for an oversubscribed heterogeneous computing
//! system with pluggable mapping heuristics and dropping policies.
//!
//! This is the test-bed of the reproduced paper (Figure 1): arriving tasks
//! enter a **batch queue**; at every *mapping event* (a task arrival or
//! completion) the engine
//!
//! 1. reactively drops expired tasks (machine queues and batch queue),
//! 2. invokes the configured [`DropPolicy`](taskdrop_core::DropPolicy) on
//!    every machine queue (the paper's Task Dropper),
//! 3. invokes the configured
//!    [`MappingHeuristic`](taskdrop_sched::MappingHeuristic) to fill free
//!    machine-queue slots from the batch queue (the Mapper), and
//! 4. starts tasks on idle machines, drawing *actual* execution times from
//!    the scenario's truth model — not from the learned PET — so the
//!    scheduler faces genuine execution-time uncertainty.
//!
//! Machine queues are bounded (default 6 slots including the running task),
//! FCFS, non-preemptive, and mapped tasks are never remapped, matching the
//! paper's system model. Metrics follow Section V-A: robustness is the
//! percentage of *counted* tasks (first and last 100 excluded) completing
//! strictly before their deadlines; the cost model accrues busy-time dollars
//! per machine (Figure 9).
//!
//! # The layering
//!
//! * [`SimCore`] is the resumable heart of the crate: an explicit-lifecycle
//!   state machine with [`step`](SimCore::step) /
//!   [`run_until`](SimCore::run_until) /
//!   [`inject`](SimCore::inject) (online, open-world task arrival) /
//!   [`state`](SimCore::state) (read-only mid-trial inspection) /
//!   [`snapshot`](SimCore::snapshot) + [`restore`](SimCore::restore)
//!   (serializable [`Checkpoint`]s from which resuming is byte-identical to
//!   an uninterrupted run), plus streaming [`SimObserver`]s that receive a
//!   [`SimEvent`] for every map/start/complete/drop/degrade/kill/failure/
//!   repair decision.
//! * [`Simulation`] is the legacy closed-world wrapper: assemble, call
//!   [`run`](Simulation::run), get a [`TrialResult`]. Byte-identical to
//!   stepping a [`SimCore`] over the same inputs.
//! * [`TrialRunner`] repeats trials with independent workload seeds in
//!   parallel (crossbeam scoped threads) and aggregates mean ± 95 % CI — the
//!   paper's 30-trial methodology. Everything is deterministic under the
//!   master seed, regardless of thread count.
//!
//! Misuse (zero queue sizes, empty reports, injecting into the past, …)
//! surfaces as a typed [`SimError`] from the `Result`-returning entry
//! points; the legacy wrappers panic on the same conditions.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod checkpoint;
mod config;
mod core;
mod engine;
mod error;
mod event;
mod metrics;
mod observer;
mod report;
mod runner;

pub use checkpoint::{
    Checkpoint, EventEntry, MachineCheckpoint, QueuedCheckpoint, RunningCheckpoint,
    CHECKPOINT_VERSION,
};
pub use config::{DropperKind, FailureSpec, SimConfig};
pub use core::{MachineState, QueuedState, RunningState, SimCore, SimState, StepOutcome};
pub use engine::Simulation;
pub use error::SimError;
pub use event::Event;
pub use metrics::{TaskFate, TrialResult};
pub use observer::{
    AdmissionDropKind, DropKind, EventLog, EventRelay, ForfeitKind, MetricsObserver, MigrationKind,
    ObserverHub, SimEvent, SimObserver,
};
pub use report::SimReport;
pub use runner::{RunSpec, TrialRunner};
// Re-exported so drivers reading `StepOutcome` work counters (or building
// their own `PolicyCtx`) need not depend on `taskdrop_model` directly.
pub use taskdrop_model::ctx::{CacheStats, PolicyCtx};
