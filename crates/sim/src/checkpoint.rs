//! Serializable mid-trial checkpoints: [`SimCore::snapshot`] /
//! [`SimCore::restore`].
//!
//! A [`Checkpoint`] captures the *complete* mutable state of one trial —
//! admitted tasks, machine queues, in-flight executions (with their realised
//! finish ticks), the outstanding event heap including its FIFO tie-break
//! counter, per-task fates, and the accounting counters. Everything else a
//! core needs is deterministic context that is **not** serialized and must
//! be re-supplied on restore: the [`Scenario`](taskdrop_workload::Scenario)
//! (named by `scenario_name`/`scenario_seed` and validated), the mapping
//! heuristic, and the dropping policy (both stateless by the
//! [`DropPolicy`](taskdrop_core::DropPolicy) /
//! [`MappingHeuristic`](taskdrop_sched::MappingHeuristic) contracts).
//!
//! There is deliberately **no RNG state** here. Every stochastic draw in the
//! engine is keyed, not streamed: actual execution times come from
//! `derive_seed(exec_seed, task × machine)` and failure timelines from
//! `derive_seed(exec_seed, machine)`, each with a fresh RNG per draw. The
//! `exec_seed` field therefore *is* the whole RNG stream position, and a
//! restored core replays the exact same luck an uninterrupted run would see
//! (asserted by `tests/checkpoint_determinism.rs`: resuming from any
//! checkpoint is byte-identical to never having stopped).
//!
//! The format is versioned ([`CHECKPOINT_VERSION`]); [`SimCore::restore`]
//! rejects a version it does not understand and validates the structural
//! invariants the engine relies on (dense task ids, queue occupancy bounds,
//! sequence-counter consistency) so a hand-edited or stale checkpoint fails
//! loudly instead of corrupting a trial.
//!
//! [`SimCore::snapshot`]: crate::SimCore::snapshot
//! [`SimCore::restore`]: crate::SimCore::restore

use crate::config::SimConfig;
use crate::event::Event;
use crate::metrics::TaskFate;
use serde::{Deserialize, Serialize};
use taskdrop_model::Task;
use taskdrop_pmf::Tick;

/// Current checkpoint format version; bump on incompatible layout changes.
///
/// v2: [`SimEvent`](crate::SimEvent) gained the `TaskMigrated` variant
/// (cross-shard work stealing) and the serving layer's `AdmissionStats`
/// gained `stolen_in`/`stolen_out` counters — both reachable from shard
/// checkpoints, so flight-recorder snapshots from v1 no longer match.
pub const CHECKPOINT_VERSION: u32 = 2;

/// One outstanding engine event with its schedule time and FIFO sequence
/// number (ties at equal times pop in sequence order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventEntry {
    /// Tick the event fires at.
    pub time: Tick,
    /// Monotone sequence number assigned when the event was pushed.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

/// An execution in flight at snapshot time.
///
/// Unlike the policy-facing [`RunningState`](crate::RunningState), this
/// carries the engine's realised `finish` tick — a checkpoint stores truth,
/// not estimates, because the matching `Completion` event in
/// [`Checkpoint::events`] refers to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunningCheckpoint {
    /// The executing task.
    pub task: Task,
    /// Tick at which it started.
    pub start: Tick,
    /// Realised completion tick (truth-model draw).
    pub finish: Tick,
    /// Whether it runs the approximate (degraded) variant.
    pub degraded: bool,
}

/// A task waiting in a machine queue at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedCheckpoint {
    /// The waiting task.
    pub task: Task,
    /// Whether the dropping policy degraded it to its approximate variant.
    pub degraded: bool,
}

/// Complete mutable state of one machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MachineCheckpoint {
    /// Whether the machine is down (failure injection).
    pub down: bool,
    /// Busy ticks accrued so far.
    pub busy_ticks: u64,
    /// Execution epoch counter (stales outstanding completion/kill events).
    pub epoch: u64,
    /// The current execution, if any.
    pub running: Option<RunningCheckpoint>,
    /// Queued tasks in FCFS order.
    pub pending: Vec<QueuedCheckpoint>,
}

/// Serializable snapshot of a whole [`SimCore`](crate::SimCore) mid-trial.
///
/// Produced by [`SimCore::snapshot`](crate::SimCore::snapshot), consumed by
/// [`SimCore::restore`](crate::SimCore::restore). Round-trips through
/// `serde_json` losslessly (all times are integer ticks; config floats use
/// exact shortest-roundtrip formatting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Name of the scenario the core was built on (restore validates it).
    pub scenario_name: String,
    /// Seed of that scenario (restore validates it).
    pub scenario_seed: u64,
    /// Engine configuration.
    pub config: SimConfig,
    /// Master seed of every execution-time and failure-timeline draw — the
    /// complete "RNG stream position" (draws are keyed per task × machine,
    /// never streamed).
    pub exec_seed: u64,
    /// Simulation time at the snapshot.
    pub now: Tick,
    /// Mapping events processed so far.
    pub mapping_events: u64,
    /// Every admitted task (initial workload + injections), dense by id.
    pub tasks: Vec<Task>,
    /// Fate of each task, indexed like [`Checkpoint::tasks`]; `None` while
    /// in flight.
    pub fates: Vec<Option<TaskFate>>,
    /// Unmapped tasks waiting in the batch queue.
    pub batch: Vec<Task>,
    /// Per-machine state, in scenario machine order.
    pub machines: Vec<MachineCheckpoint>,
    /// Outstanding events in canonical pop order.
    pub events: Vec<EventEntry>,
    /// Live event sequence counter (post-restore pushes continue from it).
    pub event_seq: u64,
}

impl Checkpoint {
    /// Tasks whose fate was already decided at snapshot time.
    #[must_use]
    pub fn resolved_tasks(&self) -> usize {
        self.fates.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_model::{MachineId, TaskId, TaskTypeId};

    fn tiny() -> Checkpoint {
        let task = Task::new(TaskId(0), TaskTypeId(1), 3, 90);
        Checkpoint {
            version: CHECKPOINT_VERSION,
            scenario_name: "specint".into(),
            scenario_seed: 7,
            config: SimConfig::default(),
            exec_seed: 11,
            now: 40,
            mapping_events: 3,
            tasks: vec![task],
            fates: vec![None],
            batch: vec![],
            machines: vec![MachineCheckpoint {
                down: false,
                busy_ticks: 12,
                epoch: 2,
                running: Some(RunningCheckpoint { task, start: 30, finish: 55, degraded: false }),
                pending: vec![],
            }],
            events: vec![EventEntry {
                time: 55,
                seq: 4,
                event: Event::Completion(MachineId(0), 2),
            }],
            event_seq: 4,
        }
    }

    #[test]
    fn serde_roundtrip_is_lossless() {
        let cp = tiny();
        let json = serde_json::to_string(&cp).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(cp, back);
        // Canonical: re-serializing the restored value is byte-identical.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn resolved_counts_some_fates() {
        let mut cp = tiny();
        assert_eq!(cp.resolved_tasks(), 0);
        cp.fates = vec![Some(TaskFate::OnTime), None, Some(TaskFate::Late)];
        assert_eq!(cp.resolved_tasks(), 2);
    }
}
