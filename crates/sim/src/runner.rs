//! Parallel multi-trial execution — the paper's "30 workload trials with the
//! same intensity level" methodology.
//!
//! Trials are embarrassingly parallel: each gets an independent workload
//! seed and execution-time seed derived from the master seed, so results are
//! byte-identical no matter how many worker threads run them (verified by an
//! integration test). Workers pull trial indices from an atomic counter
//! (crossbeam scoped threads); results land in a `parking_lot`-guarded slot
//! vector, preserving trial order.

use crate::config::{DropperKind, SimConfig};
use crate::engine::Simulation;
use crate::error::SimError;
use crate::metrics::TrialResult;
use crate::report::SimReport;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use taskdrop_sched::HeuristicKind;
use taskdrop_stats::derive_seed;
use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};

/// One experimental configuration to repeat across trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Oversubscription level (tasks + window).
    pub level: OversubscriptionLevel,
    /// Deadline slack coefficient γ.
    pub gamma: f64,
    /// Mapping heuristic.
    pub mapper: HeuristicKind,
    /// Dropping policy.
    pub dropper: DropperKind,
    /// Engine configuration.
    pub config: SimConfig,
}

/// Repeats a [`RunSpec`] across seeded trials, in parallel.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    /// Number of trials (the paper uses 30).
    pub trials: usize,
    /// Master seed; trial *k* derives its own workload and execution seeds.
    pub master_seed: u64,
    /// Worker threads; 0 means use all available cores.
    pub threads: usize,
}

impl TrialRunner {
    /// Creates a runner using every available core.
    #[must_use]
    pub fn new(trials: usize, master_seed: u64) -> Self {
        TrialRunner { trials, master_seed, threads: 0 }
    }

    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            // lint:allow(thread-primitives): sizes the crossbeam worker pool only; results are thread-count-invariant (pinned by tests/determinism.rs)
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Runs all trials of `spec` on `scenario` and aggregates a report.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or the spec's config is invalid; see
    /// [`TrialRunner::try_run`] for the `Result`-returning equivalent.
    #[must_use]
    pub fn run(&self, scenario: &Scenario, spec: &RunSpec) -> SimReport {
        self.try_run(scenario, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks the runner/spec combination without running anything — the
    /// single definition of "this experiment is well-formed", shared with
    /// `ExperimentBuilder::build` in the umbrella crate.
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroTrials`] if the runner was configured with zero
    /// trials, [`SimError::InvalidGamma`] for a non-finite or negative
    /// slack coefficient, or any configuration error from
    /// [`SimConfig::validate`].
    pub fn validate(&self, spec: &RunSpec) -> Result<(), SimError> {
        if self.trials == 0 {
            return Err(SimError::ZeroTrials);
        }
        if !spec.gamma.is_finite() || spec.gamma < 0.0 {
            return Err(SimError::InvalidGamma);
        }
        spec.config.validate()
    }

    /// Runs all trials of `spec` on `scenario` and aggregates a report.
    ///
    /// # Errors
    ///
    /// Any error from [`TrialRunner::validate`].
    pub fn try_run(&self, scenario: &Scenario, spec: &RunSpec) -> Result<SimReport, SimError> {
        self.validate(spec)?;
        let results: Vec<Mutex<Option<TrialResult>>> =
            (0..self.trials).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.worker_count().min(self.trials);

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| {
                    let mapper = spec.mapper.build();
                    let dropper = spec.dropper.build();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= self.trials {
                            break;
                        }
                        let workload_seed = derive_seed(self.master_seed, 2 * i as u64);
                        let exec_seed = derive_seed(self.master_seed, 2 * i as u64 + 1);
                        let workload =
                            Workload::generate(scenario, &spec.level, spec.gamma, workload_seed);
                        let result = Simulation::new(
                            scenario,
                            &workload,
                            mapper.as_ref(),
                            dropper.as_ref(),
                            spec.config,
                            exec_seed,
                        )
                        .run();
                        *results[i].lock() = Some(result);
                    }
                });
            }
        })
        .expect("worker panicked");

        Ok(SimReport {
            scenario: scenario.name.clone(),
            level: spec.level.label.clone(),
            mapper: spec.mapper.name().to_string(),
            dropper: spec.dropper.label().to_string(),
            trials: results
                .into_iter()
                .map(|slot| slot.into_inner().expect("every trial index visited"))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tasks: usize, window: u64) -> RunSpec {
        RunSpec {
            level: OversubscriptionLevel::new("test", tasks, window),
            gamma: 3.0,
            mapper: HeuristicKind::Pam,
            dropper: DropperKind::heuristic_default(),
            config: SimConfig { exclude_boundary: 10, ..SimConfig::default() },
        }
    }

    #[test]
    fn runs_requested_trials() {
        let scenario = Scenario::specint(7);
        let report = TrialRunner::new(3, 1).run(&scenario, &spec(150, 2_000));
        assert_eq!(report.trials.len(), 3);
        assert!(report.trials.iter().all(TrialResult::is_conserved));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenario = Scenario::specint(7);
        let s = spec(120, 1_500);
        let serial = TrialRunner { trials: 4, master_seed: 5, threads: 1 }.run(&scenario, &s);
        let parallel = TrialRunner { trials: 4, master_seed: 5, threads: 4 }.run(&scenario, &s);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn different_master_seeds_differ() {
        let scenario = Scenario::specint(7);
        let s = spec(120, 1_500);
        let a = TrialRunner { trials: 2, master_seed: 1, threads: 2 }.run(&scenario, &s);
        let b = TrialRunner { trials: 2, master_seed: 2, threads: 2 }.run(&scenario, &s);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials_is_a_typed_error() {
        let scenario = Scenario::specint(7);
        let err = TrialRunner::new(0, 1).try_run(&scenario, &spec(50, 1_000)).err();
        assert_eq!(err, Some(SimError::ZeroTrials));
    }

    #[test]
    fn bad_gamma_is_a_typed_error() {
        let scenario = Scenario::specint(7);
        let mut s = spec(50, 1_000);
        s.gamma = f64::NAN;
        let err = TrialRunner::new(1, 1).try_run(&scenario, &s).err();
        assert_eq!(err, Some(SimError::InvalidGamma));
    }

    #[test]
    fn trials_are_distinct() {
        let scenario = Scenario::specint(7);
        let report = TrialRunner::new(2, 9).run(&scenario, &spec(150, 2_000));
        assert_ne!(report.trials[0], report.trials[1]);
    }
}
