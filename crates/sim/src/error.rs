//! Typed errors for simulation construction and inspection.
//!
//! The original API panicked on misuse (`SimConfig::validate`,
//! `TrialRunner::run` with zero trials, `SimReport::robustness` on an empty
//! report). Those panics are now [`SimError`] values surfaced through the
//! `Result`-returning entry points ([`crate::SimCore::new`],
//! [`crate::TrialRunner::try_run`], [`crate::SimReport::robustness`]); the
//! legacy wrappers keep their panicking behaviour on top of these.

use taskdrop_pmf::Tick;

/// Everything that can go wrong assembling or querying a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// `SimConfig::queue_size` was zero; a machine queue must hold at least
    /// the running task.
    ZeroQueueSize,
    /// A `FailureSpec` had a zero MTBF or MTTR (degenerate exponential).
    DegenerateFailureSpec {
        /// Mean time between failures, in ticks.
        mtbf: u64,
        /// Mean repair duration, in ticks.
        mttr: u64,
    },
    /// The deadline slack coefficient γ was negative or not finite.
    InvalidGamma,
    /// A `TrialRunner` was asked to run zero trials.
    ZeroTrials,
    /// A `SimReport` aggregate was requested over zero trials.
    EmptyReport,
    /// The initial workload's task ids were not the dense sequence
    /// `0..tasks.len()` in arrival order (the engine's fate accounting
    /// indexes by id).
    MisnumberedWorkload {
        /// Position in the workload at which the mismatch was found.
        index: usize,
        /// The id actually found there.
        id: u64,
    },
    /// `SimCore::inject` was called with an arrival tick earlier than the
    /// core's current simulation time (events cannot be scheduled in the
    /// past).
    InjectedInPast {
        /// Current simulation time.
        now: Tick,
        /// Requested arrival tick.
        arrival: Tick,
    },
    /// An injected task's deadline did not leave room for any execution
    /// (`deadline <= arrival`).
    InvalidDeadline {
        /// Requested arrival tick.
        arrival: Tick,
        /// Requested deadline tick.
        deadline: Tick,
    },
    /// An injected task named a task type the scenario does not define.
    UnknownTaskType {
        /// The out-of-range task type index.
        type_id: u16,
        /// Number of task types the scenario defines.
        task_types: usize,
    },
    /// A final [`crate::TrialResult`] was requested from a `SimCore` that
    /// still has unresolved tasks; keep stepping until it drains.
    NotDrained {
        /// Tasks whose fate is already decided.
        resolved: usize,
        /// Total tasks admitted so far.
        total: usize,
    },
    /// A [`crate::Checkpoint`] was written by an incompatible format
    /// version.
    CheckpointVersion {
        /// Version recorded in the checkpoint.
        found: u32,
        /// Version this build understands
        /// ([`crate::CHECKPOINT_VERSION`]).
        supported: u32,
    },
    /// A [`crate::Checkpoint`] failed structural validation against the
    /// scenario and config it was asked to restore onto.
    CheckpointMismatch {
        /// Which invariant failed (e.g. `"scenario"`, `"machines"`).
        field: &'static str,
        /// What the restore context requires.
        expected: String,
        /// What the checkpoint holds.
        found: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::ZeroQueueSize => write!(f, "queue size must be at least 1"),
            SimError::DegenerateFailureSpec { mtbf, mttr } => {
                write!(f, "failure spec needs positive MTBF and MTTR (got {mtbf}/{mttr})")
            }
            SimError::InvalidGamma => write!(f, "gamma must be finite and >= 0"),
            SimError::ZeroTrials => write!(f, "need at least one trial"),
            SimError::EmptyReport => write!(f, "report aggregate requested over zero trials"),
            SimError::MisnumberedWorkload { index, id } => {
                write!(f, "workload task at position {index} has id {id}; ids must be 0..n")
            }
            SimError::InjectedInPast { now, arrival } => {
                write!(f, "cannot inject a task arriving at {arrival}; time is already {now}")
            }
            SimError::InvalidDeadline { arrival, deadline } => {
                write!(f, "deadline {deadline} leaves no room after arrival {arrival}")
            }
            SimError::UnknownTaskType { type_id, task_types } => {
                write!(f, "task type {type_id} out of range (scenario has {task_types})")
            }
            SimError::NotDrained { resolved, total } => {
                write!(f, "trial not drained: {resolved}/{total} tasks resolved")
            }
            SimError::CheckpointVersion { found, supported } => {
                write!(f, "checkpoint format v{found} unsupported (this build reads v{supported})")
            }
            SimError::CheckpointMismatch { field, ref expected, ref found } => {
                write!(f, "checkpoint {field} mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(SimError::ZeroQueueSize.to_string().contains("queue size"));
        assert!(SimError::NotDrained { resolved: 3, total: 9 }.to_string().contains("3/9"));
        assert!(SimError::InjectedInPast { now: 10, arrival: 5 }.to_string().contains("10"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SimError::EmptyReport);
    }
}
