//! Aggregation of repeated trials into the paper's reporting format:
//! mean ± 95 % confidence interval.

use crate::error::SimError;
use crate::metrics::TrialResult;
use serde::{Deserialize, Serialize};
use taskdrop_stats::Summary;

/// Results of one experimental configuration across trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scenario name (e.g. `"specint"`).
    pub scenario: String,
    /// Oversubscription level label (e.g. `"30k"`).
    pub level: String,
    /// Mapping heuristic name (e.g. `"PAM"`).
    pub mapper: String,
    /// Dropping policy label (e.g. `"Heuristic"`).
    pub dropper: String,
    /// Per-trial results, in trial order.
    pub trials: Vec<TrialResult>,
}

impl SimReport {
    /// Figure-legend style label, e.g. `"PAM+Heuristic"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}+{}", self.mapper, self.dropper)
    }

    /// Summarises one scalar per trial; `Err` on an empty report instead of
    /// the panic `Summary::of` would raise.
    fn summarise(&self, metric: impl Fn(&TrialResult) -> f64) -> Result<Summary, SimError> {
        if self.trials.is_empty() {
            return Err(SimError::EmptyReport);
        }
        Ok(Summary::of(&self.trials.iter().map(metric).collect::<Vec<_>>()))
    }

    /// Robustness (% tasks completed on time): mean ± CI over trials.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyReport`] if the report has no trials.
    pub fn robustness(&self) -> Result<Summary, SimError> {
        self.summarise(TrialResult::robustness_pct)
    }

    /// Normalised cost (dollars per robustness point, Figure 9).
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyReport`] if the report has no trials.
    pub fn cost_per_robustness(&self) -> Result<Summary, SimError> {
        self.summarise(TrialResult::cost_per_robustness)
    }

    /// Fraction of drops that were reactive, over trials that dropped
    /// anything (`None` when no trial dropped).
    #[must_use]
    pub fn reactive_drop_fraction(&self) -> Option<Summary> {
        let vals: Vec<f64> =
            self.trials.iter().filter_map(TrialResult::reactive_drop_fraction).collect();
        (!vals.is_empty()).then(|| Summary::of(&vals))
    }

    /// Mean dollar cost per trial.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyReport`] if the report has no trials.
    pub fn cost_dollars(&self) -> Result<Summary, SimError> {
        self.summarise(|t| t.cost_dollars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(on_time: usize) -> TrialResult {
        TrialResult {
            total_tasks: 100,
            counted_tasks: 100,
            on_time,
            on_time_approx: 0,
            approx_value: 0.0,
            late: 10,
            dropped_reactive: 20,
            dropped_proactive: 100 - on_time - 10 - 20,
            lost_to_failure: 0,
            forfeited: 0,
            busy_ticks: vec![100],
            cost_dollars: 1.0,
            makespan: 1000,
            mapping_events: 200,
        }
    }

    #[test]
    fn label_concatenates() {
        let r = SimReport {
            scenario: "specint".into(),
            level: "30k".into(),
            mapper: "PAM".into(),
            dropper: "Heuristic".into(),
            trials: vec![trial(40)],
        };
        assert_eq!(r.label(), "PAM+Heuristic");
    }

    #[test]
    fn robustness_summary_over_trials() {
        let r = SimReport {
            scenario: "s".into(),
            level: "l".into(),
            mapper: "MM".into(),
            dropper: "ReactDrop".into(),
            trials: vec![trial(30), trial(40), trial(50)],
        };
        let s = r.robustness().unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 40.0).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn empty_report_is_a_typed_error_not_a_panic() {
        use crate::error::SimError;
        let r = SimReport {
            scenario: "s".into(),
            level: "l".into(),
            mapper: "MM".into(),
            dropper: "ReactDrop".into(),
            trials: vec![],
        };
        assert_eq!(r.robustness().err(), Some(SimError::EmptyReport));
        assert_eq!(r.cost_per_robustness().err(), Some(SimError::EmptyReport));
        assert_eq!(r.cost_dollars().err(), Some(SimError::EmptyReport));
        assert_eq!(r.reactive_drop_fraction(), None);
    }
}
