//! Grid definitions for every figure of the paper's evaluation section.
//!
//! Each `figNN` function runs the corresponding experiment grid at the given
//! [`Scale`] and returns the result rows; the `fig*` binaries are thin mains
//! around these, and the integration tests smoke-run them at `Scale::Quick`.
//!
//! Fixed experiment-wide choices (recorded in EXPERIMENTS.md):
//!
//! * scenario seed `0xA5` — one PET matrix "used throughout the
//!   experiments", as in the paper;
//! * deadline slack γ = 1.0 — calibrated so the three oversubscription
//!   levels land in the paper's Figure 5 robustness bands;
//! * per-figure master seeds — within a figure every configuration sees the
//!   *same* workload trials and the same realised execution times, making
//!   comparisons paired like the paper's.

use crate::experiment::{Experiment, Metric, ResultRow, Scale};
use taskdrop_sched::HeuristicKind;
use taskdrop_sim::{DropperKind, RunSpec, SimConfig, SimReport};
use taskdrop_workload::{OversubscriptionLevel, Scenario, SPECINT_WINDOW, TRANSCODE_WINDOW};

/// Scenario seed shared by all figures (one PET throughout, like the paper).
pub const SCENARIO_SEED: u64 = 0xA5;
/// Deadline slack coefficient (calibrated; see module docs).
pub const GAMMA: f64 = 1.0;
/// The threshold the PAM+Threshold baseline is configured with.
pub const BASE_THRESHOLD: f64 = 0.25;

fn specint_levels(scale: Scale) -> Vec<OversubscriptionLevel> {
    OversubscriptionLevel::paper_levels(SPECINT_WINDOW)
        .into_iter()
        .map(|l| l.scaled(scale.factor()))
        .collect()
}

fn spec(level: OversubscriptionLevel, mapper: HeuristicKind, dropper: DropperKind) -> RunSpec {
    RunSpec { level, gamma: GAMMA, mapper, dropper, config: SimConfig::default() }
}

fn progress(figure: &str, series: &str, x: &str, row: &ResultRow) {
    eprintln!(
        "[{figure}] {series} @ {x}: {:.2} ± {:.2} ({} trials)",
        row.mean, row.ci95, row.trials
    );
}

/// Figure 5: robustness vs effective depth η ∈ 1..=5, PAM+Heuristic (β=1),
/// three oversubscription levels.
#[must_use]
pub fn fig05(scale: Scale) -> Vec<ResultRow> {
    let scenario = Scenario::specint(SCENARIO_SEED);
    let mut rows = Vec::new();
    for level in specint_levels(scale) {
        for eta in 1..=5usize {
            let dropper = DropperKind::Heuristic { beta: 1.0, eta };
            let series = format!("{} tasks", level.label);
            let x = format!("{eta}");
            let (row, _) = Experiment::run_cell(
                &scenario,
                &spec(level.clone(), HeuristicKind::Pam, dropper),
                scale,
                series.clone(),
                x.clone(),
                Metric::Robustness,
                0x0505,
            );
            progress("fig05", &series, &x, &row);
            rows.push(row);
        }
    }
    rows
}

/// Figure 6: robustness vs robustness improvement factor β ∈ {1.0, …, 4.0}
/// step 0.5, PAM+Heuristic (η=2), three levels.
#[must_use]
pub fn fig06(scale: Scale) -> Vec<ResultRow> {
    let scenario = Scenario::specint(SCENARIO_SEED);
    let mut rows = Vec::new();
    for level in specint_levels(scale) {
        for half in 2..=8u32 {
            let beta = half as f64 / 2.0;
            let dropper = DropperKind::Heuristic { beta, eta: 2 };
            let series = format!("{} tasks", level.label);
            let x = format!("{beta:.1}");
            let (row, _) = Experiment::run_cell(
                &scenario,
                &spec(level.clone(), HeuristicKind::Pam, dropper),
                scale,
                series.clone(),
                x.clone(),
                Metric::Robustness,
                0x0606,
            );
            progress("fig06", &series, &x, &row);
            rows.push(row);
        }
    }
    rows
}

/// Figures 7a / 10 share this shape: mappers × {Heuristic, ReactDrop}.
fn mapping_grid(
    figure: &'static str,
    scenario: &Scenario,
    level: &OversubscriptionLevel,
    mappers: &[HeuristicKind],
    scale: Scale,
    master_seed: u64,
) -> Vec<ResultRow> {
    let droppers = [DropperKind::heuristic_default(), DropperKind::ReactiveOnly];
    let mut rows = Vec::new();
    for &mapper in mappers {
        for dropper in droppers {
            let series = format!("{}+{}", mapper.name(), dropper.label());
            let x = mapper.name().to_string();
            let (row, _) = Experiment::run_cell(
                scenario,
                &spec(level.clone(), mapper, dropper),
                scale,
                series.clone(),
                x.clone(),
                Metric::Robustness,
                master_seed,
            );
            progress(figure, &series, &x, &row);
            rows.push(row);
        }
    }
    rows
}

/// Figure 7a: MSD/MM/PAM each with and without the proactive heuristic, on
/// the heterogeneous scenario at the 30k level.
#[must_use]
pub fn fig07a(scale: Scale) -> Vec<ResultRow> {
    let scenario = Scenario::specint(SCENARIO_SEED);
    let level = specint_levels(scale)[1].clone();
    mapping_grid(
        "fig07a",
        &scenario,
        &level,
        &[HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam],
        scale,
        0x07A0,
    )
}

/// Figure 7b: FCFS/EDF/SJF/PAM with and without the proactive heuristic, on
/// the homogeneous scenario at the 30k level.
#[must_use]
pub fn fig07b(scale: Scale) -> Vec<ResultRow> {
    let scenario = Scenario::homogeneous(SCENARIO_SEED);
    let level = specint_levels(scale)[1].clone();
    mapping_grid(
        "fig07b",
        &scenario,
        &level,
        &[HeuristicKind::Fcfs, HeuristicKind::Edf, HeuristicKind::Sjf, HeuristicKind::Pam],
        scale,
        0x07B0,
    )
}

/// Figure 8: PAM with Optimal vs Heuristic vs Threshold dropping across the
/// three levels. Also returns the reactive-drop share of PAM+Heuristic (the
/// paper's §V-F "≈7 % of droppings are reactive" analysis) via the reports.
#[must_use]
pub fn fig08(scale: Scale) -> (Vec<ResultRow>, Vec<SimReport>) {
    let scenario = Scenario::specint(SCENARIO_SEED);
    let droppers = [
        DropperKind::Optimal,
        DropperKind::heuristic_default(),
        DropperKind::Threshold { base: BASE_THRESHOLD },
    ];
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for level in specint_levels(scale) {
        for dropper in droppers {
            let series = format!("PAM+{}", dropper.label());
            let x = level.label.clone();
            let (row, report) = Experiment::run_cell(
                &scenario,
                &spec(level.clone(), HeuristicKind::Pam, dropper),
                scale,
                series.clone(),
                x.clone(),
                Metric::Robustness,
                0x0808,
            );
            progress("fig08", &series, &x, &row);
            rows.push(row);
            reports.push(report);
        }
    }
    (rows, reports)
}

/// Figure 9: normalised cost (dollars per robustness point, ×100) for
/// PAM+Threshold, PAM+Heuristic and MM+ReactDrop across the three levels.
#[must_use]
pub fn fig09(scale: Scale) -> Vec<ResultRow> {
    let scenario = Scenario::specint(SCENARIO_SEED);
    let combos = [
        (HeuristicKind::Pam, DropperKind::Threshold { base: BASE_THRESHOLD }),
        (HeuristicKind::Pam, DropperKind::heuristic_default()),
        (HeuristicKind::MinMin, DropperKind::ReactiveOnly),
    ];
    let mut rows = Vec::new();
    for level in specint_levels(scale) {
        for (mapper, dropper) in combos {
            let series = format!("{}+{}", mapper.name(), dropper.label());
            let x = level.label.clone();
            let (row, _) = Experiment::run_cell(
                &scenario,
                &spec(level.clone(), mapper, dropper),
                scale,
                series.clone(),
                x.clone(),
                Metric::CostPerRobustness,
                0x0909,
            );
            progress("fig09", &series, &x, &row);
            rows.push(row);
        }
    }
    rows
}

/// Figure 10: the video-transcoding validation — MSD/MM/PAM with and
/// without the proactive heuristic at the (moderately oversubscribed) 20k
/// level.
#[must_use]
pub fn fig10(scale: Scale) -> Vec<ResultRow> {
    let scenario = Scenario::transcode(SCENARIO_SEED);
    let level = OversubscriptionLevel::new("20k", 20_000, TRANSCODE_WINDOW).scaled(scale.factor());
    mapping_grid(
        "fig10",
        &scenario,
        &level,
        &[HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam],
        scale,
        0x1010,
    )
}
