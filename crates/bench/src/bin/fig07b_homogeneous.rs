//! Regenerates Figure 7b: proactive dropping across mapping heuristics on
//! the homogeneous system, 30k level.

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig07b (homogeneous mappers) — scale {}", scale.name());
    let rows = figures::fig07b(scale);
    println!("\n## Figure 7b — FCFS/EDF/SJF/PAM ± proactive dropping (homogeneous, 30k)\n");
    println!("{}", render_markdown("mapper \\ robustness (%)", &rows));
    let dir = write_outputs("fig07b", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
