//! Regenerates Figure 6: robustness vs robustness improvement factor β.

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig06 (beta sweep) — scale {}", scale.name());
    let rows = figures::fig06(scale);
    println!("\n## Figure 6 — impact of robustness improvement factor (β), PAM+Heuristic, η=2\n");
    println!("{}", render_markdown("β \\ robustness (%)", &rows));
    let dir = write_outputs("fig06", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
