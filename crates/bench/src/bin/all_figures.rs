//! Runs every figure of the paper in sequence and prints all tables.

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("all figures — scale {}", scale.name());

    let rows = figures::fig05(scale);
    println!("\n## Figure 5 — effective depth (η)\n");
    println!("{}", render_markdown("η \\ robustness (%)", &rows));
    write_outputs("fig05", scale.name(), &rows);

    let rows = figures::fig06(scale);
    println!("\n## Figure 6 — robustness improvement factor (β)\n");
    println!("{}", render_markdown("β \\ robustness (%)", &rows));
    write_outputs("fig06", scale.name(), &rows);

    let rows = figures::fig07a(scale);
    println!("\n## Figure 7a — heterogeneous mappers ± dropping (30k)\n");
    println!("{}", render_markdown("mapper \\ robustness (%)", &rows));
    write_outputs("fig07a", scale.name(), &rows);

    let rows = figures::fig07b(scale);
    println!("\n## Figure 7b — homogeneous mappers ± dropping (30k)\n");
    println!("{}", render_markdown("mapper \\ robustness (%)", &rows));
    write_outputs("fig07b", scale.name(), &rows);

    let (rows, reports) = figures::fig08(scale);
    println!("\n## Figure 8 — optimal vs heuristic vs threshold dropping\n");
    println!("{}", render_markdown("level \\ robustness (%)", &rows));
    println!("### §V-F drop breakdown\n");
    for report in &reports {
        if let Some(share) = report.reactive_drop_fraction() {
            println!(
                "* {} @ {}: {:.1} % ± {:.1} % of drops were reactive",
                report.label(),
                report.level,
                share.mean * 100.0,
                share.ci95 * 100.0
            );
        }
    }
    write_outputs("fig08", scale.name(), &rows);

    let rows = figures::fig09(scale);
    println!("\n## Figure 9 — normalised cost\n");
    println!("{}", render_markdown("level \\ cost per robustness pt (×100)", &rows));
    write_outputs("fig09", scale.name(), &rows);

    let rows = figures::fig10(scale);
    println!("\n## Figure 10 — transcode validation\n");
    println!("{}", render_markdown("mapper \\ robustness (%)", &rows));
    write_outputs("fig10", scale.name(), &rows);

    eprintln!("done.");
}
