//! Regenerates Figure 10: the video-transcoding validation workload.

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig10 (transcode validation) — scale {}", scale.name());
    let rows = figures::fig10(scale);
    println!("\n## Figure 10 — MSD/MM/PAM ± proactive dropping (video transcoding, 20k)\n");
    println!("{}", render_markdown("mapper \\ robustness (%)", &rows));
    let dir = write_outputs("fig10", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
