//! Regenerates Figure 5: robustness vs effective depth η.

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig05 (effective depth) — scale {}", scale.name());
    let rows = figures::fig05(scale);
    println!("\n## Figure 5 — impact of effective depth (η), PAM+Heuristic, β=1\n");
    println!("{}", render_markdown("η \\ robustness (%)", &rows));
    let dir = write_outputs("fig05", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
