//! Calibration probe: times single trials and sweeps the deadline-slack
//! coefficient γ and the arrival window so the oversubscription levels land
//! in the paper's robustness bands (Figure 5: roughly 50 % / 35 % / 27 % for
//! PAM+Heuristic at 20k/30k/40k). Not one of the paper's figures; a
//! workbench tool.
//!
//! Usage:
//! `cargo run -p taskdrop-bench --release --bin calibrate [factor] [window] [gammas...]`

// crates/bench is the sanctioned wall-clock scope (taskdrop_lint: wall-clock).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;
use taskdrop_sched::HeuristicKind;
use taskdrop_sim::{DropperKind, RunSpec, SimConfig, TrialRunner};
use taskdrop_workload::{OversubscriptionLevel, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let factor: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.15);
    let window: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(108_000);
    let gammas: Vec<f64> = if args.len() > 2 {
        args[2..].iter().filter_map(|s| s.parse().ok()).collect()
    } else {
        vec![1.0, 1.5, 2.0]
    };
    let scenario = Scenario::specint(0xA5);
    println!("scenario: specint, PET inconsistency {:.2}", scenario.pet.inconsistency());
    println!("scale factor {factor}, window {window}");

    for &gamma in &gammas {
        for level in OversubscriptionLevel::paper_levels(window) {
            let level = level.scaled(factor);
            let spec = RunSpec {
                level: level.clone(),
                gamma,
                mapper: HeuristicKind::Pam,
                dropper: DropperKind::heuristic_default(),
                config: SimConfig::default(),
            };
            let start = Instant::now();
            let report =
                TrialRunner { trials: 2, master_seed: 1, threads: 2 }.run(&scenario, &spec);
            let dt = start.elapsed();
            let react = report
                .reactive_drop_fraction()
                .map_or("n/a".to_string(), |s| format!("{:.1}%", s.mean * 100.0));
            println!(
                "gamma={gamma:.1} level={:>3} tasks={:>6} robustness={} reactive-share={} wall={:.2?}/2trials",
                level.label,
                level.tasks,
                report.robustness().expect("at least one trial"),
                react,
                dt
            );
        }
    }
}
