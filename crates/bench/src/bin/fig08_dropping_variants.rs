//! Regenerates Figure 8: PAM+Optimal vs PAM+Heuristic vs PAM+Threshold
//! across oversubscription levels, plus the Section V-F reactive-share
//! analysis ("only around 7 % of the task droppings happen reactively").

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig08 (dropping variants) — scale {}", scale.name());
    let (rows, reports) = figures::fig08(scale);
    println!("\n## Figure 8 — optimal vs heuristic vs threshold dropping (PAM)\n");
    println!("{}", render_markdown("level \\ robustness (%)", &rows));

    println!("### §V-F drop breakdown (share of drops that were reactive)\n");
    for report in &reports {
        if let Some(share) = report.reactive_drop_fraction() {
            println!(
                "* {} @ {}: {:.1} % ± {:.1} % reactive",
                report.label(),
                report.level,
                share.mean * 100.0,
                share.ci95 * 100.0
            );
        }
    }
    let dir = write_outputs("fig08", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
