//! Config-driven experiment runner: execute any `RunSpec` from JSON.
//!
//! ```sh
//! cargo run -p taskdrop-bench --release --bin run_config -- spec.json \
//!     [--scenario specint|transcode|homogeneous] [--trials N] [--seed S]
//! ```
//!
//! With no file argument, prints a template spec and exits. The report
//! (per-trial results + summaries) is written to stdout as JSON, so this
//! composes with `jq`-style pipelines.

use taskdrop_sched::HeuristicKind;
use taskdrop_sim::{DropperKind, RunSpec, SimConfig, TrialRunner};
use taskdrop_workload::{OversubscriptionLevel, Scenario, SPECINT_WINDOW};

fn template() -> RunSpec {
    RunSpec {
        level: OversubscriptionLevel::paper_levels(SPECINT_WINDOW)[1].scaled(0.15),
        gamma: 1.0,
        mapper: HeuristicKind::Pam,
        dropper: DropperKind::heuristic_default(),
        config: SimConfig::default(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path: Option<String> = None;
    let mut scenario_name = "specint".to_string();
    let mut trials = 10usize;
    let mut seed = 1u64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => scenario_name = it.next().expect("--scenario NAME"),
            "--trials" => trials = it.next().expect("--trials N").parse().expect("integer"),
            "--seed" => seed = it.next().expect("--seed S").parse().expect("integer"),
            other => spec_path = Some(other.to_string()),
        }
    }

    let Some(path) = spec_path else {
        eprintln!("no spec file given; template follows (save, edit, re-run):");
        println!("{}", serde_json::to_string_pretty(&template()).expect("template"));
        return;
    };
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let spec: RunSpec =
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("invalid spec {path}: {e}"));

    let scenario = match scenario_name.as_str() {
        "specint" => Scenario::specint(0xA5),
        "transcode" => Scenario::transcode(0xA5),
        "homogeneous" => Scenario::homogeneous(0xA5),
        other => panic!("unknown scenario {other}; expected specint|transcode|homogeneous"),
    };

    let report = TrialRunner::new(trials, seed).run(&scenario, &spec);
    eprintln!(
        "{} @ {}: robustness {} | cost/robustness {:.4}",
        report.label(),
        report.level,
        report.robustness().expect("at least one trial"),
        report.cost_per_robustness().expect("at least one trial").mean,
    );
    println!("{}", serde_json::to_string_pretty(&report).expect("report"));
}
