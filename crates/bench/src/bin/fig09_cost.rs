//! Regenerates Figure 9: normalised incurred cost (cost / robustness %).

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig09 (cost) — scale {}", scale.name());
    let rows = figures::fig09(scale);
    println!("\n## Figure 9 — incurred cost / tasks completed on time (%)\n");
    println!("{}", render_markdown("level \\ cost per robustness pt (×100)", &rows));
    let dir = write_outputs("fig09", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
