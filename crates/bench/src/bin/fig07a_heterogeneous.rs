//! Regenerates Figure 7a: proactive dropping across mapping heuristics on
//! the heterogeneous (SPECint) system, 30k level.

use taskdrop_bench::{figures, parse_scale, render_markdown, write_outputs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    eprintln!("fig07a (heterogeneous mappers) — scale {}", scale.name());
    let rows = figures::fig07a(scale);
    println!("\n## Figure 7a — MSD/MM/PAM ± proactive dropping (heterogeneous, 30k)\n");
    println!("{}", render_markdown("mapper \\ robustness (%)", &rows));
    let dir = write_outputs("fig07a", scale.name(), &rows);
    eprintln!("results written under {}", dir.display());
}
