//! `bench_core` — the perf-trajectory seed: steady-state `SimCore`
//! stepping throughput and drop-decision latency at a fixed seed.
//!
//! Runs one closed-world trial of the SPECint scenario under
//! PAM + the paper-default heuristic dropper, timing (a) the whole
//! step-to-drain loop and (b) every `select_drops` call individually (via
//! a timing wrapper around the policy — the engine is not instrumented).
//! Writes the measurements as `BENCH_core.json` at the repo root so
//! successive PRs leave a comparable perf trail; the schema is documented
//! in DESIGN.md ("The core benchmark").
//!
//! Usage:
//! `cargo run -p taskdrop_bench --release --bin bench_core [--quick] [--out PATH]`
//!
//! Numbers are wall-clock on whatever machine runs the bench — they
//! compare builds on one machine, not machines.

// crates/bench is the sanctioned wall-clock scope (taskdrop_lint: wall-clock).
#![allow(clippy::disallowed_methods)]

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use taskdrop_core::{DropDecision, DropPolicy, ProactiveDropper};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::view::{DropContext, QueueView};
use taskdrop_sched::Pam;
use taskdrop_sim::{SimConfig, SimCore, StepOutcome};
use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};

/// Wraps a policy, accumulating per-call wall time. `DropPolicy` takes
/// `&self`, so the counters are atomics (relaxed: single-threaded here).
struct TimedDropper<P> {
    inner: P,
    calls: AtomicU64,
    nanos: AtomicU64,
}

impl<P: DropPolicy> TimedDropper<P> {
    fn new(inner: P) -> Self {
        TimedDropper { inner, calls: AtomicU64::new(0), nanos: AtomicU64::new(0) }
    }
}

impl<P: DropPolicy> DropPolicy for TimedDropper<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision {
        let start = Instant::now();
        let decision = self.inner.select_drops(queue, ctx, scratch);
        self.nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
        decision
    }
}

/// The schema of `BENCH_core.json` (documented in DESIGN.md).
#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    scenario: String,
    scenario_seed: u64,
    exec_seed: u64,
    tasks: usize,
    window_ticks: u64,
    steps: u64,
    mapping_events: u64,
    makespan_ticks: u64,
    elapsed_ms: f64,
    throughput_tasks_per_sec: f64,
    steps_per_sec: f64,
    drop_decision: DropDecisionReport,
    robustness_pct: f64,
    work: WorkReport,
}

#[derive(Debug, Serialize)]
struct DropDecisionReport {
    calls: u64,
    total_ms: f64,
    mean_us: f64,
}

/// Deterministic PET×tail cache work counters (`SimCore::cache_stats`):
/// they must reproduce exactly at the fixed seed, so CI fails on any
/// drift vs the committed quick baseline.
#[derive(Debug, Serialize)]
struct WorkReport {
    tail_cache_hits: u64,
    tail_cache_misses: u64,
    conv_cache_hits: u64,
    conv_cache_misses: u64,
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other}; expected --quick or --out PATH"),
        }
    }
    // The repo root is two levels above this crate's manifest.
    let out =
        out.unwrap_or_else(|| format!("{}/../../BENCH_core.json", env!("CARGO_MANIFEST_DIR")));

    // Fixed seeds; ~2x oversubscription (the paper's 20k band) so the
    // dropper has real work on every mapping event.
    let (tasks, window) = if quick { (600, 3_240) } else { (4_000, 21_600) };
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("bench", tasks, window);
    let workload = Workload::generate(&scenario, &level, 1.0, 0xBE);
    let dropper = TimedDropper::new(ProactiveDropper::paper_default());
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let mut core =
        SimCore::new(&scenario, &workload, &Pam, &dropper, config, 0xBE).expect("valid config");

    let start = Instant::now();
    let mut steps = 0u64;
    while let StepOutcome::Advanced { .. } = core.step() {
        steps += 1;
    }
    let elapsed = start.elapsed();
    let result = core.result().expect("drained");

    let calls = dropper.calls.load(Ordering::Relaxed);
    let drop_nanos = dropper.nanos.load(Ordering::Relaxed);
    let cache = core.cache_stats();
    let report = BenchReport {
        bench: "bench_core".into(),
        scale: if quick { "quick" } else { "full" }.into(),
        scenario: scenario.name.clone(),
        scenario_seed: 0xA5,
        exec_seed: 0xBE,
        tasks,
        window_ticks: window,
        steps: steps + 1, // the draining step also does a mapping event
        mapping_events: result.mapping_events,
        makespan_ticks: result.makespan,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_tasks_per_sec: tasks as f64 / elapsed.as_secs_f64(),
        steps_per_sec: result.mapping_events as f64 / elapsed.as_secs_f64(),
        drop_decision: DropDecisionReport {
            calls,
            total_ms: drop_nanos as f64 / 1e6,
            mean_us: if calls == 0 { 0.0 } else { drop_nanos as f64 / 1e3 / calls as f64 },
        },
        robustness_pct: result.robustness_pct(),
        work: WorkReport {
            tail_cache_hits: cache.tail_hits,
            tail_cache_misses: cache.tail_misses,
            conv_cache_hits: cache.conv_hits,
            conv_cache_misses: cache.conv_misses,
        },
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_core.json");
    println!(
        "bench_core [{}]: {} tasks drained in {:.0} ms — {:.0} tasks/s, {:.0} mapping events/s",
        report.scale,
        tasks,
        report.elapsed_ms,
        report.throughput_tasks_per_sec,
        report.steps_per_sec
    );
    println!(
        "drop decisions: {} calls, {:.1} ms total, {:.1} us mean | robustness {:.1} %",
        calls, report.drop_decision.total_ms, report.drop_decision.mean_us, report.robustness_pct
    );
    println!(
        "cache: tail {}/{} hits, conv {}/{} hits",
        cache.tail_hits,
        cache.tail_hits + cache.tail_misses,
        cache.conv_hits,
        cache.conv_hits + cache.conv_misses
    );
    println!("wrote {out}");
}
