//! Experiment harness regenerating every figure of the paper.
//!
//! Each paper figure has a binary (`fig05_effective_depth`, `fig06_beta`,
//! `fig07a_heterogeneous`, `fig07b_homogeneous`, `fig08_dropping_variants`,
//! `fig09_cost`, `fig10_transcode`) that runs the corresponding simulation
//! grid and prints a Markdown table of mean ± 95 % CI robustness (or cost)
//! values, alongside CSV/JSON dumps under `results/`.
//!
//! All binaries accept a scale argument:
//!
//! * `--quick`  — tiny sanity scale (seconds; noisy).
//! * `--medium` — the default recorded in EXPERIMENTS.md (minutes on a
//!   laptop): paper task counts scaled by 0.15, 10 trials.
//! * `--full`   — the paper's scale: 20k/30k/40k tasks, 30 trials (hours).
//!
//! Scaling shrinks task count and arrival window together, preserving the
//! arrival *rate* and thus the oversubscription level (see
//! `taskdrop_workload::OversubscriptionLevel::scaled`).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod output;

pub use experiment::{parse_scale, Experiment, Metric, ResultRow, Scale};
pub use output::{render_markdown, write_outputs};
