//! Shared experiment-grid runner.

use serde::{Deserialize, Serialize};
use taskdrop_sim::{RunSpec, SimReport, TrialRunner};
use taskdrop_workload::Scenario;

/// Execution scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny smoke scale: paper task counts × 0.02, 2 trials.
    Quick,
    /// Laptop scale (the recorded results): × 0.15, 10 trials.
    Medium,
    /// Paper scale: × 1.0, 30 trials.
    Full,
}

impl Scale {
    /// Task-count/window scale factor.
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            Scale::Quick => 0.02,
            Scale::Medium => 0.15,
            Scale::Full => 1.0,
        }
    }

    /// Number of trials per configuration.
    #[must_use]
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Medium => 10,
            Scale::Full => 30,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Full => "full",
        }
    }
}

/// Parses `--quick | --medium | --full` from argv (default: medium).
///
/// # Panics
///
/// Panics with a usage message on unknown arguments.
#[must_use]
pub fn parse_scale(args: &[String]) -> Scale {
    let mut scale = Scale::Medium;
    for a in args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--medium" => scale = Scale::Medium,
            "--full" => scale = Scale::Full,
            other => panic!("unknown argument {other}; expected --quick | --medium | --full"),
        }
    }
    scale
}

/// One row of an experiment's result table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultRow {
    /// Series label (e.g. `"PAM+Heuristic"`).
    pub series: String,
    /// X-axis value label (e.g. `"30k"` or `"eta=2"`).
    pub x: String,
    /// Metric mean over trials.
    pub mean: f64,
    /// 95 % CI half-width.
    pub ci95: f64,
    /// Number of trials.
    pub trials: usize,
}

/// An experiment: an id, a metric name, and a grid of runs.
#[derive(Debug)]
pub struct Experiment {
    /// Identifier, e.g. `"fig08"`.
    pub id: &'static str,
    /// One-line description printed above the table.
    pub title: &'static str,
    /// Y-axis metric label, e.g. `"Tasks completed on time (%)"`.
    pub metric: &'static str,
}

/// Which scalar a run contributes to its row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `TrialResult::robustness_pct` (most figures).
    Robustness,
    /// `TrialResult::cost_per_robustness` (Figure 9). Reported ×100 to
    /// match the paper's axis ("Cost / Tasks Completed On Time (%)").
    CostPerRobustness,
}

impl Experiment {
    /// Runs one grid cell and converts it to a [`ResultRow`].
    #[must_use]
    pub fn run_cell(
        scenario: &Scenario,
        spec: &RunSpec,
        scale: Scale,
        series: String,
        x: String,
        metric: Metric,
        master_seed: u64,
    ) -> (ResultRow, SimReport) {
        let runner = TrialRunner::new(scale.trials(), master_seed);
        let report = runner.run(scenario, spec);
        let summary = match metric {
            Metric::Robustness => report.robustness().expect("runner produced trials"),
            Metric::CostPerRobustness => {
                let mut s = report.cost_per_robustness().expect("runner produced trials");
                s.mean *= 100.0;
                s.ci95 *= 100.0;
                s
            }
        };
        (ResultRow { series, x, mean: summary.mean, ci95: summary.ci95, trials: summary.n }, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_ordered() {
        assert!(Scale::Quick.factor() < Scale::Medium.factor());
        assert!(Scale::Medium.factor() < Scale::Full.factor());
        assert_eq!(Scale::Full.trials(), 30);
    }

    #[test]
    fn parse_scale_defaults_to_medium() {
        assert_eq!(parse_scale(&[]), Scale::Medium);
        assert_eq!(parse_scale(&["--quick".into()]), Scale::Quick);
        assert_eq!(parse_scale(&["--full".into()]), Scale::Full);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn parse_scale_rejects_garbage() {
        let _ = parse_scale(&["--nope".into()]);
    }
}
