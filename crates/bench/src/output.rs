//! Rendering and persistence of experiment results.

use crate::experiment::ResultRow;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Renders rows as a Markdown table: one row per x value, one column per
/// series (the shape of the paper's figures).
#[must_use]
pub fn render_markdown(metric: &str, rows: &[ResultRow]) -> String {
    let mut series: Vec<&str> = Vec::new();
    let mut xs: Vec<&str> = Vec::new();
    for r in rows {
        if !series.contains(&r.series.as_str()) {
            series.push(&r.series);
        }
        if !xs.contains(&r.x.as_str()) {
            xs.push(&r.x);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("| {metric} |"));
    for s in &series {
        out.push_str(&format!(" {s} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &series {
        out.push_str("---|");
    }
    out.push('\n');
    for x in &xs {
        out.push_str(&format!("| {x} |"));
        for s in &series {
            match rows.iter().find(|r| r.series == *s && r.x == *x) {
                Some(r) => out.push_str(&format!(" {:.2} ± {:.2} |", r.mean, r.ci95)),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes `results/<id>.csv` and `results/<id>.json` next to the workspace
/// root (or under `$TASKDROP_RESULTS_DIR` if set) and returns the directory.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_outputs(id: &str, scale: &str, rows: &[ResultRow]) -> std::path::PathBuf {
    let dir = std::env::var("TASKDROP_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = Path::new(&dir).to_path_buf();
    fs::create_dir_all(&dir).expect("create results dir");

    let csv_path = dir.join(format!("{id}-{scale}.csv"));
    let mut csv = fs::File::create(&csv_path).expect("create csv");
    writeln!(csv, "series,x,mean,ci95,trials").expect("write csv");
    for r in rows {
        writeln!(csv, "{},{},{:.6},{:.6},{}", r.series, r.x, r.mean, r.ci95, r.trials)
            .expect("write csv");
    }

    let json_path = dir.join(format!("{id}-{scale}.json"));
    let json = serde_json::to_string_pretty(rows).expect("serialise rows");
    fs::write(json_path, json).expect("write json");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(series: &str, x: &str, mean: f64) -> ResultRow {
        ResultRow { series: series.into(), x: x.into(), mean, ci95: 1.0, trials: 3 }
    }

    #[test]
    fn markdown_pivots_series_to_columns() {
        let rows = vec![row("A", "20k", 50.0), row("B", "20k", 40.0), row("A", "30k", 35.0)];
        let md = render_markdown("Robustness", &rows);
        assert!(md.contains("| Robustness | A | B |"));
        assert!(md.contains("| 20k | 50.00 ± 1.00 | 40.00 ± 1.00 |"));
        assert!(md.contains("| 30k | 35.00 ± 1.00 | — |"));
    }

    #[test]
    fn outputs_written_to_temp_dir() {
        let tmp = std::env::temp_dir().join(format!("taskdrop-test-{}", std::process::id()));
        std::env::set_var("TASKDROP_RESULTS_DIR", &tmp);
        let rows = vec![row("A", "x", 1.0)];
        let dir = write_outputs("figtest", "quick", &rows);
        assert!(dir.join("figtest-quick.csv").exists());
        assert!(dir.join("figtest-quick.json").exists());
        let csv = fs::read_to_string(dir.join("figtest-quick.csv")).unwrap();
        assert!(csv.starts_with("series,x,mean"));
        std::env::remove_var("TASKDROP_RESULTS_DIR");
        let _ = fs::remove_dir_all(tmp);
    }
}
