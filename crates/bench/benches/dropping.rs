//! The Section IV-F complexity claim, measured: per-queue decision time of
//! the proactive heuristic (`O(η·q)` convolutions) versus the optimal subset
//! search (`O(q·2^(q-1))`), with the threshold baseline for context, as the
//! queue depth q grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taskdrop_core::{DropPolicy, OptimalDropper, ProactiveDropper, ThresholdDropper};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::view::{DropContext, PendingView, QueueView};
use taskdrop_model::{MachineId, MachineTypeId, PetMatrix, TaskId, TaskTypeId};
use taskdrop_pmf::{Compaction, Pmf};

fn pet() -> PetMatrix {
    // Three stochastic task types on one machine type, ~8 impulses each.
    let cell = |lo: u64| {
        Pmf::from_weights((0..8).map(|k| (lo + 12 * k, 1.0 + (k % 3) as f64)).collect()).unwrap()
    };
    PetMatrix::new(3, 1, vec![cell(20), cell(60), cell(110)])
}

fn queue(pet: &PetMatrix, q: usize) -> QueueView<'_> {
    QueueView {
        machine: MachineId(0),
        machine_type: MachineTypeId(0),
        now: 0,
        running: None,
        pending: (0..q)
            .map(|k| PendingView {
                id: TaskId(k as u64),
                type_id: TaskTypeId((k % 3) as u16),
                // Mixed viability so the policies do real work.
                deadline: 80 + 60 * (k as u64 % 4),
                degraded: false,
            })
            .collect(),
        pet,
        approx_pet: None,
    }
}

fn bench_policies(c: &mut Criterion) {
    let pet = pet();
    let ctx = DropContext { compaction: Compaction::MaxImpulses(64), pressure: 1.0, approx: None };
    // Persistent context, as the engine drives policies in production.
    let mut scratch = PolicyCtx::new();
    let mut group = c.benchmark_group("drop_decision");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for q in [2usize, 4, 6, 8] {
        let view = queue(&pet, q);
        let heuristic = ProactiveDropper::paper_default();
        group.bench_with_input(BenchmarkId::new("heuristic_eta2", q), &q, |b, _| {
            b.iter(|| black_box(heuristic.select_drops(&view, &ctx, &mut scratch)));
        });
        let optimal = OptimalDropper::new();
        group.bench_with_input(BenchmarkId::new("optimal_pruned", q), &q, |b, _| {
            b.iter(|| black_box(optimal.select_drops(&view, &ctx, &mut scratch)));
        });
        let plain = OptimalDropper::without_pruning();
        group.bench_with_input(BenchmarkId::new("optimal_exhaustive", q), &q, |b, _| {
            b.iter(|| black_box(plain.select_drops(&view, &ctx, &mut scratch)));
        });
        let threshold = ThresholdDropper::paper_default();
        group.bench_with_input(BenchmarkId::new("threshold", q), &q, |b, _| {
            b.iter(|| black_box(threshold.select_drops(&view, &ctx, &mut scratch)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
