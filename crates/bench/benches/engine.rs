//! End-to-end engine throughput: a full oversubscribed trial per
//! mapper × dropper combination (events per second is the quantity that
//! bounds experiment wall-time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taskdrop_core::{DropPolicy, ProactiveDropper, ReactiveOnly};
use taskdrop_sched::{MappingHeuristic, MinMin, Pam};
use taskdrop_sim::{SimConfig, Simulation};
use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};

fn bench_engine(c: &mut Criterion) {
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("bench", 600, 3_500);
    let workload = Workload::generate(&scenario, &level, 1.0, 11);
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };

    let mut group = c.benchmark_group("trial_600_tasks");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    type Combo = (&'static str, Box<dyn MappingHeuristic>, Box<dyn DropPolicy>);
    let combos: Vec<Combo> = vec![
        ("PAM+Heuristic", Box::new(Pam), Box::new(ProactiveDropper::paper_default())),
        ("PAM+ReactDrop", Box::new(Pam), Box::new(ReactiveOnly)),
        ("MM+Heuristic", Box::new(MinMin), Box::new(ProactiveDropper::paper_default())),
        ("MM+ReactDrop", Box::new(MinMin), Box::new(ReactiveOnly)),
    ];
    for (name, mapper, dropper) in &combos {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let sim = Simulation::new(
                    &scenario,
                    &workload,
                    mapper.as_ref(),
                    dropper.as_ref(),
                    config,
                    1,
                );
                black_box(sim.run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
