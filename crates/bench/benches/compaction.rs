//! Ablation of the PMF compaction policy (DESIGN.md decision 6): chain a
//! deep machine queue with no compaction versus impulse caps of 16/32/64,
//! measuring time; the accompanying accuracy probe prints the worst
//! chance-of-success deviation once per run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taskdrop_model::queue::{chain, ChainTask};
use taskdrop_pmf::{Compaction, Pmf};

fn exec() -> Pmf {
    Pmf::from_weights((0..24).map(|k| (40 + 7 * k, 1.0 + (k % 5) as f64)).collect()).unwrap()
}

fn tasks(exec: &Pmf, depth: usize) -> Vec<ChainTask<'_>> {
    (0..depth).map(|k| ChainTask { deadline: 200 + 150 * k as u64, exec }).collect()
}

fn bench_compaction(c: &mut Criterion) {
    let exec = exec();
    let deep = tasks(&exec, 6);
    let base = Pmf::point(0);

    // One-time accuracy probe: worst per-position chance deviation vs exact.
    let exact = chain(&base, &deep, Compaction::None);
    for cap in [16usize, 32, 64] {
        let approx = chain(&base, &deep, Compaction::MaxImpulses(cap));
        let worst = exact
            .iter()
            .zip(approx.iter())
            .map(|(e, a)| (e.chance - a.chance).abs())
            .fold(0.0f64, f64::max);
        eprintln!("compaction cap {cap}: worst chance error {worst:.5}");
    }

    let mut group = c.benchmark_group("queue_chain_depth6");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let policies = [
        ("none", Compaction::None),
        ("cap16", Compaction::MaxImpulses(16)),
        ("cap32", Compaction::MaxImpulses(32)),
        ("cap64", Compaction::MaxImpulses(64)),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, p| {
            b.iter(|| black_box(chain(&base, &deep, *p)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
