//! Mapping-heuristic cost per mapping event as the batch queue grows:
//! MM/MSD run on cached scalar means, PAM pays for chance-of-success
//! convolutions (amortised per task type).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taskdrop_model::view::{MachineView, MappingInput, UnmappedView};
use taskdrop_model::{MachineId, MachineTypeId, TaskId, TaskTypeId};
use taskdrop_pmf::{Compaction, Pmf};
use taskdrop_sched::{MappingHeuristic, MinMin, Msd, Pam};
use taskdrop_workload::Scenario;

fn machines(now: u64) -> Vec<MachineView> {
    (0..8u16)
        .map(|id| MachineView {
            machine: MachineId(id),
            machine_type: MachineTypeId(id),
            free_slots: 2,
            tail: Pmf::from_weights(vec![(now + 40, 1.0), (now + 90, 2.0), (now + 150, 1.0)])
                .unwrap(),
        })
        .collect()
}

fn batch(n: usize) -> Vec<UnmappedView> {
    (0..n)
        .map(|k| UnmappedView {
            id: TaskId(k as u64),
            type_id: TaskTypeId((k % 12) as u16),
            arrival: k as u64,
            deadline: 300 + (k as u64 % 5) * 80,
        })
        .collect()
}

fn bench_mappers(c: &mut Criterion) {
    let scenario = Scenario::specint(0xA5);
    // Persistent context, as the engine drives mappers in production.
    let mut scratch = taskdrop_model::ctx::PolicyCtx::new();
    let mut group = c.benchmark_group("mapping_event");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [10usize, 50, 200] {
        let unmapped = batch(n);
        let mappers: Vec<(&str, Box<dyn MappingHeuristic>)> =
            vec![("MM", Box::new(MinMin)), ("MSD", Box::new(Msd)), ("PAM", Box::new(Pam))];
        for (name, mapper) in mappers {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let input = MappingInput {
                        now: 0,
                        pet: &scenario.pet,
                        machines: machines(0),
                        unmapped: &unmapped,
                        compaction: Compaction::MaxImpulses(64),
                    };
                    black_box(mapper.map(input, &mut scratch))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
