//! Micro-benchmarks of the PMF substrate: plain and deadline-aware
//! convolution across impulse counts (factor *B* of the paper's Section IV-F
//! complexity analysis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use taskdrop_pmf::{deadline_convolve, Pmf};

fn pmf_with_impulses(n: u64, spread: u64) -> Pmf {
    let step = (spread / n).max(1);
    Pmf::from_weights((0..n).map(|k| (10 + k * step, 1.0 + (k % 7) as f64)).collect()).unwrap()
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolve");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [8u64, 16, 32, 64, 128] {
        let a = pmf_with_impulses(n, 400);
        let b = pmf_with_impulses(n, 400);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| black_box(a.convolve(&b)));
        });
        group.bench_with_input(BenchmarkId::new("deadline", n), &n, |bench, _| {
            bench.iter(|| black_box(deadline_convolve(&a, &b, 350)));
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    group.sample_size(30).measurement_time(Duration::from_secs(1));
    let p = pmf_with_impulses(64, 1000);
    group.bench_function("mass_before", |b| b.iter(|| black_box(p.mass_before(black_box(500)))));
    group.bench_function("mean", |b| b.iter(|| black_box(p.mean())));
    group.bench_function("condition_at_least", |b| {
        b.iter(|| black_box(p.condition_at_least(black_box(300))))
    });
    group.finish();
}

criterion_group!(benches, bench_convolution, bench_queries);
criterion_main!(benches);
