//! Micro-benchmarks of the PMF substrate: plain and deadline-aware
//! convolution across impulse counts (factor *B* of the paper's Section IV-F
//! complexity analysis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use taskdrop_pmf::{deadline_convolve, ChainScratch, Pmf};

fn pmf_with_impulses(n: u64, spread: u64) -> Pmf {
    let step = (spread / n).max(1);
    Pmf::from_weights((0..n).map(|k| (10 + k * step, 1.0 + (k % 7) as f64)).collect()).unwrap()
}

/// The real elementary-operation count of plain `a ⊛ b`: products plus the
/// dense accumulator's zero-and-sweep span scan (`conv_budget`), so
/// per-element throughput reflects measured work rather than `n·m` alone.
fn plain_budget(a: &Pmf, b: &Pmf) -> u64 {
    let span = a.support_max().unwrap() + b.support_max().unwrap()
        - (a.support_min().unwrap() + b.support_min().unwrap())
        + 1;
    taskdrop_pmf::conv_budget(a.len(), b.len(), span)
}

/// The real elementary-operation count of the deadline-aware variant: only
/// predecessor impulses before `deadline` convolve (`k·m` products), the
/// rest pass through (one product each), and the accumulator spans the
/// *actual* result support — smaller than the plain convolution's.
fn deadline_budget(a: &Pmf, b: &Pmf, deadline: u64) -> u64 {
    let k = a.iter().take_while(|i| i.t < deadline).count() as u64;
    let products = k * b.len() as u64 + (a.len() as u64 - k);
    let c = deadline_convolve(a, b, deadline);
    let span = c.support_max().unwrap() - c.support_min().unwrap() + 1;
    if span <= taskdrop_pmf::DENSE_SPAN_LIMIT {
        products + span
    } else {
        products
    }
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolve");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [8u64, 16, 32, 64, 128] {
        let a = pmf_with_impulses(n, 400);
        let b = pmf_with_impulses(n, 400);
        group.throughput(Throughput::Elements(plain_budget(&a, &b)));
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| black_box(a.convolve(&b)));
        });
        group.throughput(Throughput::Elements(deadline_budget(&a, &b, 350)));
        group.bench_with_input(BenchmarkId::new("deadline", n), &n, |bench, _| {
            bench.iter(|| black_box(deadline_convolve(&a, &b, 350)));
        });
        // The fused kernel doing the same Eq 1 work plus the Eq 2 chance,
        // with zero materialisation — the gap to "deadline" is the cost of
        // the sort + Pmf allocation the scratch path eliminates.
        group.bench_with_input(BenchmarkId::new("fused_chance", n), &n, |bench, _| {
            let mut scratch = ChainScratch::new();
            bench.iter(|| black_box(scratch.chance_of(&a, &b, 350)));
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    group.sample_size(30).measurement_time(Duration::from_secs(1));
    let p = pmf_with_impulses(64, 1000);
    group.bench_function("mass_before", |b| b.iter(|| black_box(p.mass_before(black_box(500)))));
    group.bench_function("mean", |b| b.iter(|| black_box(p.mean())));
    group.bench_function("condition_at_least", |b| {
        b.iter(|| black_box(p.condition_at_least(black_box(300))))
    });
    group.finish();
}

criterion_group!(benches, bench_convolution, bench_queries);
criterion_main!(benches);
