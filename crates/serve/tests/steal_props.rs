//! TLA-style fleet invariants for cross-shard work stealing, pinned as
//! proptest properties over random fleets (random shard counts, ingress
//! capacities, bursty sources, backpressure policies, steal thresholds)
//! with mid-run kill/restore:
//!
//! * **No task duplicated** — every admitted offer becomes exactly one
//!   engine task; migrated offers are admitted (or turned away) by
//!   exactly one shard.
//! * **No task lost** — per-shard and fleet-wide admission ledgers
//!   balance with the migration terms included, and the engine's own
//!   conservation identity holds for every shard.
//! * **Progress** — the fleet always drains to idle within the epoch
//!   budget: a saturated shard sheds into its siblings instead of
//!   wedging.
//! * **Worker-count invariance** — the same random fleet at 1 and 3
//!   workers produces identical results and ledgers (the broader
//!   byte-equality differential lives in `tests/fleet_determinism.rs`).

use proptest::prelude::*;
use taskdrop_core::ProactiveDropper;
use taskdrop_sched::Pam;
use taskdrop_serve::{
    AdmissionController, AdmissionStats, BackpressurePolicy, FleetDriver, FleetShard, StealPolicy,
};
use taskdrop_sim::{SimConfig, TrialResult};
use taskdrop_workload::{BurstySource, Scenario, TrafficSource};

/// One randomly drawn shard: its seeds, ingress bound, traffic shape and
/// backpressure policy.
#[derive(Debug, Clone)]
struct ShardSpec {
    exec_seed: u64,
    source_seed: u64,
    capacity: usize,
    rate_on: f64,
    slack: u64,
    total: u64,
    backpressure: BackpressurePolicy,
}

fn shard_spec() -> impl Strategy<Value = ShardSpec> {
    ((0u64..1_000, 0u64..1_000), (4usize..32, 0.05f64..0.6), (200u64..500, 40u64..160, 0u8..3))
        .prop_map(|((exec_seed, source_seed), (capacity, rate_on), (slack, total, bp))| ShardSpec {
            exec_seed,
            source_seed,
            capacity,
            rate_on,
            slack,
            total,
            backpressure: match bp {
                0 => BackpressurePolicy::Reject,
                1 => BackpressurePolicy::ShedOldest,
                _ => BackpressurePolicy::PreDrop { threshold: 0.2 },
            },
        })
}

fn steal_policy() -> impl Strategy<Value = StealPolicy> {
    (0.3f64..=1.0, 0.2f64..=1.0, 1usize..6).prop_map(|(saturation, headroom, max_per_epoch)| {
        StealPolicy { saturation, headroom, max_per_epoch }
    })
}

/// Runs one randomly drawn fleet to idle and returns its observables.
fn run_fleet(
    specs: &[ShardSpec],
    policy: StealPolicy,
    epoch: u64,
    workers: usize,
    kill: Option<usize>,
) -> (Vec<TrialResult>, Vec<AdmissionStats>) {
    let scenario = Scenario::specint(3);
    let dropper = ProactiveDropper::paper_default();
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let mut fleet = FleetDriver::new()
        .with_workers(workers)
        .with_checkpoint_every(epoch * 2)
        .with_stealing(policy);
    for (i, spec) in specs.iter().enumerate() {
        let source = TrafficSource::Bursty(BurstySource::new(
            spec.source_seed,
            spec.rate_on,
            0.0,
            400,
            900,
            spec.slack,
            12,
            spec.total,
        ));
        fleet.add_shard(
            FleetShard::new(
                format!("shard-{i}"),
                &scenario,
                &Pam,
                &dropper,
                config,
                spec.exec_seed,
                source,
                AdmissionController::new(spec.capacity, spec.backpressure),
            )
            .expect("valid shard"),
        );
    }
    // Fixed choreography: a prefix of epochs, an optional kill/restore,
    // then drain. Identical at every worker count.
    for _ in 0..4 {
        fleet.advance(epoch).expect("epoch");
    }
    if let Some(victim) = kill {
        let victim = victim % specs.len();
        fleet.kill_and_restore(victim).expect("kill/restore");
    }
    fleet.run_until_idle(epoch, 600).expect("drain");
    assert!(fleet.is_idle(), "PROGRESS violated: fleet wedged inside the epoch budget");
    (
        fleet.shards().iter().map(|s| s.result().expect("drained")).collect(),
        fleet.shards().iter().map(|s| s.admission().stats()).collect(),
    )
}

proptest! {
    // Each case runs the same fleet twice (1 and 3 workers); the drawn
    // totals bound every run to a few hundred tasks.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_fleets_conserve_tasks_and_drain(
        specs in proptest::collection::vec(shard_spec(), 2..5),
        policy in steal_policy(),
        epoch in 200u64..600,
        kill_draw in 0usize..8,
    ) {
        // Half the cases kill (and restore) a random shard mid-run.
        let kill = (kill_draw < 4).then_some(kill_draw);
        let (results, stats) = run_fleet(&specs, policy, epoch, 1, kill);

        // NO TASK LOST, fleet-wide: every migrated offer that left a
        // donor arrived at exactly one receiver…
        let stolen_out: u64 = stats.iter().map(|s| s.stolen_out).sum();
        let stolen_in: u64 = stats.iter().map(|s| s.stolen_in).sum();
        prop_assert_eq!(stolen_out, stolen_in, "migration ledger unbalanced");
        // …so fleet-wide every offer is admitted or turned away once.
        let offered: u64 = stats.iter().map(|s| s.offered).sum();
        let settled: u64 = stats.iter().map(|s| s.admitted + s.turned_away()).sum();
        prop_assert_eq!(offered, settled, "offers lost or duplicated fleet-wide");

        for (result, s) in results.iter().zip(&stats) {
            // NO TASK LOST / NO TASK DUPLICATED, per shard: the ledger
            // balances with the migration terms (idle ⇒ queued == 0)…
            prop_assert_eq!(
                s.offered + s.stolen_in,
                s.admitted + s.turned_away() + s.stolen_out,
                "per-shard ledger unbalanced"
            );
            // …every admitted offer became exactly one engine task…
            prop_assert_eq!(result.total_tasks as u64, s.admitted);
            // …and the engine resolved each exactly once.
            prop_assert!(result.is_conserved(), "engine conservation violated");
        }

        // WORKER-COUNT INVARIANCE: same fleet, 3 workers, same bytes.
        let (results3, stats3) = run_fleet(&specs, policy, epoch, 3, kill);
        prop_assert_eq!(results, results3, "results diverged across worker counts");
        prop_assert_eq!(stats, stats3, "ledgers diverged across worker counts");
    }
}
