//! `taskdrop_serve` — the online serving layer over the simulation core.
//!
//! The paper's task-dropping mechanism is ultimately a *serving-time*
//! policy: it exists so a live heterogeneous cluster can shed doomed work
//! under oversubscription. This crate turns the batch reproduction into
//! that production shape. It wraps the resumable
//! [`SimCore`](taskdrop_sim::SimCore) in three layers:
//!
//! * **Admission control** ([`AdmissionController`]) — a bounded ingress
//!   queue in front of [`inject`](taskdrop_sim::SimCore::inject) with
//!   pluggable [`BackpressurePolicy`]s: plain rejection, shed-oldest, and
//!   a probabilistic pre-drop that reuses the paper's completion-PMF
//!   chance-of-success threshold (Eq 1 + Eq 2) at the front door. Every
//!   refusal is counted ([`AdmissionStats`]) and streamed to observers as
//!   [`SimEvent::AdmissionDropped`](taskdrop_sim::SimEvent::AdmissionDropped).
//! * **Shards** ([`Shard`]) — one independent tenant/cluster each: a
//!   streaming [`TrafficSource`](taskdrop_workload::TrafficSource) feeding
//!   the admission controller feeding an open-world core, with wholesale
//!   [`ShardCheckpoint`]s (core snapshot + source cursor + admission
//!   state) that serialize through serde.
//! * **The driver** ([`ServiceDriver`]) — an epoch-based event loop
//!   multiplexing many shards against one virtual clock, taking periodic
//!   checkpoints, and able to [`kill_and_restore`] a shard mid-flight: the
//!   revived shard replays the recorded epoch boundaries and — because
//!   every layer is deterministic — rejoins the fleet byte-identical to
//!   the state that was destroyed.
//!
//! ```
//! use taskdrop_core::ProactiveDropper;
//! use taskdrop_sched::Pam;
//! use taskdrop_serve::{AdmissionController, BackpressurePolicy, ServiceDriver, Shard};
//! use taskdrop_sim::SimConfig;
//! use taskdrop_workload::{BurstySource, Scenario, TrafficSource};
//!
//! let scenario = Scenario::specint(1);
//! let dropper = ProactiveDropper::paper_default();
//! let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
//! let source = TrafficSource::Bursty(BurstySource::new(9, 0.4, 0.0, 300, 700, 400, 12, 60));
//! let admission = AdmissionController::new(16, BackpressurePolicy::PreDrop { threshold: 0.2 });
//!
//! let mut driver = ServiceDriver::new().with_checkpoint_every(1_000);
//! driver.add_shard(
//!     Shard::new("tenant-a", &scenario, &Pam, &dropper, config, 7, source, admission).unwrap(),
//! );
//! driver.run_until_idle(500, 100).unwrap();
//! assert!(driver.is_idle());
//! let result = driver.shards()[0].core().result().unwrap();
//! assert!(result.is_conserved());
//! ```
//!
//! [`kill_and_restore`]: ServiceDriver::kill_and_restore

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod admission;
mod driver;
mod fleet;
mod shard;
mod steal;

pub use admission::{
    best_chance_of_success, AdmissionController, AdmissionOutcome, AdmissionStats,
    BackpressurePolicy, QueueTails,
};
pub use driver::ServiceDriver;
pub use fleet::{FleetDriver, FleetShard, Transfer};
pub use shard::{Shard, ShardCheckpoint};
pub use steal::{plan_steals, ShardLoad, StealDecision, StealPolicy};

use taskdrop_sim::SimError;

/// Serving-layer failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// An underlying simulation error (construction, injection, restore).
    Sim(SimError),
    /// A shard index out of range.
    UnknownShard {
        /// The requested index.
        index: usize,
        /// How many shards the driver holds.
        shards: usize,
    },
    /// A restore was requested before any checkpoint was taken.
    NoCheckpoint {
        /// Name of the shard.
        shard: String,
    },
    /// An epoch advance that would not move the clock (`delta == 0`).
    InvalidEpoch {
        /// The rejected delta.
        delta: taskdrop_pmf::Tick,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::UnknownShard { index, shards } => {
                write!(f, "shard {index} out of range (driver holds {shards})")
            }
            ServeError::NoCheckpoint { shard } => {
                write!(f, "shard `{shard}` has no checkpoint to restore from")
            }
            ServeError::InvalidEpoch { delta } => {
                write!(f, "epoch delta {delta} must be positive to advance the clock")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}
