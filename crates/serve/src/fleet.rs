//! The parallel shard fleet: epoch-parallel serving with deterministic
//! epoch-barrier merges and cross-shard work stealing.
//!
//! [`FleetDriver`] is the multi-core sibling of
//! [`ServiceDriver`](crate::ServiceDriver). Each epoch runs in two
//! strictly separated phases:
//!
//! 1. **Parallel phase.** The shard vector is partitioned into contiguous
//!    chunks, one per worker, and each worker advances its shards to the
//!    epoch boundary on a crossbeam scoped thread. Shards share *nothing*
//!    mutable — each owns its core, traffic source, and admission
//!    controller — so the partition only decides *who* computes a shard's
//!    epoch, never *what* it computes.
//! 2. **Barrier phase.** Back on the calling thread, shards are merged in
//!    shard-index order: steal decisions are planned from the merged
//!    backlog snapshot and executed, buffered engine events are drained
//!    into telemetry, the epoch record is emitted, and periodic
//!    checkpoints are taken.
//!
//! **Determinism claim.** Every byte of output — [`TrialResult`]s, shard
//! checkpoints, telemetry JSONL — is identical at 1, 2, 4, or 8 workers
//! (pinned by `tests/fleet_determinism.rs`). The argument: the parallel
//! phase is embarrassingly parallel over owned state, so each shard's
//! trajectory is a pure function of its inputs; every cross-shard
//! interaction (stealing) and every observation (telemetry, checkpoints)
//! happens in the single-threaded barrier in shard-index order; and steal
//! plans are computed by [`plan_steals`] — a pure function of the merged
//! epoch snapshot with exact integer tie-breaking — never from thread
//! timing. Buffering events in per-shard [`EventRelay`] hubs and draining
//! them at the barrier makes event *observation* order canonical even
//! though event *production* order across shards is not.
//!
//! Work stealing is the serving-layer twist on the paper's thesis: rather
//! than letting a saturated shard turn work away (or pre-drop it) while a
//! sibling idles, queued offers migrate at the barrier — the same
//! utility-aware triage, but the remedy is relocation instead of
//! dropping. The TLA-style fleet invariants (no task duplicated, no task
//! lost, saturated shards make progress) are pinned as proptest
//! properties in `tests/steal_props.rs`.

use crate::admission::{AdmissionController, BackpressurePolicy, QueueTails};
use crate::shard::{advance_shard_to, ShardCheckpoint};
use crate::steal::{plan_steals, ShardLoad, StealPolicy};
use crate::ServeError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use taskdrop_core::DropPolicy;
use taskdrop_obs::{EpochRecord, ShardEpoch, Telemetry};
use taskdrop_pmf::Tick;
use taskdrop_sched::MappingHeuristic;
use taskdrop_sim::{
    EventRelay, MigrationKind, SimConfig, SimCore, SimError, SimEvent, StepOutcome, TrialResult,
};
use taskdrop_workload::{OfferedTask, Scenario, TrafficSource};

/// One executed cross-shard migration: `offers` moved from shard `from`
/// to shard `to` at an epoch barrier. Recorded in the fleet's replay log
/// so [`FleetDriver::kill_and_restore`] can re-apply the exact transfer
/// during catch-up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Donating shard index.
    pub from: usize,
    /// Receiving shard index.
    pub to: usize,
    /// The migrated offers, in the order they left the donor's queue.
    pub offers: Vec<OfferedTask>,
}

/// One replayable epoch boundary: the tick the fleet advanced to and the
/// transfers executed at its barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EpochEntry {
    until: Tick,
    transfers: Vec<Transfer>,
}

/// One tenant/cluster inside a [`FleetDriver`]: the same ingress pipeline
/// as [`Shard`](crate::Shard) — traffic source → admission controller →
/// open-world core — but built on a [`SimCore`] whose observer hub is an
/// [`EventRelay`], which buffers engine events instead of delivering them
/// to boxed callbacks. That makes the whole shard `Send` (asserted by
/// this module's tests), so a worker thread can own it for the parallel
/// phase; the driver drains the buffer at the single-threaded barrier.
///
/// Checkpoints reuse [`ShardCheckpoint`] (with no flight recorder), so a
/// fleet shard's snapshot revives equally well in a serial
/// [`Shard`](crate::Shard) and vice versa.
pub struct FleetShard<'a> {
    name: String,
    scenario: &'a Scenario,
    mapper: &'a dyn MappingHeuristic,
    dropper: &'a dyn DropPolicy,
    core: SimCore<'a, EventRelay>,
    source: TrafficSource,
    admission: AdmissionController,
    last_checkpoint: Option<ShardCheckpoint>,
}

impl<'a> FleetShard<'a> {
    /// Assembles a fleet shard around a fresh open-world core.
    ///
    /// # Errors
    ///
    /// Any configuration error from [`SimCore::open_in`].
    #[allow(clippy::too_many_arguments)] // one borrow per collaborating piece
    pub fn new(
        name: impl Into<String>,
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
        source: TrafficSource,
        admission: AdmissionController,
    ) -> Result<Self, SimError> {
        let core = SimCore::<EventRelay>::open_in(scenario, mapper, dropper, config, exec_seed)?;
        Ok(FleetShard {
            name: name.into(),
            scenario,
            mapper,
            dropper,
            core,
            source,
            admission,
            last_checkpoint: None,
        })
    }

    /// The shard's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying core (read-only).
    #[must_use]
    pub fn core(&self) -> &SimCore<'a, EventRelay> {
        &self.core
    }

    /// The admission controller (read-only).
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The traffic source (read-only).
    #[must_use]
    pub fn source(&self) -> &TrafficSource {
        &self.source
    }

    /// The most recent checkpoint, if one was taken.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<&ShardCheckpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Whether the shard has nothing left to do.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.source.is_exhausted() && self.admission.queued() == 0 && self.core.is_drained()
    }

    /// The shard's final [`TrialResult`] once drained.
    ///
    /// # Errors
    ///
    /// [`SimError::NotDrained`] while tasks are still in flight.
    pub fn result(&self) -> Result<TrialResult, SimError> {
        self.core.result()
    }

    /// Advances the shard's pipeline to `until` (the per-worker body of
    /// the parallel phase). Two ingress schedules:
    ///
    /// * **Immediate** (`deferred == false`, stealing off) — identical to
    ///   [`Shard::advance_to`]: the epoch's arrivals are offered *and*
    ///   injected within the same epoch, so the fleet retraces a serial
    ///   [`ServiceDriver`](crate::ServiceDriver) exactly.
    /// * **Deferred** (`deferred == true`, stealing on) — the backlog
    ///   queued at the previous barrier (including offers migrated in) is
    ///   injected first, then this epoch's arrivals are offered but left
    ///   *queued*, so they are still present — and migratable — when the
    ///   barrier snapshots the fleet. Dispatch is batched at epoch
    ///   granularity; an offer waits at most one epoch (and is dropped as
    ///   `Expired` at injection if its deadline lapsed meanwhile).
    ///
    /// # Errors
    ///
    /// Any error from the admission drain.
    ///
    /// [`Shard::advance_to`]: crate::Shard::advance_to
    fn advance_core(&mut self, until: Tick, deferred: bool) -> Result<StepOutcome, SimError> {
        if !deferred {
            return advance_shard_to(&mut self.source, &mut self.admission, &mut self.core, until);
        }
        self.admission.drain_due(&mut self.core, until)?;
        let mut tails: Option<QueueTails> = None;
        while self.source.peek().is_some_and(|next| next.arrival <= until) {
            let Some(task) = self.source.pop() else { break };
            if tails.is_none()
                && matches!(self.admission.policy(), BackpressurePolicy::PreDrop { .. })
            {
                tails = Some(QueueTails::capture(&mut self.core));
            }
            match &mut tails {
                Some(t) => self.admission.offer_with(task, &mut self.core, t),
                None => self.admission.offer(task, &mut self.core),
            };
        }
        Ok(self.core.run_until(until))
    }

    /// Releases the newest `count` queued offers to migrate to shard
    /// `peer`, emitting one `Donated` event per offer at barrier time
    /// `now`.
    fn donate(&mut self, count: usize, peer: usize, now: Tick) -> Vec<OfferedTask> {
        let offers = self.admission.release_for_steal(count);
        self.emit_migrations(&offers, MigrationKind::Donated, peer, now);
        offers
    }

    /// Merges migrated offers into the ingress queue, emitting one
    /// `Received` event per offer at barrier time `now`.
    fn receive(&mut self, offers: &[OfferedTask], peer: usize, now: Tick) {
        self.admission.accept_stolen(offers);
        self.emit_migrations(offers, MigrationKind::Received, peer, now);
    }

    fn emit_migrations(
        &mut self,
        offers: &[OfferedTask],
        kind: MigrationKind,
        peer: usize,
        now: Tick,
    ) {
        let peer = u32::try_from(peer).unwrap_or(u32::MAX);
        for offer in offers {
            self.core.notify_observers(&SimEvent::TaskMigrated {
                type_id: offer.type_id,
                arrival: offer.arrival,
                deadline: offer.deadline,
                now,
                kind,
                peer,
            });
        }
    }

    /// Cumulative serving numbers for telemetry epoch records.
    fn epoch_snapshot(&self) -> ShardEpoch {
        let stats = self.admission.stats();
        ShardEpoch {
            shard: self.name.clone(),
            backlog: self.admission.queued() as u64,
            offered: stats.offered,
            admitted: stats.admitted,
            turned_away: stats.turned_away(),
            total_tasks: self.core.total_tasks() as u64,
            resolved_tasks: self.core.resolved_tasks() as u64,
            stolen_in: stats.stolen_in,
            stolen_out: stats.stolen_out,
        }
    }

    /// Snapshots the complete shard state and remembers it as the
    /// restore point.
    pub fn take_checkpoint(&mut self, taken_at: Tick) -> &ShardCheckpoint {
        let cp = ShardCheckpoint {
            taken_at,
            core: self.core.snapshot(),
            source: self.source.clone(),
            admission: self.admission.clone(),
            flight: None,
        };
        self.last_checkpoint.insert(cp)
    }

    /// Discards the live state and rebuilds the shard from `checkpoint`
    /// (which must match the shard's scenario and policies). The pending
    /// event-relay buffer is discarded with the state it described.
    ///
    /// # Errors
    ///
    /// Any validation error from [`SimCore::restore_in`]; on error the
    /// live state is unchanged.
    pub fn restore_from(&mut self, checkpoint: &ShardCheckpoint) -> Result<(), SimError> {
        self.core =
            SimCore::restore_in(self.scenario, self.mapper, self.dropper, &checkpoint.core)?;
        self.source = checkpoint.source.clone();
        self.admission = checkpoint.admission.clone();
        self.last_checkpoint = Some(checkpoint.clone());
        Ok(())
    }
}

impl std::fmt::Debug for FleetShard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetShard")
            .field("name", &self.name)
            .field("scenario", &self.scenario.name)
            .field("now", &self.core.now())
            .field("total_tasks", &self.core.total_tasks())
            .field("resolved_tasks", &self.core.resolved_tasks())
            .field("ingress_queued", &self.admission.queued())
            .finish_non_exhaustive()
    }
}

/// Worker-pool default: one worker per available core.
fn default_workers() -> usize {
    // lint:allow(thread-primitives): sizes the crossbeam worker pool only; fleet output is worker-count-invariant (pinned by tests/fleet_determinism.rs)
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Epoch-parallel multi-shard driver with deterministic barrier merges
/// and optional cross-shard work stealing (see the module docs for the
/// two-phase structure and the determinism argument).
pub struct FleetDriver<'a> {
    shards: Vec<FleetShard<'a>>,
    clock: Tick,
    workers: usize,
    checkpoint_every: Option<Tick>,
    next_checkpoint: Tick,
    has_checkpoint: bool,
    /// Replayable epoch boundaries (tick + executed transfers) still
    /// needed for catch-up; swept to the oldest live checkpoint after
    /// every epoch, mirroring `ServiceDriver`'s retention contract.
    epoch_log: Vec<EpochEntry>,
    stealing: Option<StealPolicy>,
    telemetry: Option<Telemetry>,
}

impl std::fmt::Debug for FleetDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetDriver")
            .field("shards", &self.shards)
            .field("clock", &self.clock)
            .field("workers", &self.workers)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("stealing", &self.stealing)
            .field("epoch_log_len", &self.epoch_log.len())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl<'a> FleetDriver<'a> {
    /// An empty fleet at clock 0 with one worker per available core, no
    /// periodic checkpoints, and stealing disabled.
    #[must_use]
    pub fn new() -> Self {
        FleetDriver {
            shards: Vec::new(),
            clock: 0,
            workers: default_workers(),
            checkpoint_every: None,
            next_checkpoint: 0,
            has_checkpoint: false,
            epoch_log: Vec::new(),
            stealing: None,
            telemetry: None,
        }
    }

    /// Sets the worker-thread count for the parallel phase (clamped to at
    /// least 1). Purely a throughput knob: every observable byte is
    /// identical at any setting.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables periodic checkpoints, as
    /// [`ServiceDriver::with_checkpoint_every`].
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    ///
    /// [`ServiceDriver::with_checkpoint_every`]: crate::ServiceDriver::with_checkpoint_every
    #[must_use]
    pub fn with_checkpoint_every(mut self, interval: Tick) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpoint_every = Some(interval);
        self.next_checkpoint = self.clock + interval;
        self
    }

    /// Enables cross-shard work stealing at epoch barriers. Only shards
    /// built on the *same scenario* (name and seed) exchange work —
    /// offers carry scenario-relative task-type ids.
    ///
    /// Stealing switches the fleet's ingress schedule from immediate to
    /// **epoch-batched dispatch**: an epoch's arrivals stay queued until
    /// the barrier (where they can migrate) and inject at the next
    /// epoch's start. Choose the mode before the first
    /// [`FleetDriver::advance`] and keep it for the fleet's lifetime — it
    /// is part of the trajectory, not a tuning knob.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails [`StealPolicy::is_valid`].
    #[must_use]
    pub fn with_stealing(mut self, policy: StealPolicy) -> Self {
        assert!(policy.is_valid(), "steal policy thresholds out of range");
        self.stealing = Some(policy);
        self
    }

    /// Wires a [`Telemetry`] pipeline into the fleet's barrier: buffered
    /// engine events are fed per shard (in shard-index order) via
    /// [`Telemetry::scope_event`], plus the same epoch / checkpoint /
    /// kill-restore records a [`ServiceDriver`](crate::ServiceDriver)
    /// emits.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// Adds a shard and returns its fleet index.
    pub fn add_shard(&mut self, shard: FleetShard<'a>) -> usize {
        self.shards.push(shard);
        self.shards.len() - 1
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> Tick {
        self.clock
    }

    /// All shards, in add order.
    #[must_use]
    pub fn shards(&self) -> &[FleetShard<'a>] {
        &self.shards
    }

    /// Mutable access to one shard (e.g. to take a manual checkpoint).
    pub fn shard_mut(&mut self, index: usize) -> Option<&mut FleetShard<'a>> {
        self.shards.get_mut(index)
    }

    /// Whether every shard is idle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.shards.iter().all(FleetShard::is_idle)
    }

    /// Runs one epoch: the parallel phase advances every shard to
    /// `clock + delta` across the worker pool, then the barrier phase
    /// merges in shard-index order — steals, telemetry drain, epoch
    /// record, replay-log upkeep, periodic checkpoints. Returns the new
    /// clock.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidEpoch`] if `delta` is zero; otherwise the
    /// lowest-indexed shard error from the parallel phase (chosen by
    /// index, not thread timing, so the surfaced error is deterministic).
    /// The clock is not advanced past a failing epoch.
    ///
    /// # Panics
    ///
    /// Re-raises a worker-thread panic on the calling thread.
    pub fn advance(&mut self, delta: Tick) -> Result<Tick, ServeError> {
        if delta == 0 {
            return Err(ServeError::InvalidEpoch { delta });
        }
        let until = self.clock + delta;
        self.parallel_advance(until)?;

        // --- Barrier: everything below runs on the calling thread, in
        // shard-index order, regardless of worker count. ---
        let transfers = self.execute_steals(until);
        self.drain_relays();
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_epoch(&EpochRecord {
                record: "epoch".to_string(),
                from: self.clock,
                to: until,
                shards: self.shards.iter().map(FleetShard::epoch_snapshot).collect(),
            });
        }
        self.clock = until;
        if self.has_checkpoint {
            self.epoch_log.push(EpochEntry { until, transfers });
            self.sweep_epoch_log();
        }
        if let Some(interval) = self.checkpoint_every {
            if self.clock >= self.next_checkpoint {
                self.checkpoint_all();
                while self.next_checkpoint <= self.clock {
                    self.next_checkpoint += interval;
                }
            }
        }
        Ok(self.clock)
    }

    /// The parallel phase: contiguous shard chunks, one crossbeam scoped
    /// thread each. With one effective worker the thread pool is skipped
    /// entirely — the 1-worker fleet is *literally* serial code, which
    /// anchors the determinism differential.
    fn parallel_advance(&mut self, until: Tick) -> Result<(), ServeError> {
        let deferred = self.stealing.is_some();
        let workers = self.workers.min(self.shards.len()).max(1);
        if workers == 1 {
            for shard in &mut self.shards {
                shard.advance_core(until, deferred)?;
            }
            return Ok(());
        }
        let chunk_size = self.shards.len().div_ceil(workers);
        let outcome = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(chunk_size)
                .enumerate()
                .map(|(worker, chunk)| {
                    scope.spawn(move |_| {
                        for (offset, shard) in chunk.iter_mut().enumerate() {
                            if let Err(e) = shard.advance_core(until, deferred) {
                                return Some((worker * chunk_size + offset, e));
                            }
                        }
                        None
                    })
                })
                .collect();
            let mut first: Option<(usize, SimError)> = None;
            for handle in handles {
                match handle.join() {
                    Ok(Some((index, e))) => {
                        if first.as_ref().is_none_or(|(i, _)| index < *i) {
                            first = Some((index, e));
                        }
                    }
                    Ok(None) => {}
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            first
        });
        match outcome {
            Ok(None) => Ok(()),
            Ok(Some((_, e))) => Err(e.into()),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Plans and executes this barrier's migrations. Shards are grouped
    /// by scenario identity; within each group [`plan_steals`] runs on
    /// the merged backlog snapshot and the decisions are applied in plan
    /// order (ascending donor/receiver pairs).
    fn execute_steals(&mut self, until: Tick) -> Vec<Transfer> {
        let Some(policy) = self.stealing else { return Vec::new() };
        let mut groups: BTreeMap<(String, u64), Vec<usize>> = BTreeMap::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let key = (shard.scenario.name.clone(), shard.scenario.seed);
            groups.entry(key).or_default().push(index);
        }
        let mut transfers = Vec::new();
        for members in groups.values() {
            if members.len() < 2 {
                continue;
            }
            let loads: Vec<ShardLoad> = members
                .iter()
                .filter_map(|&i| self.shards.get(i))
                .map(|s| ShardLoad {
                    queued: s.admission.queued(),
                    capacity: s.admission.capacity(),
                })
                .collect();
            for decision in plan_steals(&policy, &loads) {
                let (Some(&from), Some(&to)) =
                    (members.get(decision.from), members.get(decision.to))
                else {
                    continue;
                };
                let Some(donor) = self.shards.get_mut(from) else { continue };
                let offers = donor.donate(decision.count, to, until);
                if let Some(receiver) = self.shards.get_mut(to) {
                    receiver.receive(&offers, from, until);
                }
                transfers.push(Transfer { from, to, offers });
            }
        }
        transfers
    }

    /// Empties every shard's event-relay buffer in shard-index order,
    /// feeding telemetry when wired. Draining unconditionally keeps the
    /// buffers from growing without bound on uninstrumented fleets.
    fn drain_relays(&mut self) {
        for shard in &mut self.shards {
            let events = shard.core.hub_mut().take();
            if let Some(telemetry) = &self.telemetry {
                for ev in &events {
                    telemetry.scope_event(&shard.name, ev);
                }
            }
        }
    }

    /// Snapshots every shard at the current clock and trims the replay
    /// log, as [`ServiceDriver::checkpoint_all`].
    ///
    /// [`ServiceDriver::checkpoint_all`]: crate::ServiceDriver::checkpoint_all
    pub fn checkpoint_all(&mut self) {
        let clock = self.clock;
        for shard in &mut self.shards {
            let checkpoint = shard.take_checkpoint(clock);
            let bytes = self
                .telemetry
                .as_ref()
                .map(|_| serde_json::to_string(checkpoint).map_or(0, |json| json.len() as u64));
            if let (Some(telemetry), Some(bytes)) = (&self.telemetry, bytes) {
                telemetry.record_checkpoint(&shard.name, clock, bytes);
            }
        }
        self.has_checkpoint = true;
        self.epoch_log.retain(|e| e.until > clock);
    }

    /// Trims the replay log to boundaries strictly after the oldest live
    /// checkpoint — the same retention contract as
    /// `ServiceDriver::sweep_epoch_log`.
    fn sweep_epoch_log(&mut self) {
        let oldest_live = self
            .shards
            .iter()
            .filter_map(|s| s.last_checkpoint.as_ref().map(|cp| cp.taken_at))
            .min();
        if let Some(oldest) = oldest_live {
            self.epoch_log.retain(|e| e.until > oldest);
        }
    }

    /// Kills shard `index`'s live state, revives it from its last
    /// checkpoint, and replays the recorded epoch boundaries — including
    /// the migrations executed at each barrier, re-applied from the
    /// replay log: the donor side re-releases its queued offers (which
    /// determinism guarantees match the recorded transfer) and the
    /// receiver side re-merges the recorded offers. The revived shard
    /// rejoins the fleet byte-identical to the state that was destroyed,
    /// stealing included. Returns the checkpoint tick it was revived
    /// from.
    ///
    /// Replayed events are re-fed to telemetry (at-least-once counter
    /// semantics, as with the serial driver's re-attached counters).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] for a bad index,
    /// [`ServeError::NoCheckpoint`] if the shard was never checkpointed,
    /// or any restore/replay error.
    pub fn kill_and_restore(&mut self, index: usize) -> Result<Tick, ServeError> {
        let shards = self.shards.len();
        let Some(shard) = self.shards.get_mut(index) else {
            return Err(ServeError::UnknownShard { index, shards });
        };
        let cp = shard
            .last_checkpoint
            .clone()
            .ok_or_else(|| ServeError::NoCheckpoint { shard: shard.name.clone() })?;
        shard.restore_from(&cp)?;
        let revived_at = cp.taken_at;
        let deferred = self.stealing.is_some();
        for entry in &self.epoch_log {
            if entry.until <= revived_at {
                continue;
            }
            shard.advance_core(entry.until, deferred)?;
            for transfer in &entry.transfers {
                if transfer.from == index {
                    let offers = shard.donate(transfer.offers.len(), transfer.to, entry.until);
                    debug_assert_eq!(
                        offers, transfer.offers,
                        "deterministic replay re-released different offers than were recorded"
                    );
                } else if transfer.to == index {
                    shard.receive(&transfer.offers, transfer.from, entry.until);
                }
            }
        }
        let events = shard.core.hub_mut().take();
        if let Some(telemetry) = &self.telemetry {
            for ev in &events {
                telemetry.scope_event(&shard.name, ev);
            }
            telemetry.record_kill_restore(&shard.name, revived_at, self.clock, 0);
        }
        Ok(revived_at)
    }

    /// Advances in fixed `epoch`-sized steps until every shard is idle or
    /// `max_epochs` have run, returning how many epochs ran.
    ///
    /// # Errors
    ///
    /// Any error from [`FleetDriver::advance`].
    pub fn run_until_idle(&mut self, epoch: Tick, max_epochs: usize) -> Result<usize, ServeError> {
        let mut epochs = 0;
        while epochs < max_epochs && !self.is_idle() {
            self.advance(epoch)?;
            epochs += 1;
        }
        Ok(epochs)
    }
}

impl Default for FleetDriver<'_> {
    fn default() -> Self {
        FleetDriver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::BackpressurePolicy;
    use crate::{ServiceDriver, Shard};
    use taskdrop_core::ProactiveDropper;
    use taskdrop_sched::Pam;
    use taskdrop_workload::{BurstySource, DiurnalSource};

    fn assert_send<T: Send>() {}

    #[test]
    fn fleet_shards_are_send() {
        assert_send::<FleetShard<'static>>();
        assert_send::<SimCore<'static, EventRelay>>();
    }

    fn config() -> SimConfig {
        SimConfig { exclude_boundary: 0, ..SimConfig::default() }
    }

    fn bursty() -> TrafficSource {
        TrafficSource::Bursty(BurstySource::new(21, 0.5, 0.0, 400, 900, 350, 12, 220))
    }

    fn diurnal() -> TrafficSource {
        TrafficSource::Diurnal(DiurnalSource::new(33, 0.12, 0.9, 3_000, 450, 12, 180))
    }

    fn fleet_driver<'a>(
        scenario: &'a Scenario,
        dropper: &'a dyn DropPolicy,
        workers: usize,
    ) -> FleetDriver<'a> {
        let mut driver = FleetDriver::new().with_workers(workers).with_checkpoint_every(1_000);
        driver.add_shard(
            FleetShard::new(
                "bursty",
                scenario,
                &Pam,
                dropper,
                config(),
                7,
                bursty(),
                AdmissionController::new(24, BackpressurePolicy::PreDrop { threshold: 0.2 }),
            )
            .unwrap(),
        );
        driver.add_shard(
            FleetShard::new(
                "diurnal",
                scenario,
                &Pam,
                dropper,
                config(),
                8,
                diurnal(),
                AdmissionController::new(16, BackpressurePolicy::ShedOldest),
            )
            .unwrap(),
        );
        driver
    }

    /// The fleet (no stealing) retraces the serial `ServiceDriver` on the
    /// same plan — results, admission stats, and telemetry JSONL all
    /// byte-equal.
    #[test]
    fn fleet_matches_the_serial_driver_without_stealing() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();

        let serial_tel = Telemetry::new();
        let mut serial =
            ServiceDriver::new().with_checkpoint_every(1_000).with_telemetry(&serial_tel);
        serial.add_shard(
            Shard::new(
                "bursty",
                &scenario,
                &Pam,
                &dropper,
                config(),
                7,
                bursty(),
                AdmissionController::new(24, BackpressurePolicy::PreDrop { threshold: 0.2 }),
            )
            .unwrap(),
        );
        serial.add_shard(
            Shard::new(
                "diurnal",
                &scenario,
                &Pam,
                &dropper,
                config(),
                8,
                diurnal(),
                AdmissionController::new(16, BackpressurePolicy::ShedOldest),
            )
            .unwrap(),
        );
        for i in 0..serial.shards().len() {
            let telemetry = serial_tel.clone();
            let shard = serial.shard_mut(i).unwrap();
            shard.attach_telemetry(&telemetry);
        }
        serial.run_until_idle(500, 200).unwrap();
        assert!(serial.is_idle());

        let fleet_tel = Telemetry::new();
        let mut fleet = fleet_driver(&scenario, &dropper, 4).with_telemetry(&fleet_tel);
        fleet.run_until_idle(500, 200).unwrap();
        assert!(fleet.is_idle());

        let serial_results: Vec<TrialResult> =
            serial.shards().iter().map(|s| s.core().result().unwrap()).collect();
        let fleet_results: Vec<TrialResult> =
            fleet.shards().iter().map(|s| s.result().unwrap()).collect();
        assert_eq!(fleet_results, serial_results);
        for (a, b) in fleet.shards().iter().zip(serial.shards()) {
            assert_eq!(a.admission().stats(), b.admission().stats());
        }
        assert_eq!(fleet_tel.jsonl(), serial_tel.jsonl());
    }

    #[test]
    fn stealing_conserves_tasks_and_balances_the_ledger() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();
        // Two shards on the same scenario with very different pressure:
        // the bursty one saturates its tiny queue, the other idles.
        let mut fleet = FleetDriver::new().with_workers(2).with_stealing(StealPolicy {
            saturation: 0.5,
            headroom: 0.9,
            max_per_epoch: 6,
        });
        fleet.add_shard(
            FleetShard::new(
                "hot",
                &scenario,
                &Pam,
                &dropper,
                config(),
                7,
                bursty(),
                AdmissionController::new(8, BackpressurePolicy::Reject),
            )
            .unwrap(),
        );
        fleet.add_shard(
            FleetShard::new(
                "cold",
                &scenario,
                &Pam,
                &dropper,
                config(),
                8,
                TrafficSource::Bursty(BurstySource::new(5, 0.05, 0.0, 600, 1_200, 80, 12, 400)),
                AdmissionController::new(32, BackpressurePolicy::Reject),
            )
            .unwrap(),
        );
        fleet.run_until_idle(400, 300).unwrap();
        assert!(fleet.is_idle());

        let stats: Vec<_> = fleet.shards().iter().map(|s| s.admission().stats()).collect();
        let stolen_out: u64 = stats.iter().map(|s| s.stolen_out).sum();
        let stolen_in: u64 = stats.iter().map(|s| s.stolen_in).sum();
        assert!(stolen_out > 0, "pressure imbalance never triggered a steal");
        assert_eq!(stolen_out, stolen_in, "migrated offers must balance fleet-wide");
        for (shard, s) in fleet.shards().iter().zip(&stats) {
            // Per-shard conservation with migration terms.
            assert_eq!(
                s.offered + s.stolen_in,
                s.admitted + s.turned_away() + s.stolen_out,
                "{} leaked offers",
                shard.name()
            );
            let result = shard.result().unwrap();
            assert!(result.is_conserved());
            assert_eq!(result.total_tasks as u64, s.admitted);
        }
    }

    #[test]
    fn zero_epoch_is_a_typed_error() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();
        let mut fleet = fleet_driver(&scenario, &dropper, 2);
        assert!(matches!(fleet.advance(0), Err(ServeError::InvalidEpoch { delta: 0 })));
    }

    #[test]
    fn kill_and_restore_replays_transfers_exactly() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();
        let policy = StealPolicy { saturation: 0.5, headroom: 0.9, max_per_epoch: 6 };

        let build = |workers: usize| {
            let mut fleet = FleetDriver::new()
                .with_workers(workers)
                .with_checkpoint_every(800)
                .with_stealing(policy);
            fleet.add_shard(
                FleetShard::new(
                    "hot",
                    &scenario,
                    &Pam,
                    &dropper,
                    config(),
                    7,
                    bursty(),
                    AdmissionController::new(8, BackpressurePolicy::Reject),
                )
                .unwrap(),
            );
            fleet.add_shard(
                FleetShard::new(
                    "cold",
                    &scenario,
                    &Pam,
                    &dropper,
                    config(),
                    8,
                    diurnal(),
                    AdmissionController::new(32, BackpressurePolicy::Reject),
                )
                .unwrap(),
            );
            fleet
        };

        let mut straight = build(1);
        straight.run_until_idle(400, 300).unwrap();
        assert!(straight.is_idle());
        let expected: Vec<TrialResult> =
            straight.shards().iter().map(|s| s.result().unwrap()).collect();
        let expected_stats: Vec<_> =
            straight.shards().iter().map(|s| s.admission().stats()).collect();
        assert!(
            expected_stats.iter().any(|s| s.stolen_in + s.stolen_out > 0),
            "plan never stole; the replay test is vacuous"
        );

        let mut disturbed = build(4);
        for _ in 0..7 {
            disturbed.advance(400).unwrap();
        }
        let revived = disturbed.kill_and_restore(0).unwrap();
        assert!(revived < disturbed.clock());
        for _ in 0..3 {
            disturbed.advance(400).unwrap();
        }
        disturbed.kill_and_restore(1).unwrap();
        disturbed.run_until_idle(400, 300).unwrap();
        assert!(disturbed.is_idle());

        let results: Vec<TrialResult> =
            disturbed.shards().iter().map(|s| s.result().unwrap()).collect();
        assert_eq!(results, expected, "kill/restore with stealing diverged");
        let stats: Vec<_> = disturbed.shards().iter().map(|s| s.admission().stats()).collect();
        assert_eq!(stats, expected_stats);
    }
}
