//! Deterministic cross-shard work stealing: the epoch-barrier planner.
//!
//! At every fleet epoch barrier the driver snapshots each shard's ingress
//! backlog and asks [`plan_steals`] what (if anything) should move. The
//! planner is a **pure function of the merged epoch snapshot** — no clocks,
//! no thread identity, no randomness — so the same fleet state always
//! produces the same transfer plan regardless of how many worker threads
//! computed the epoch. That purity is what lets the fleet claim
//! byte-identical output at 1/2/4/8 workers (`tests/fleet_determinism.rs`)
//! and what the proptest invariants in `tests/steal_props.rs` lean on: no
//! task duplicated, no task lost, saturated shards always make progress.
//!
//! The policy mirrors the paper's spirit at the serving layer: a shard
//! whose ingress queue saturates is about to turn work away (or pre-drop
//! it), while a sibling with headroom could still meet those deadlines.
//! Moving queued offers at the barrier is the serving-layer analogue of
//! dropping low-probability tasks — except here the "drop" is a relocation
//! that preserves the chance of an on-time completion.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// When and how aggressively shards exchange queued work at epoch
/// barriers.
///
/// A shard *donates* while its ingress backlog is at or above
/// `saturation × capacity` (rounded up); a shard is *eligible to receive*
/// while its backlog is strictly below `headroom × capacity` (rounded
/// down) and below its capacity. At most `max_per_epoch` tasks leave any
/// one donor per barrier, so a single burst cannot ricochet across the
/// whole fleet in one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StealPolicy {
    /// Donor threshold as a fraction of ingress capacity (`0 < s ≤ 1`).
    pub saturation: f64,
    /// Receiver ceiling as a fraction of ingress capacity (`0 ≤ h ≤ 1`).
    pub headroom: f64,
    /// Hard cap on tasks donated by any one shard per epoch barrier.
    pub max_per_epoch: usize,
}

impl Default for StealPolicy {
    /// Donate when ≥ 90 % full, receive while < 50 % full, at most four
    /// tasks per donor per barrier.
    fn default() -> Self {
        StealPolicy { saturation: 0.9, headroom: 0.5, max_per_epoch: 4 }
    }
}

impl StealPolicy {
    /// Whether the thresholds are usable: `0 < saturation ≤ 1`,
    /// `0 ≤ headroom ≤ 1`, and a non-zero per-epoch budget.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.saturation > 0.0
            && self.saturation <= 1.0
            && self.headroom >= 0.0
            && self.headroom <= 1.0
            && self.max_per_epoch > 0
    }

    /// Donor threshold in queued tasks for a shard with `capacity` ingress
    /// slots: `ceil(saturation × capacity)`, at least 1.
    #[must_use]
    pub fn donor_threshold(&self, capacity: usize) -> usize {
        (((capacity as f64) * self.saturation).ceil() as usize).max(1)
    }

    /// Receiver ceiling in queued tasks for a shard with `capacity`
    /// ingress slots: `floor(headroom × capacity)`.
    #[must_use]
    pub fn receiver_ceiling(&self, capacity: usize) -> usize {
        ((capacity as f64) * self.headroom).floor() as usize
    }
}

/// One shard's ingress load as seen at an epoch barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// Offers currently queued at the shard's admission controller.
    pub queued: usize,
    /// The admission controller's ingress capacity.
    pub capacity: usize,
}

/// One planned transfer: move `count` queued tasks from shard `from` to
/// shard `to` (indices into the load slice handed to [`plan_steals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealDecision {
    /// Donating shard index.
    pub from: usize,
    /// Receiving shard index.
    pub to: usize,
    /// Number of queued tasks to move.
    pub count: usize,
}

/// Plans the epoch's cross-shard transfers from a load snapshot.
///
/// Donors are visited in shard-index order; each donates one task at a
/// time to the eligible receiver with the **lowest load ratio**
/// (`queued / capacity`, compared exactly by integer cross-multiplication
/// so no float rounding can flip a choice), ties broken by lowest shard
/// index. Donation stops when the donor sinks below its saturation
/// threshold, exhausts its per-epoch budget, or no receiver has headroom
/// left. Roles are exclusive within a plan — a shard that donated cannot
/// receive and one that received cannot donate, so a transfer can never
/// ping-pong back in the same barrier. Per-pair moves are accumulated, so
/// the plan lists each `(from, to)` pair at most once, in ascending
/// order.
///
/// The function is deterministic and total: invalid policies (see
/// [`StealPolicy::is_valid`]) and fleets of fewer than two shards plan
/// nothing.
#[must_use]
pub fn plan_steals(policy: &StealPolicy, loads: &[ShardLoad]) -> Vec<StealDecision> {
    if !policy.is_valid() || loads.len() < 2 {
        return Vec::new();
    }
    let mut queued: Vec<usize> = loads.iter().map(|l| l.queued).collect();
    let mut donated = vec![false; loads.len()];
    let mut received = vec![false; loads.len()];
    let mut moves: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for from in 0..loads.len() {
        if received.get(from).copied().unwrap_or(false) {
            continue;
        }
        let Some(&ShardLoad { capacity, .. }) = loads.get(from) else { continue };
        let threshold = policy.donor_threshold(capacity);
        let mut budget = policy.max_per_epoch;
        while budget > 0 && queued.get(from).is_some_and(|&q| q >= threshold) {
            let Some(to) = best_receiver(policy, loads, &queued, &donated, from) else { break };
            if let Some(q) = queued.get_mut(from) {
                *q -= 1;
            }
            if let Some(q) = queued.get_mut(to) {
                *q += 1;
            }
            if let Some(d) = donated.get_mut(from) {
                *d = true;
            }
            if let Some(r) = received.get_mut(to) {
                *r = true;
            }
            *moves.entry((from, to)).or_insert(0) += 1;
            budget -= 1;
        }
    }
    moves.into_iter().map(|((from, to), count)| StealDecision { from, to, count }).collect()
}

/// The eligible receiver with the lowest `queued/capacity` ratio (exact
/// integer comparison), ties to the lowest index; `None` when nobody has
/// headroom. Shards that already donated this barrier are excluded.
fn best_receiver(
    policy: &StealPolicy,
    loads: &[ShardLoad],
    queued: &[usize],
    donated: &[bool],
    from: usize,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (idx, load) in loads.iter().enumerate() {
        if idx == from || load.capacity == 0 || donated.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let q = queued.get(idx).copied().unwrap_or(0);
        if q >= load.capacity || q >= policy.receiver_ceiling(load.capacity) {
            continue;
        }
        match best {
            None => best = Some(idx),
            Some(b) => {
                let bq = queued.get(b).copied().unwrap_or(0);
                let bcap = loads.get(b).map_or(1, |l| l.capacity);
                // q/cap < bq/bcap  ⇔  q·bcap < bq·cap (all non-negative).
                if (q as u128) * (bcap as u128) < (bq as u128) * (load.capacity as u128) {
                    best = Some(idx);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(queued: usize, capacity: usize) -> ShardLoad {
        ShardLoad { queued, capacity }
    }

    #[test]
    fn nothing_moves_below_saturation() {
        let policy = StealPolicy::default();
        // 8/10 is below the 0.9 threshold (ceil(9)).
        let plan = plan_steals(&policy, &[load(8, 10), load(0, 10)]);
        assert!(plan.is_empty());
    }

    #[test]
    fn saturated_donor_sheds_into_idle_receiver() {
        let policy = StealPolicy { saturation: 0.5, headroom: 0.5, max_per_epoch: 10 };
        // Donor at 10/10, threshold 5: donates until below 5 or receiver
        // hits its ceiling (floor(0.5·10) = 5). Receiver takes 5, donor
        // then sits at 5 which is still ≥ threshold but nobody has
        // headroom left.
        let plan = plan_steals(&policy, &[load(10, 10), load(0, 10)]);
        assert_eq!(plan, vec![StealDecision { from: 0, to: 1, count: 5 }]);
    }

    #[test]
    fn per_epoch_budget_caps_donation() {
        let policy = StealPolicy { saturation: 0.5, headroom: 0.9, max_per_epoch: 2 };
        let plan = plan_steals(&policy, &[load(10, 10), load(0, 10)]);
        assert_eq!(plan, vec![StealDecision { from: 0, to: 1, count: 2 }]);
    }

    #[test]
    fn receiver_choice_is_lowest_ratio_then_lowest_index() {
        let policy = StealPolicy { saturation: 0.5, headroom: 1.0, max_per_epoch: 1 };
        // Ratios: shard1 2/8 = 0.25, shard2 1/5 = 0.20 → shard2 wins.
        let plan = plan_steals(&policy, &[load(10, 10), load(2, 8), load(1, 5)]);
        assert_eq!(plan, vec![StealDecision { from: 0, to: 2, count: 1 }]);
        // Exact ties (1/5 vs 2/10) go to the lower index.
        let plan = plan_steals(&policy, &[load(10, 10), load(1, 5), load(2, 10)]);
        assert_eq!(plan, vec![StealDecision { from: 0, to: 1, count: 1 }]);
    }

    #[test]
    fn receivers_never_overfill() {
        let policy = StealPolicy { saturation: 0.8, headroom: 1.0, max_per_epoch: 100 };
        // Donor thresholds: 8 for the 10-slot shard (donor), 4 for the
        // 4-slot shard (not a donor at 3). Receiver had 3/4: exactly one
        // slot of headroom.
        let loads = [load(10, 10), load(3, 4)];
        let plan = plan_steals(&policy, &loads);
        assert_eq!(plan, vec![StealDecision { from: 0, to: 1, count: 1 }]);
    }

    #[test]
    fn invalid_policy_or_single_shard_plans_nothing() {
        let bad = StealPolicy { saturation: 0.0, ..StealPolicy::default() };
        assert!(plan_steals(&bad, &[load(10, 10), load(0, 10)]).is_empty());
        let zero_budget = StealPolicy { max_per_epoch: 0, ..StealPolicy::default() };
        assert!(plan_steals(&zero_budget, &[load(10, 10), load(0, 10)]).is_empty());
        assert!(plan_steals(&StealPolicy::default(), &[load(10, 10)]).is_empty());
    }

    #[test]
    fn planning_is_a_pure_function_of_the_snapshot() {
        let policy = StealPolicy { saturation: 0.6, headroom: 0.8, max_per_epoch: 3 };
        let loads = [load(9, 10), load(2, 10), load(7, 8), load(0, 6)];
        let first = plan_steals(&policy, &loads);
        for _ in 0..10 {
            assert_eq!(first, plan_steals(&policy, &loads));
        }
        // Conservation inside the plan itself: total moved out == total
        // moved in, and no donor exceeds its budget.
        let mut out = vec![0usize; loads.len()];
        let mut inn = vec![0usize; loads.len()];
        for d in &first {
            out[d.from] += d.count;
            inn[d.to] += d.count;
        }
        assert_eq!(out.iter().sum::<usize>(), inn.iter().sum::<usize>());
        assert!(out.iter().all(|&o| o <= policy.max_per_epoch));
    }
}
