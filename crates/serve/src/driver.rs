//! The service event loop: many shards, one virtual clock.

use crate::shard::Shard;
use crate::ServeError;
use taskdrop_obs::{EpochRecord, Telemetry};
use taskdrop_pmf::Tick;

/// Multiplexes independent [`Shard`]s — one per tenant or cluster —
/// against a shared virtual clock, in fixed *epochs*: each
/// [`ServiceDriver::advance`] call moves every shard from the current
/// clock to `clock + delta` (feed arrivals → admission → inject → run).
///
/// With a checkpoint interval configured, the driver snapshots every shard
/// periodically, and [`ServiceDriver::kill_and_restore`] can discard a
/// shard's live state mid-flight and revive it from its last checkpoint.
/// The revived shard is *caught back up* by replaying the recorded epoch
/// boundaries, and because every layer is deterministic (keyed RNG draws,
/// serialized cursors, epoch-granular admission), the replay reproduces
/// the killed shard's state exactly — service continues as if nothing had
/// happened (asserted by this module's tests).
pub struct ServiceDriver<'a> {
    shards: Vec<Shard<'a>>,
    clock: Tick,
    checkpoint_every: Option<Tick>,
    next_checkpoint: Tick,
    /// Whether any checkpoint sweep has happened yet; until one has, the
    /// replay log below would be useless (restore has nothing to start
    /// from) and is not kept, so a never-checkpointing driver does not
    /// accumulate boundaries forever.
    has_checkpoint: bool,
    /// Epoch boundaries still needed for catch-up replay, oldest first —
    /// the replay schedule for [`ServiceDriver::kill_and_restore`].
    /// Bounded by the retention contract of `sweep_epoch_log`, which runs
    /// after every epoch: only boundaries strictly after the oldest live
    /// checkpoint are kept, so the log never outgrows the interval since
    /// the most stale shard's last checkpoint — even when periodic
    /// checkpointing is off and snapshots are taken manually per shard.
    epoch_log: Vec<Tick>,
    /// Telemetry pipeline for epoch records, checkpoint cost, and
    /// kill/restore records. `None` (the default) is the zero-cost
    /// disabled path: no records, no serialization, no allocation.
    telemetry: Option<Telemetry>,
}

impl std::fmt::Debug for ServiceDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceDriver")
            .field("shards", &self.shards)
            .field("clock", &self.clock)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("next_checkpoint", &self.next_checkpoint)
            .field("has_checkpoint", &self.has_checkpoint)
            .field("epoch_log_len", &self.epoch_log.len())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl<'a> ServiceDriver<'a> {
    /// An empty driver at clock 0 with no automatic checkpoints.
    #[must_use]
    pub fn new() -> Self {
        ServiceDriver {
            shards: Vec::new(),
            clock: 0,
            checkpoint_every: None,
            next_checkpoint: 0,
            has_checkpoint: false,
            epoch_log: Vec::new(),
            telemetry: None,
        }
    }

    /// Enables periodic checkpoints: after each epoch that reaches or
    /// passes the next multiple of `interval`, every shard is snapshotted.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn with_checkpoint_every(mut self, interval: Tick) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpoint_every = Some(interval);
        self.next_checkpoint = self.clock + interval;
        self
    }

    /// Wires a [`Telemetry`] pipeline into the driver's own lifecycle:
    /// one `epoch` record (with per-shard backlog and admission totals)
    /// and a time-series sample per [`ServiceDriver::advance`], a
    /// `checkpoint` record with the serialized byte cost per shard per
    /// sweep, and a `kill_restore` record per revival. Per-shard event
    /// counters are separate — see [`Shard::attach_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// Adds a shard and returns its index.
    pub fn add_shard(&mut self, shard: Shard<'a>) -> usize {
        self.shards.push(shard);
        self.shards.len() - 1
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> Tick {
        self.clock
    }

    /// All shards, in add order.
    #[must_use]
    pub fn shards(&self) -> &[Shard<'a>] {
        &self.shards
    }

    /// Mutable access to one shard (e.g. to attach observers).
    pub fn shard_mut(&mut self, index: usize) -> Option<&mut Shard<'a>> {
        self.shards.get_mut(index)
    }

    /// Whether every shard is idle (sources exhausted, ingress empty,
    /// cores drained).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.shards.iter().all(Shard::is_idle)
    }

    /// Runs one epoch: advances every shard to `clock + delta`, then takes
    /// the periodic checkpoints if one is due. Returns the new clock.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidEpoch`] if `delta` is zero (an epoch must
    /// advance the clock); otherwise the first shard error encountered.
    /// The clock is not advanced past a failing epoch.
    pub fn advance(&mut self, delta: Tick) -> Result<Tick, ServeError> {
        if delta == 0 {
            return Err(ServeError::InvalidEpoch { delta });
        }
        let until = self.clock + delta;
        for shard in &mut self.shards {
            shard.advance_to(until)?;
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_epoch(&EpochRecord {
                record: "epoch".to_string(),
                from: self.clock,
                to: until,
                shards: self.shards.iter().map(Shard::epoch_snapshot).collect(),
            });
        }
        self.clock = until;
        if self.has_checkpoint {
            self.epoch_log.push(until);
            self.sweep_epoch_log();
        }
        if let Some(interval) = self.checkpoint_every {
            if self.clock >= self.next_checkpoint {
                self.checkpoint_all();
                while self.next_checkpoint <= self.clock {
                    self.next_checkpoint += interval;
                }
            }
        }
        Ok(self.clock)
    }

    /// Snapshots every shard at the current clock and trims the replay log
    /// (boundaries at or before a fresh checkpoint can never be needed
    /// again).
    pub fn checkpoint_all(&mut self) {
        let clock = self.clock;
        for shard in &mut self.shards {
            let checkpoint = shard.take_checkpoint(clock);
            // Measuring checkpoint cost means serializing it — only paid
            // when telemetry is wired in, so the disabled path is free.
            let bytes = self
                .telemetry
                .as_ref()
                .map(|_| serde_json::to_string(checkpoint).map_or(0, |json| json.len() as u64));
            if let (Some(telemetry), Some(bytes)) = (&self.telemetry, bytes) {
                telemetry.record_checkpoint(shard.name(), clock, bytes);
            }
        }
        self.has_checkpoint = true;
        self.epoch_log.retain(|&t| t > clock);
    }

    /// Trims the replay log to what a restore could still need.
    ///
    /// **Retention contract:** a revived shard replays the boundaries
    /// strictly after its own checkpoint tick, so any boundary at or
    /// before the *oldest live checkpoint* across the fleet can never be
    /// consulted again and is dropped. Run after every epoch, this bounds
    /// the log even when periodic checkpointing is off and sweeps happen
    /// only through manual per-shard [`Shard::take_checkpoint`] calls: the
    /// log holds at most the boundaries since the most stale shard's last
    /// checkpoint. A shard with *no* checkpoint pins nothing (it cannot be
    /// restored at all — [`ServeError::NoCheckpoint`]).
    fn sweep_epoch_log(&mut self) {
        let oldest_live =
            self.shards.iter().filter_map(|s| s.last_checkpoint().map(|cp| cp.taken_at)).min();
        if let Some(oldest) = oldest_live {
            self.epoch_log.retain(|&t| t > oldest);
        }
    }

    /// Kills shard `index`'s live state, revives it from its last
    /// checkpoint, and replays the epochs between that checkpoint and the
    /// current clock so the shard rejoins the fleet fully caught up.
    /// Determinism makes the catch-up byte-identical to the lost state.
    /// Returns the tick of the checkpoint it was revived from.
    ///
    /// Observers attached to the killed shard are gone; re-attach via
    /// [`ServiceDriver::shard_mut`] if needed (they will not re-see the
    /// replayed interval's events).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] for a bad index,
    /// [`ServeError::NoCheckpoint`] if the shard was never checkpointed,
    /// or any restore/replay error.
    pub fn kill_and_restore(&mut self, index: usize) -> Result<Tick, ServeError> {
        let shards = self.shards.len();
        let shard = self.shards.get_mut(index).ok_or(ServeError::UnknownShard { index, shards })?;
        let revived_at = shard.restore_last()?;
        for &boundary in self.epoch_log.iter().filter(|&&t| t > revived_at) {
            shard.advance_to(boundary)?;
        }
        if let Some(telemetry) = &self.telemetry {
            let post_mortem = shard.post_mortem().map_or(0, |snap| snap.events.len() as u64);
            telemetry.record_kill_restore(shard.name(), revived_at, self.clock, post_mortem);
        }
        Ok(revived_at)
    }

    /// Advances in fixed `epoch`-sized steps until every shard is idle or
    /// `max_epochs` have run, returning how many epochs ran. Callers that
    /// need a guarantee should check [`ServiceDriver::is_idle`] after.
    ///
    /// # Errors
    ///
    /// Any error from [`ServiceDriver::advance`].
    pub fn run_until_idle(&mut self, epoch: Tick, max_epochs: usize) -> Result<usize, ServeError> {
        let mut epochs = 0;
        while epochs < max_epochs && !self.is_idle() {
            self.advance(epoch)?;
            epochs += 1;
        }
        Ok(epochs)
    }
}

impl Default for ServiceDriver<'_> {
    fn default() -> Self {
        ServiceDriver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionController, BackpressurePolicy};
    use taskdrop_core::{DropPolicy, ProactiveDropper, ReactiveOnly};
    use taskdrop_sched::Pam;
    use taskdrop_sim::{SimConfig, TrialResult};
    use taskdrop_workload::{BurstySource, DiurnalSource, Scenario, TrafficSource};

    fn config() -> SimConfig {
        SimConfig { exclude_boundary: 0, ..SimConfig::default() }
    }

    fn bursty() -> TrafficSource {
        TrafficSource::Bursty(BurstySource::new(21, 0.5, 0.0, 400, 900, 350, 12, 220))
    }

    fn diurnal() -> TrafficSource {
        TrafficSource::Diurnal(DiurnalSource::new(33, 0.12, 0.9, 3_000, 450, 12, 180))
    }

    /// Builds the two-shard fleet every test drives.
    fn fleet<'a>(
        scenario: &'a Scenario,
        dropper: &'a dyn DropPolicy,
        checkpoint_every: Option<Tick>,
    ) -> ServiceDriver<'a> {
        let mut driver = match checkpoint_every {
            Some(i) => ServiceDriver::new().with_checkpoint_every(i),
            None => ServiceDriver::new(),
        };
        driver.add_shard(
            Shard::new(
                "bursty",
                scenario,
                &Pam,
                dropper,
                config(),
                7,
                bursty(),
                AdmissionController::new(24, BackpressurePolicy::PreDrop { threshold: 0.2 }),
            )
            .unwrap(),
        );
        driver.add_shard(
            Shard::new(
                "diurnal",
                scenario,
                &Pam,
                dropper,
                config(),
                8,
                diurnal(),
                AdmissionController::new(16, BackpressurePolicy::ShedOldest),
            )
            .unwrap(),
        );
        driver
    }

    fn results(driver: &ServiceDriver<'_>) -> Vec<TrialResult> {
        driver.shards().iter().map(|s| s.core().result().expect("idle => drained")).collect()
    }

    #[test]
    fn fleet_serves_to_idle_and_conserves_every_shard() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();
        let mut driver = fleet(&scenario, &dropper, None);
        driver.run_until_idle(500, 200).unwrap();
        assert!(driver.is_idle(), "fleet failed to drain within the epoch budget");
        for (shard, result) in driver.shards().iter().zip(results(&driver)) {
            assert!(result.is_conserved(), "{} lost tasks", shard.name());
            let stats = shard.admission().stats();
            assert_eq!(stats.offered, stats.admitted + stats.turned_away());
            assert_eq!(result.total_tasks as u64, stats.admitted);
        }
    }

    #[test]
    fn kill_and_restore_mid_flight_changes_nothing() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();

        let mut straight = fleet(&scenario, &dropper, Some(1_000));
        straight.run_until_idle(500, 200).unwrap();
        assert!(straight.is_idle());
        let expected = results(&straight);
        let expected_stats: Vec<_> =
            straight.shards().iter().map(|s| s.admission().stats()).collect();

        let mut disturbed = fleet(&scenario, &dropper, Some(1_000));
        for _ in 0..5 {
            disturbed.advance(500).unwrap();
        }
        // Kill both shards at different points; each rewinds to its last
        // periodic checkpoint and is replayed back to the fleet clock.
        let revived = disturbed.kill_and_restore(0).unwrap();
        assert!(revived < disturbed.clock());
        for _ in 0..3 {
            disturbed.advance(500).unwrap();
        }
        disturbed.kill_and_restore(1).unwrap();
        disturbed.run_until_idle(500, 200).unwrap();
        assert!(disturbed.is_idle());

        assert_eq!(results(&disturbed), expected, "kill/restore diverged from straight run");
        let stats: Vec<_> = disturbed.shards().iter().map(|s| s.admission().stats()).collect();
        assert_eq!(stats, expected_stats);
    }

    #[test]
    fn shard_checkpoint_survives_serde_and_revives_elsewhere() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();
        let mut driver = fleet(&scenario, &dropper, None);
        for _ in 0..4 {
            driver.advance(400).unwrap();
        }
        driver.checkpoint_all();
        let json = serde_json::to_string(driver.shards()[0].last_checkpoint().unwrap()).unwrap();

        // Finish the original fleet.
        driver.run_until_idle(400, 200).unwrap();
        let expected = results(&driver)[0].clone();

        // Revive shard 0 from the serialized checkpoint in a *fresh* shard
        // and drive it alone to completion.
        let cp: crate::ShardCheckpoint = serde_json::from_str(&json).unwrap();
        let mut revived = Shard::new(
            "revived",
            &scenario,
            &Pam,
            &dropper,
            config(),
            7,
            bursty(),
            AdmissionController::new(24, BackpressurePolicy::PreDrop { threshold: 0.2 }),
        )
        .unwrap();
        revived.restore_from(&cp).unwrap();
        let mut until = cp.taken_at;
        while !revived.is_idle() {
            until += 400;
            revived.advance_to(until).unwrap();
        }
        assert_eq!(revived.core().result().unwrap(), expected);
    }

    #[test]
    fn zero_epoch_is_a_typed_error() {
        let scenario = Scenario::specint(3);
        let mut driver = fleet(&scenario, &ReactiveOnly, None);
        driver.advance(300).unwrap();
        assert!(matches!(driver.advance(0), Err(ServeError::InvalidEpoch { delta: 0 })));
        assert_eq!(driver.clock(), 300, "a rejected epoch must not move the clock");
    }

    #[test]
    fn replay_log_is_bounded_by_the_oldest_live_checkpoint() {
        let scenario = Scenario::specint(3);
        let dropper = ProactiveDropper::paper_default();
        // No periodic checkpointing: retention is driven entirely by the
        // per-epoch sweep against manually taken checkpoints.
        let mut driver = fleet(&scenario, &dropper, None);
        driver.advance(200).unwrap();
        driver.checkpoint_all();
        for _ in 0..5 {
            driver.advance(200).unwrap();
        }
        // All five boundaries are after the only checkpoint (t=200): every
        // one could still be needed for a replay, so all are retained.
        assert_eq!(driver.epoch_log.len(), 5);
        // Fresh per-shard snapshots advance the oldest live checkpoint;
        // the next epoch's sweep drops everything at or before it.
        let clock = driver.clock();
        for index in 0..driver.shards().len() {
            driver.shard_mut(index).unwrap().take_checkpoint(clock);
        }
        driver.advance(200).unwrap();
        assert_eq!(
            driver.epoch_log.len(),
            1,
            "boundaries at or below the oldest live checkpoint must be swept"
        );
        // A revive still works off the trimmed log.
        driver.kill_and_restore(0).unwrap();
        driver.run_until_idle(200, 400).unwrap();
        assert!(driver.is_idle());
    }

    #[test]
    fn kill_without_checkpoint_is_a_typed_error() {
        let scenario = Scenario::specint(3);
        let mut driver = fleet(&scenario, &ReactiveOnly, None);
        driver.advance(300).unwrap();
        assert!(matches!(driver.kill_and_restore(0), Err(ServeError::NoCheckpoint { .. })));
        assert!(matches!(
            driver.kill_and_restore(9),
            Err(ServeError::UnknownShard { index: 9, shards: 2 })
        ));
    }
}
