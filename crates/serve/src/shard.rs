//! One serving shard: a traffic source feeding an admission controller
//! feeding a [`SimCore`], with wholesale checkpoint/restore.

use crate::admission::{AdmissionController, BackpressurePolicy, QueueTails};
use serde::{Deserialize, Serialize};
use taskdrop_core::DropPolicy;
use taskdrop_pmf::Tick;
use taskdrop_sched::MappingHeuristic;
use taskdrop_sim::{Checkpoint, SimConfig, SimCore, SimError, SimObserver, StepOutcome};
use taskdrop_workload::{Scenario, TrafficSource};

/// Everything needed to rebuild a shard mid-flight: the core's
/// [`Checkpoint`] plus the serving-side state the core knows nothing about
/// — the traffic source's cursor and the admission controller (queued
/// offers and counters). Serde-serializable as a whole, so a shard can be
/// persisted, shipped, and revived elsewhere against the same scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// Driver clock at which the checkpoint was taken.
    pub taken_at: Tick,
    /// The engine state.
    pub core: Checkpoint,
    /// The traffic source, frozen at its stream position.
    pub source: TrafficSource,
    /// The admission controller (policy, queued offers, accounting).
    pub admission: AdmissionController,
}

/// One independent tenant/cluster in a [`ServiceDriver`]: an open-world
/// [`SimCore`] plus its ingress pipeline.
///
/// The shard borrows its scenario and policies (the same borrows a bare
/// `SimCore` takes); everything it *owns* is serializable state, which is
/// what makes [`Shard::take_checkpoint`] / [`Shard::restore_last`] total.
///
/// [`ServiceDriver`]: crate::ServiceDriver
pub struct Shard<'a> {
    name: String,
    scenario: &'a Scenario,
    mapper: &'a dyn MappingHeuristic,
    dropper: &'a dyn DropPolicy,
    core: SimCore<'a>,
    source: TrafficSource,
    admission: AdmissionController,
    last_checkpoint: Option<ShardCheckpoint>,
}

impl<'a> Shard<'a> {
    /// Assembles a shard around a fresh open-world core.
    ///
    /// # Errors
    ///
    /// Any configuration error from [`SimCore::open`].
    #[allow(clippy::too_many_arguments)] // one borrow per collaborating piece
    pub fn new(
        name: impl Into<String>,
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
        source: TrafficSource,
        admission: AdmissionController,
    ) -> Result<Self, SimError> {
        let core = SimCore::open(scenario, mapper, dropper, config, exec_seed)?;
        Ok(Shard {
            name: name.into(),
            scenario,
            mapper,
            dropper,
            core,
            source,
            admission,
            last_checkpoint: None,
        })
    }

    /// The shard's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying core (read-only).
    #[must_use]
    pub fn core(&self) -> &SimCore<'a> {
        &self.core
    }

    /// The admission controller (read-only; offers flow in via
    /// [`Shard::advance_to`]).
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The traffic source (read-only).
    #[must_use]
    pub fn source(&self) -> &TrafficSource {
        &self.source
    }

    /// The most recent checkpoint, if one was taken.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<&ShardCheckpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Attaches a streaming observer to the core. Observers are **not**
    /// part of checkpoints — re-attach after a restore.
    pub fn attach(&mut self, observer: impl SimObserver + 'a) {
        self.core.attach(observer);
    }

    /// Advances the shard's slice of virtual time to `until`: offers every
    /// source arrival due by then to the admission controller, injects the
    /// admitted ones, and runs the core. Admission decisions for the whole
    /// epoch are made against the queue state at its start — the
    /// granularity a real front-end batches at — so under a pre-drop
    /// policy the machine queue tails are captured once per epoch and
    /// shared across the offer batch (identical decisions, far fewer chain
    /// convolutions).
    ///
    /// # Errors
    ///
    /// Any error from [`AdmissionController::drain_due`].
    pub fn advance_to(&mut self, until: Tick) -> Result<StepOutcome, SimError> {
        let mut tails: Option<QueueTails> = None;
        while let Some(next) = self.source.peek() {
            if next.arrival > until {
                break;
            }
            let task = self.source.pop().expect("peeked offer");
            if tails.is_none()
                && matches!(self.admission.policy(), BackpressurePolicy::PreDrop { .. })
            {
                tails = Some(QueueTails::capture(&mut self.core));
            }
            match &mut tails {
                Some(t) => self.admission.offer_with(task, &mut self.core, t),
                None => self.admission.offer(task, &mut self.core),
            };
        }
        self.admission.drain_due(&mut self.core, until)?;
        Ok(self.core.run_until(until))
    }

    /// Snapshots the complete shard state (core + source + admission) and
    /// remembers it as the restore point.
    pub fn take_checkpoint(&mut self, taken_at: Tick) -> &ShardCheckpoint {
        let cp = ShardCheckpoint {
            taken_at,
            core: self.core.snapshot(),
            source: self.source.clone(),
            admission: self.admission.clone(),
        };
        self.last_checkpoint = Some(cp);
        self.last_checkpoint.as_ref().expect("just stored")
    }

    /// Discards the live state and rebuilds the shard from `checkpoint`
    /// (scenario and policies are the shard's own borrows — the checkpoint
    /// must match them). Attached observers are dropped, and `checkpoint`
    /// becomes the shard's restore point: the previous `last_checkpoint`
    /// belonged to the timeline just discarded, so a later
    /// [`Shard::restore_last`] must not revive it.
    ///
    /// # Errors
    ///
    /// Any validation error from [`SimCore::restore`]; on error the live
    /// state and restore point are unchanged.
    pub fn restore_from(&mut self, checkpoint: &ShardCheckpoint) -> Result<(), SimError> {
        self.core = SimCore::restore(self.scenario, self.mapper, self.dropper, &checkpoint.core)?;
        self.source = checkpoint.source.clone();
        self.admission = checkpoint.admission.clone();
        self.last_checkpoint = Some(checkpoint.clone());
        Ok(())
    }

    /// Kills the live state and rewinds to the last
    /// [`Shard::take_checkpoint`], returning the tick it was taken at.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::NoCheckpoint`] if none was ever taken; any
    /// [`SimError`] from [`Shard::restore_from`].
    pub fn restore_last(&mut self) -> Result<Tick, crate::ServeError> {
        let cp = self
            .last_checkpoint
            .clone()
            .ok_or_else(|| crate::ServeError::NoCheckpoint { shard: self.name.clone() })?;
        self.restore_from(&cp)?;
        Ok(cp.taken_at)
    }

    /// Whether the shard has nothing left to do: the source is exhausted,
    /// the ingress queue is empty, and every admitted task has a fate.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.source.is_exhausted() && self.admission.queued() == 0 && self.core.is_drained()
    }
}

impl std::fmt::Debug for Shard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("name", &self.name)
            .field("scenario", &self.scenario.name)
            .field("now", &self.core.now())
            .field("total_tasks", &self.core.total_tasks())
            .field("resolved_tasks", &self.core.resolved_tasks())
            .field("ingress_queued", &self.admission.queued())
            .finish_non_exhaustive()
    }
}
