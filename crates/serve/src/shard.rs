//! One serving shard: a traffic source feeding an admission controller
//! feeding a [`SimCore`], with wholesale checkpoint/restore.

use crate::admission::{AdmissionController, BackpressurePolicy, QueueTails};
use serde::{Deserialize, Serialize};
use taskdrop_core::DropPolicy;
use taskdrop_obs::{FlightRecorder, FlightSnapshot, ShardEpoch, Telemetry};
use taskdrop_pmf::Tick;
use taskdrop_sched::MappingHeuristic;
use taskdrop_sim::{
    Checkpoint, ObserverHub, SimConfig, SimCore, SimError, SimObserver, StepOutcome,
};
use taskdrop_workload::{Scenario, TrafficSource};

/// Advances one shard's slice of virtual time to `until`: offers every
/// source arrival due by then to the admission controller, injects the
/// admitted ones, and runs the core. Admission decisions for the whole
/// epoch are made against the queue state at its start — the granularity a
/// real front-end batches at — so under a pre-drop policy the machine
/// queue tails are captured once per epoch and shared across the offer
/// batch (identical decisions, far fewer chain convolutions).
///
/// Generic over the core's [`ObserverHub`] so both [`Shard`] (boxed
/// observers, single-threaded) and the fleet's relay-hubbed shards
/// ([`crate::FleetShard`]) share the exact same ingress pipeline — which
/// is what makes the fleet's per-shard trajectories identical to a serial
/// [`crate::ServiceDriver`] run of the same plan.
///
/// # Errors
///
/// Any error from [`AdmissionController::drain_due`].
pub(crate) fn advance_shard_to<H: ObserverHub>(
    source: &mut TrafficSource,
    admission: &mut AdmissionController,
    core: &mut SimCore<'_, H>,
    until: Tick,
) -> Result<StepOutcome, SimError> {
    let mut tails: Option<QueueTails> = None;
    while source.peek().is_some_and(|next| next.arrival <= until) {
        let Some(task) = source.pop() else { break };
        if tails.is_none() && matches!(admission.policy(), BackpressurePolicy::PreDrop { .. }) {
            tails = Some(QueueTails::capture(core));
        }
        match &mut tails {
            Some(t) => admission.offer_with(task, core, t),
            None => admission.offer(task, core),
        };
    }
    admission.drain_due(core, until)?;
    Ok(core.run_until(until))
}

/// Everything needed to rebuild a shard mid-flight: the core's
/// [`Checkpoint`] plus the serving-side state the core knows nothing about
/// — the traffic source's cursor and the admission controller (queued
/// offers and counters). Serde-serializable as a whole, so a shard can be
/// persisted, shipped, and revived elsewhere against the same scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// Driver clock at which the checkpoint was taken.
    pub taken_at: Tick,
    /// The engine state.
    pub core: Checkpoint,
    /// The traffic source, frozen at its stream position.
    pub source: TrafficSource,
    /// The admission controller (policy, queued offers, accounting).
    pub admission: AdmissionController,
    /// The flight recorder's contents at checkpoint time, if one was
    /// attached (absent in checkpoints from older builds — `default`
    /// keeps them loading).
    #[serde(default)]
    pub flight: Option<FlightSnapshot>,
}

/// One independent tenant/cluster in a [`ServiceDriver`]: an open-world
/// [`SimCore`] plus its ingress pipeline.
///
/// The shard borrows its scenario and policies (the same borrows a bare
/// `SimCore` takes); everything it *owns* is serializable state, which is
/// what makes [`Shard::take_checkpoint`] / [`Shard::restore_last`] total.
///
/// [`ServiceDriver`]: crate::ServiceDriver
pub struct Shard<'a> {
    name: String,
    scenario: &'a Scenario,
    mapper: &'a dyn MappingHeuristic,
    dropper: &'a dyn DropPolicy,
    core: SimCore<'a>,
    source: TrafficSource,
    admission: AdmissionController,
    last_checkpoint: Option<ShardCheckpoint>,
    /// Bounded ring of recent engine events; checkpointed and revived
    /// with the shard ([`Shard::enable_flight_recorder`]).
    flight: Option<FlightRecorder>,
    /// The pre-kill flight-recorder contents, kept across the most
    /// recent [`Shard::restore_from`] as the crash post-mortem.
    post_mortem: Option<FlightSnapshot>,
    /// Telemetry pipeline to re-attach after restores
    /// ([`Shard::attach_telemetry`]).
    telemetry: Option<Telemetry>,
}

impl<'a> Shard<'a> {
    /// Assembles a shard around a fresh open-world core.
    ///
    /// # Errors
    ///
    /// Any configuration error from [`SimCore::open`].
    #[allow(clippy::too_many_arguments)] // one borrow per collaborating piece
    pub fn new(
        name: impl Into<String>,
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
        config: SimConfig,
        exec_seed: u64,
        source: TrafficSource,
        admission: AdmissionController,
    ) -> Result<Self, SimError> {
        let core = SimCore::open(scenario, mapper, dropper, config, exec_seed)?;
        Ok(Shard {
            name: name.into(),
            scenario,
            mapper,
            dropper,
            core,
            source,
            admission,
            last_checkpoint: None,
            flight: None,
            post_mortem: None,
            telemetry: None,
        })
    }

    /// The shard's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying core (read-only).
    #[must_use]
    pub fn core(&self) -> &SimCore<'a> {
        &self.core
    }

    /// The admission controller (read-only; offers flow in via
    /// [`Shard::advance_to`]).
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The traffic source (read-only).
    #[must_use]
    pub fn source(&self) -> &TrafficSource {
        &self.source
    }

    /// The most recent checkpoint, if one was taken.
    #[must_use]
    pub fn last_checkpoint(&self) -> Option<&ShardCheckpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Attaches a streaming observer to the core. Observers are **not**
    /// part of checkpoints — re-attach after a restore.
    pub fn attach(&mut self, observer: impl SimObserver + 'a) {
        self.core.attach(observer);
    }

    /// Attaches a bounded [`FlightRecorder`] of the most recent `capacity`
    /// engine events and returns a handle to it. Unlike plain observers
    /// the recorder is managed: its contents ride in every
    /// [`ShardCheckpoint`], and [`Shard::restore_from`] revives it to the
    /// checkpointed contents (keeping the pre-kill buffer aside as
    /// [`Shard::post_mortem`]) so a deterministic replay reproduces the
    /// undisturbed buffer exactly.
    ///
    /// # Panics
    ///
    /// Panics if a recorder is already attached, or `capacity` is zero.
    pub fn enable_flight_recorder(&mut self, capacity: usize) -> FlightRecorder {
        assert!(self.flight.is_none(), "shard {} already has a flight recorder", self.name);
        let recorder = FlightRecorder::new(capacity);
        self.core.attach(recorder.clone());
        self.flight = Some(recorder.clone());
        recorder
    }

    /// The attached flight recorder, if any.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The flight-recorder contents captured from the timeline the most
    /// recent [`Shard::restore_from`] destroyed — the crash post-mortem.
    #[must_use]
    pub fn post_mortem(&self) -> Option<&FlightSnapshot> {
        self.post_mortem.as_ref()
    }

    /// Wires a [`Telemetry`] pipeline into the core under this shard's
    /// name as scope (counters, spans, histograms — no rollup, since a
    /// restore's catch-up replay re-counts events at-least-once, which an
    /// exactly-once fate rollup cannot tolerate). Managed like the flight
    /// recorder: re-attached automatically after every restore.
    ///
    /// # Panics
    ///
    /// Panics if telemetry is already attached.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        assert!(self.telemetry.is_none(), "shard {} already has telemetry", self.name);
        telemetry.attach_counters(&mut self.core, &self.name);
        self.telemetry = Some(telemetry.clone());
    }

    /// Cumulative serving numbers for telemetry epoch records.
    #[must_use]
    pub fn epoch_snapshot(&self) -> ShardEpoch {
        let stats = self.admission.stats();
        ShardEpoch {
            shard: self.name.clone(),
            backlog: self.admission.queued() as u64,
            offered: stats.offered,
            admitted: stats.admitted,
            turned_away: stats.turned_away(),
            total_tasks: self.core.total_tasks() as u64,
            resolved_tasks: self.core.resolved_tasks() as u64,
            stolen_in: stats.stolen_in,
            stolen_out: stats.stolen_out,
        }
    }

    /// Advances the shard's slice of virtual time to `until`: offers every
    /// source arrival due by then to the admission controller, injects the
    /// admitted ones, and runs the core. Admission decisions for the whole
    /// epoch are made against the queue state at its start — the
    /// granularity a real front-end batches at — so under a pre-drop
    /// policy the machine queue tails are captured once per epoch and
    /// shared across the offer batch (identical decisions, far fewer chain
    /// convolutions).
    ///
    /// # Errors
    ///
    /// Any error from [`AdmissionController::drain_due`].
    pub fn advance_to(&mut self, until: Tick) -> Result<StepOutcome, SimError> {
        advance_shard_to(&mut self.source, &mut self.admission, &mut self.core, until)
    }

    /// Snapshots the complete shard state (core + source + admission) and
    /// remembers it as the restore point.
    pub fn take_checkpoint(&mut self, taken_at: Tick) -> &ShardCheckpoint {
        let cp = ShardCheckpoint {
            taken_at,
            core: self.core.snapshot(),
            source: self.source.clone(),
            admission: self.admission.clone(),
            flight: self.flight.as_ref().map(FlightRecorder::snapshot),
        };
        self.last_checkpoint.insert(cp)
    }

    /// Discards the live state and rebuilds the shard from `checkpoint`
    /// (scenario and policies are the shard's own borrows — the checkpoint
    /// must match them). Plain observers ([`Shard::attach`]) are dropped;
    /// the *managed* ones are revived: a flight recorder is reset to the
    /// checkpointed contents (the pre-kill buffer surviving as
    /// [`Shard::post_mortem`]) and telemetry counters are re-attached.
    /// `checkpoint` becomes the shard's restore point: the previous
    /// `last_checkpoint` belonged to the timeline just discarded, so a
    /// later [`Shard::restore_last`] must not revive it.
    ///
    /// # Errors
    ///
    /// Any validation error from [`SimCore::restore`]; on error the live
    /// state and restore point are unchanged.
    pub fn restore_from(&mut self, checkpoint: &ShardCheckpoint) -> Result<(), SimError> {
        self.core = SimCore::restore(self.scenario, self.mapper, self.dropper, &checkpoint.core)?;
        self.source = checkpoint.source.clone();
        self.admission = checkpoint.admission.clone();
        self.last_checkpoint = Some(checkpoint.clone());
        if let Some(recorder) = &self.flight {
            self.post_mortem = Some(recorder.snapshot());
        }
        // Revive the recorder from the checkpoint: a shard that had one
        // keeps it (reset or cleared), and a checkpoint that carries one
        // recreates it on a fresh shard, so revival elsewhere is faithful.
        if self.flight.is_none() {
            if let Some(snapshot) = &checkpoint.flight {
                self.flight = Some(FlightRecorder::new(snapshot.capacity.max(1)));
            }
        }
        if let Some(recorder) = &self.flight {
            match &checkpoint.flight {
                Some(snapshot) => recorder.restore(snapshot),
                None => recorder.clear(),
            }
            self.core.attach(recorder.clone());
        }
        if let Some(telemetry) = self.telemetry.clone() {
            telemetry.attach_counters(&mut self.core, &self.name);
        }
        Ok(())
    }

    /// Kills the live state and rewinds to the last
    /// [`Shard::take_checkpoint`], returning the tick it was taken at.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::NoCheckpoint`] if none was ever taken; any
    /// [`SimError`] from [`Shard::restore_from`].
    pub fn restore_last(&mut self) -> Result<Tick, crate::ServeError> {
        let cp = self
            .last_checkpoint
            .clone()
            .ok_or_else(|| crate::ServeError::NoCheckpoint { shard: self.name.clone() })?;
        self.restore_from(&cp)?;
        Ok(cp.taken_at)
    }

    /// Whether the shard has nothing left to do: the source is exhausted,
    /// the ingress queue is empty, and every admitted task has a fate.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.source.is_exhausted() && self.admission.queued() == 0 && self.core.is_drained()
    }
}

impl std::fmt::Debug for Shard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("name", &self.name)
            .field("scenario", &self.scenario.name)
            .field("now", &self.core.now())
            .field("total_tasks", &self.core.total_tasks())
            .field("resolved_tasks", &self.core.resolved_tasks())
            .field("ingress_queued", &self.admission.queued())
            .finish_non_exhaustive()
    }
}
