//! Admission control in front of [`SimCore::inject`].
//!
//! A serving front-end cannot pass every offered task straight into the
//! engine: under oversubscription the batch queue would grow without bound
//! and doomed work would waste capacity the dropping policy then has to
//! claw back. The [`AdmissionController`] is a **bounded ingress queue**
//! with a pluggable [`BackpressurePolicy`] deciding what happens when the
//! bound is hit — and, for [`BackpressurePolicy::PreDrop`], a probabilistic
//! gate that refuses tasks whose estimated chance of success is already
//! below a threshold *before* they consume a queue slot. The estimate is
//! the paper's Equation (2) applied at the front door: the best machine's
//! queue-tail completion PMF (via
//! [`SimCore::queue_tail_estimate`]) chained with the task's execution PMF
//! through the deadline-aware convolution of Equation (1). This is the
//! serverless-companion paper's "probabilistic task pruning" moved to
//! admission time.
//!
//! Every refusal is counted in [`AdmissionStats`] *and* surfaced to the
//! core's observers as a [`SimEvent::AdmissionDropped`] through
//! [`SimCore::notify_observers`], so one observer chain sees the complete
//! lifecycle from ingress to fate.
//!
//! [`SimCore::inject`]: taskdrop_sim::SimCore::inject
//! [`SimCore::queue_tail_estimate`]: taskdrop_sim::SimCore::queue_tail_estimate
//! [`SimCore::notify_observers`]: taskdrop_sim::SimCore::notify_observers

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use taskdrop_model::{MachineTypeId, PetMatrix, TaskId};
use taskdrop_pmf::{ChainScratch, Pmf, Tick};
use taskdrop_sim::{AdmissionDropKind, ObserverHub, SimCore, SimError, SimEvent};
use taskdrop_workload::OfferedTask;

/// What to do when the bounded ingress queue cannot absorb an offer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Turn new offers away while the queue is full (tail drop).
    Reject,
    /// Evict the oldest queued offer to make room for the newest one
    /// (head drop — newest work has the freshest deadline).
    ShedOldest,
    /// Probabilistic pre-drop: once the ingress queue is at least half
    /// full, estimate each offer's chance of success (Eq 2 over the best
    /// machine's tail, Eq 1 chaining) and refuse it below `threshold`.
    /// Offers that pass the gate still tail-drop when the queue is full.
    PreDrop {
        /// Minimum acceptable chance of success in `[0, 1]`.
        threshold: f64,
    },
}

/// Per-policy admission accounting. `offered` is conserved:
/// `offered + stolen_in = admitted + turned_away() + still queued + stolen_out`
/// (the two `stolen_*` terms are zero outside a work-stealing fleet, which
/// reduces to the familiar `offered = admitted + turned_away() + queued`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Tasks offered to the controller.
    pub offered: u64,
    /// Tasks injected into the core.
    pub admitted: u64,
    /// Offers refused because the ingress queue was full.
    pub rejected_full: u64,
    /// Queued offers evicted by [`BackpressurePolicy::ShedOldest`].
    pub shed_oldest: u64,
    /// Offers refused by the probabilistic pre-drop gate.
    pub pre_dropped: u64,
    /// Queued offers whose deadline passed before injection.
    pub expired: u64,
    /// Offers the core refused to inject (unknown task type — a
    /// misconfigured traffic source).
    #[serde(default)]
    pub invalid: u64,
    /// Queued offers that arrived from another shard's ingress queue
    /// (work stealing at a fleet epoch barrier).
    #[serde(default)]
    pub stolen_in: u64,
    /// Queued offers donated to another shard's ingress queue.
    #[serde(default)]
    pub stolen_out: u64,
}

impl AdmissionStats {
    /// Total offers the controller turned away (everything but admitted
    /// and still-queued).
    #[must_use]
    pub fn turned_away(&self) -> u64 {
        self.rejected_full + self.shed_oldest + self.pre_dropped + self.expired + self.invalid
    }
}

/// The controller's verdict on one offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Queued for injection (possibly after shedding an older offer).
    Accepted,
    /// Turned away; the kind says which rule fired.
    TurnedAway(AdmissionDropKind),
}

/// Bounded ingress queue + backpressure policy in front of one core.
///
/// Offers enter through [`AdmissionController::offer`] (in nondecreasing
/// arrival order, as traffic sources produce them) and leave through
/// [`AdmissionController::drain_due`], which injects everything due by the
/// epoch boundary. The whole controller — policy, bound, queue contents,
/// counters — is serde-serializable, so a shard checkpoint captures it
/// wholesale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    capacity: usize,
    policy: BackpressurePolicy,
    queue: VecDeque<OfferedTask>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller holding at most `capacity` queued offers under
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or a
    /// [`BackpressurePolicy::PreDrop`] threshold is outside `[0, 1]`.
    #[must_use]
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        assert!(capacity > 0, "ingress queue needs at least one slot");
        if let BackpressurePolicy::PreDrop { threshold } = policy {
            assert!((0.0..=1.0).contains(&threshold), "pre-drop threshold must be a probability");
        }
        AdmissionController {
            capacity,
            policy,
            queue: VecDeque::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// The configured backpressure policy.
    #[must_use]
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// The ingress queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers currently waiting for injection.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The accounting so far.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Offers one task. `core` supplies the queue-tail estimates for the
    /// pre-drop gate and carries the observers that refusals are surfaced
    /// to; admission never mutates the trial itself. When offering a whole
    /// batch against an unmoving core (a shard epoch), capture the tails
    /// once and use [`AdmissionController::offer_with`] instead.
    pub fn offer<H: ObserverHub>(
        &mut self,
        task: OfferedTask,
        core: &mut SimCore<'_, H>,
    ) -> AdmissionOutcome {
        self.offer_impl(task, core, None)
    }

    /// [`AdmissionController::offer`] with pre-captured [`QueueTails`],
    /// skipping the per-offer tail-chain recomputation. Sound whenever the
    /// core has not advanced since [`QueueTails::capture`] — identical
    /// decisions, O(machines + offers) instead of O(offers × machines)
    /// chain convolutions per batch.
    pub fn offer_with<H: ObserverHub>(
        &mut self,
        task: OfferedTask,
        core: &mut SimCore<'_, H>,
        tails: &mut QueueTails,
    ) -> AdmissionOutcome {
        self.offer_impl(task, core, Some(tails))
    }

    fn offer_impl<H: ObserverHub>(
        &mut self,
        task: OfferedTask,
        core: &mut SimCore<'_, H>,
        tails: Option<&mut QueueTails>,
    ) -> AdmissionOutcome {
        self.stats.offered += 1;
        if let BackpressurePolicy::PreDrop { threshold } = self.policy {
            // The gate opens at half occupancy: under light load every
            // offer is admitted without touching the PMF machinery; under
            // pressure it prices each offer the way the paper prices a
            // queued task.
            if 2 * self.queue.len() >= self.capacity {
                let chance = match tails {
                    Some(t) => t.best_chance(&core.scenario().pet, core.now(), &task),
                    None => best_chance_of_success(core, &task),
                };
                if chance < threshold {
                    return self.turn_away(task, AdmissionDropKind::PreDropped, core);
                }
            }
        }
        if self.queue.len() >= self.capacity {
            match self.policy {
                BackpressurePolicy::ShedOldest => {
                    if let Some(oldest) = self.queue.pop_front() {
                        self.record_refusal(&oldest, AdmissionDropKind::ShedOldest, core);
                    }
                }
                BackpressurePolicy::Reject | BackpressurePolicy::PreDrop { .. } => {
                    return self.turn_away(task, AdmissionDropKind::RejectedFull, core);
                }
            }
        }
        self.queue.push_back(task);
        AdmissionOutcome::Accepted
    }

    /// Chain-aware immediate admission: one offer, decided and (on
    /// acceptance) injected *right now*, bypassing the ingress queue.
    /// Dependency-graph layers (`taskdrop_dag`) release a node the instant
    /// its predecessors complete — parking it in the ingress queue would
    /// only erode slack the chain has already spent — so this path applies
    /// the [`BackpressurePolicy::PreDrop`] gate *unconditionally* (release
    /// offers always price against fresh tails; there is no half-occupancy
    /// warm-up because there is no queue to measure) and otherwise injects
    /// at `max(arrival, now)`. Returns `Ok(None)` when the offer was
    /// turned away (expired or pre-dropped); refusals are counted in
    /// [`AdmissionStats`] and surfaced as [`SimEvent::AdmissionDropped`]
    /// exactly like the queued path's.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownTaskType`] if the offer names a task type the
    /// core's scenario lacks; the offer is consumed and counted as
    /// [`AdmissionStats::invalid`], preserving the `offered` conservation
    /// identity.
    pub fn admit_now<H: ObserverHub>(
        &mut self,
        task: OfferedTask,
        core: &mut SimCore<'_, H>,
    ) -> Result<Option<TaskId>, SimError> {
        self.stats.offered += 1;
        let arrival = task.arrival.max(core.now());
        if task.deadline <= arrival {
            self.record_refusal(&task, AdmissionDropKind::Expired, core);
            return Ok(None);
        }
        if let BackpressurePolicy::PreDrop { threshold } = self.policy {
            if best_chance_of_success(core, &task) < threshold {
                self.record_refusal(&task, AdmissionDropKind::PreDropped, core);
                return Ok(None);
            }
        }
        match core.inject(task.type_id, arrival, task.deadline) {
            Ok(id) => {
                self.stats.admitted += 1;
                Ok(Some(id))
            }
            Err(e) => {
                self.record_refusal(&task, AdmissionDropKind::Invalid, core);
                Err(e)
            }
        }
    }

    /// Injects every queued offer whose arrival is at or before `until`,
    /// in offer order. An offer that out-waited the core's clock is
    /// injected at the current simulation time (its deadline is
    /// unchanged); one whose deadline already passed is dropped here as
    /// [`AdmissionDropKind::Expired`]. Returns how many tasks were
    /// injected.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownTaskType`] if an offer names a task type the
    /// core's scenario lacks (a misconfigured traffic source); the failing
    /// offer is consumed and counted as [`AdmissionStats::invalid`], so
    /// the `offered` conservation identity survives the error.
    pub fn drain_due<H: ObserverHub>(
        &mut self,
        core: &mut SimCore<'_, H>,
        until: Tick,
    ) -> Result<usize, SimError> {
        let mut injected = 0;
        while let Some(&front) = self.queue.front() {
            if front.arrival > until {
                break;
            }
            self.queue.pop_front();
            let arrival = front.arrival.max(core.now());
            if front.deadline <= arrival {
                self.record_refusal(&front, AdmissionDropKind::Expired, core);
                continue;
            }
            if let Err(e) = core.inject(front.type_id, arrival, front.deadline) {
                // The failed offer is consumed (already popped) and
                // counted, so `offered` stays conserved across the error.
                self.record_refusal(&front, AdmissionDropKind::Invalid, core);
                return Err(e);
            }
            self.stats.admitted += 1;
            injected += 1;
        }
        Ok(injected)
    }

    /// Removes up to `count` offers from the **back** of the ingress queue
    /// for migration to another shard (fleet work stealing). The newest
    /// offers are taken — they have waited least and are the least likely
    /// to be due imminently — and because the queue holds offers in
    /// nondecreasing arrival order, removing a suffix preserves that
    /// invariant on both sides. The removed offers are returned in arrival
    /// order and counted as [`AdmissionStats::stolen_out`].
    pub fn release_for_steal(&mut self, count: usize) -> Vec<OfferedTask> {
        let keep = self.queue.len().saturating_sub(count);
        let offers: Vec<OfferedTask> = self.queue.split_off(keep).into();
        self.stats.stolen_out += offers.len() as u64;
        offers
    }

    /// Merges offers stolen from another shard into this queue, keeping it
    /// sorted by arrival (a plain `push_back` could strand an already-due
    /// migrant behind later local arrivals and starve
    /// [`AdmissionController::drain_due`]'s in-order scan). Counted as
    /// [`AdmissionStats::stolen_in`]. The steal planner never moves more
    /// offers than the receiver has free slots, so the bound holds by
    /// construction (debug-asserted).
    pub fn accept_stolen(&mut self, offers: &[OfferedTask]) {
        for &offer in offers {
            let at = self.queue.partition_point(|q| q.arrival <= offer.arrival);
            self.queue.insert(at, offer);
        }
        self.stats.stolen_in += offers.len() as u64;
        debug_assert!(
            self.queue.len() <= self.capacity,
            "steal planner overfilled the receiving ingress queue"
        );
    }

    /// The single refusal bookkeeper: every turned-away offer — rejected,
    /// shed, pre-dropped or expired — bumps its counter and reaches the
    /// observers through here, so stats and stream cannot drift apart.
    fn record_refusal<H: ObserverHub>(
        &mut self,
        task: &OfferedTask,
        kind: AdmissionDropKind,
        core: &mut SimCore<'_, H>,
    ) {
        match kind {
            AdmissionDropKind::RejectedFull => self.stats.rejected_full += 1,
            AdmissionDropKind::ShedOldest => self.stats.shed_oldest += 1,
            AdmissionDropKind::PreDropped => self.stats.pre_dropped += 1,
            AdmissionDropKind::Expired => self.stats.expired += 1,
            AdmissionDropKind::Invalid => self.stats.invalid += 1,
        }
        core.notify_observers(&admission_dropped(task, core.now(), kind));
    }

    fn turn_away<H: ObserverHub>(
        &mut self,
        task: OfferedTask,
        kind: AdmissionDropKind,
        core: &mut SimCore<'_, H>,
    ) -> AdmissionOutcome {
        self.record_refusal(&task, kind, core);
        AdmissionOutcome::TurnedAway(kind)
    }
}

fn admission_dropped(task: &OfferedTask, now: Tick, kind: AdmissionDropKind) -> SimEvent {
    SimEvent::AdmissionDropped {
        type_id: task.type_id,
        arrival: task.arrival,
        deadline: task.deadline,
        now,
        kind,
    }
}

/// Queue-tail completion PMFs of every machine that can accept work,
/// captured at one instant and reusable across a whole offer batch: a
/// shard processes an epoch's offers against an unmoving core, so
/// recomputing the tail chains (the engine's most expensive primitive) per
/// offer would produce the same tails k times over.
///
/// Down machines are excluded — the mapper exposes no free slots on them,
/// so pricing an offer against their idle-looking tails would wave
/// hopeless work through the gate.
#[derive(Debug, Clone, Default)]
pub struct QueueTails {
    tails: Vec<(MachineTypeId, Pmf)>,
    /// Reusable Eq 1 + Eq 2 scratch: one per captured tail set instead of
    /// one allocation per priced offer.
    scratch: ChainScratch,
}

impl QueueTails {
    /// Captures the tails of every *up* machine in `core`'s cluster. The
    /// tail chains come from the core's persistent PET×tail cache (hence
    /// `&mut` — hit/miss counters advance), so capturing against unmoved
    /// queues re-chains nothing.
    #[must_use]
    pub fn capture<H: ObserverHub>(core: &mut SimCore<'_, H>) -> Self {
        let machines = core.scenario().machines.clone();
        let mut tails = Vec::new();
        for m in machines {
            if core.machine_is_down(m.id) != Some(false) {
                continue;
            }
            if let Some(tail) = core.queue_tail_estimate(m.id) {
                tails.push((m.type_id, tail));
            }
        }
        QueueTails { tails, scratch: ChainScratch::new() }
    }

    /// How many machines were up at capture time.
    #[must_use]
    pub fn machines_up(&self) -> usize {
        self.tails.len()
    }

    /// The offer's best chance of success across the captured tails: for
    /// each machine, chain the tail with the task's learned execution PMF
    /// (Eq 1) and take the Eq 2 mass before the deadline; the mapper would
    /// send the task to the best queue, so the max is the honest estimate.
    /// 0 when every machine is down.
    ///
    /// The deadline is evaluated as the offer's *slack window opening at*
    /// `now`, not at its absolute tick: queue tails are only known for the
    /// present, so judging a late-in-epoch arrival's far-future deadline
    /// against today's tails would wave everything through. The
    /// slack-window form asks the question the paper's pruning asks —
    /// "joining a queue shaped like this, does the task stand a chance?" —
    /// independently of how far ahead the offer sits.
    pub fn best_chance(&mut self, pet: &PetMatrix, now: Tick, task: &OfferedTask) -> f64 {
        let deadline = now + task.deadline.saturating_sub(task.arrival);
        // Fused Eq 1 + Eq 2: the chance is summed during the convolution
        // sweep, so no completion PMF is ever materialised; the owned
        // scratch serves every cluster scan of the capture's lifetime, so
        // a whole offer batch prices with zero steady-state allocation.
        let mut best = 0.0f64;
        for (machine_type, tail) in &self.tails {
            let exec = pet.pmf(task.type_id, *machine_type);
            best = best.max(self.scratch.chance_of(tail, exec, deadline));
        }
        best
    }
}

/// One-shot form of [`QueueTails::capture`] + [`QueueTails::best_chance`]:
/// the offer's best chance of success across the cluster right now.
#[must_use]
pub fn best_chance_of_success<H: ObserverHub>(
    core: &mut SimCore<'_, H>,
    task: &OfferedTask,
) -> f64 {
    let mut tails = QueueTails::capture(core);
    tails.best_chance(&core.scenario().pet, core.now(), task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use taskdrop_core::ReactiveOnly;
    use taskdrop_model::TaskTypeId;
    use taskdrop_sched::Pam;
    use taskdrop_sim::SimConfig;
    use taskdrop_workload::Scenario;

    fn offered(arrival: Tick, deadline: Tick) -> OfferedTask {
        OfferedTask { type_id: TaskTypeId(0), arrival, deadline }
    }

    fn open_core(scenario: &Scenario) -> SimCore<'_> {
        let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        SimCore::open(scenario, &Pam, &ReactiveOnly, config, 1).unwrap()
    }

    #[test]
    fn reject_policy_tail_drops_when_full() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let mut ctl = AdmissionController::new(2, BackpressurePolicy::Reject);
        assert_eq!(ctl.offer(offered(10, 500), &mut core), AdmissionOutcome::Accepted);
        assert_eq!(ctl.offer(offered(20, 500), &mut core), AdmissionOutcome::Accepted);
        assert_eq!(
            ctl.offer(offered(30, 500), &mut core),
            AdmissionOutcome::TurnedAway(AdmissionDropKind::RejectedFull)
        );
        assert_eq!(ctl.stats().rejected_full, 1);
        assert_eq!(ctl.queued(), 2);
    }

    #[test]
    fn shed_oldest_evicts_the_head_and_reports_it() {
        let s = Scenario::specint(5);
        let dropped = RefCell::new(Vec::new());
        let mut core = open_core(&s);
        core.attach(|ev: &SimEvent| {
            if let SimEvent::AdmissionDropped { arrival, kind, .. } = *ev {
                dropped.borrow_mut().push((arrival, kind));
            }
        });
        let mut ctl = AdmissionController::new(2, BackpressurePolicy::ShedOldest);
        ctl.offer(offered(10, 500), &mut core);
        ctl.offer(offered(20, 500), &mut core);
        assert_eq!(ctl.offer(offered(30, 500), &mut core), AdmissionOutcome::Accepted);
        assert_eq!(ctl.stats().shed_oldest, 1);
        assert_eq!(ctl.queued(), 2);
        assert_eq!(dropped.borrow().as_slice(), &[(10, AdmissionDropKind::ShedOldest)]);
    }

    #[test]
    fn drain_injects_due_offers_and_expires_stale_ones() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let mut ctl = AdmissionController::new(8, BackpressurePolicy::Reject);
        ctl.offer(offered(5, 400), &mut core);
        ctl.offer(offered(50, 60), &mut core); // will out-wait its deadline
        ctl.offer(offered(900, 1_500), &mut core); // not due yet
        assert_eq!(ctl.drain_due(&mut core, 10).unwrap(), 1);
        // Park an arrival event at t=70 so the clock provably passes the
        // second offer's deadline before the next drain.
        core.inject(TaskTypeId(0), 70, 800).unwrap();
        core.run_until(70);
        assert!(core.now() >= 60, "clock should have passed the stale deadline");
        assert_eq!(ctl.drain_due(&mut core, 100).unwrap(), 0);
        let stats = ctl.stats();
        assert_eq!((stats.admitted, stats.expired), (1, 1));
        assert_eq!(ctl.queued(), 1, "the far-future offer stays queued");
        assert_eq!(core.total_tasks(), 2, "one admitted + one parked helper");
    }

    #[test]
    fn predrop_gate_refuses_hopeless_offers_under_pressure() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let mut ctl = AdmissionController::new(4, BackpressurePolicy::PreDrop { threshold: 0.25 });
        // Below half occupancy the gate stays closed even for an offer
        // whose deadline leaves room for nothing (clock is 0, so a
        // deadline of 1 admits only a sub-1-tick completion).
        assert_eq!(ctl.offer(offered(0, 1), &mut core), AdmissionOutcome::Accepted);
        ctl.offer(offered(12, 600), &mut core);
        // Now at half occupancy: the same hopeless shape is pre-dropped; a
        // roomy one passes.
        assert_eq!(
            ctl.offer(offered(0, 1), &mut core),
            AdmissionOutcome::TurnedAway(AdmissionDropKind::PreDropped)
        );
        assert_eq!(ctl.offer(offered(20, 900), &mut core), AdmissionOutcome::Accepted);
        assert_eq!(ctl.stats().pre_dropped, 1);
    }

    #[test]
    fn admit_now_injects_immediately_and_gates_unconditionally() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let mut ctl = AdmissionController::new(4, BackpressurePolicy::PreDrop { threshold: 0.25 });
        // Queue is empty — the queued path would wave anything through, but
        // the release path prices every offer: a 1-tick window is refused.
        assert_eq!(ctl.admit_now(offered(0, 1), &mut core).unwrap(), None);
        assert_eq!(ctl.stats().pre_dropped, 1);
        // A roomy offer is injected at once, bypassing the queue.
        let id = ctl.admit_now(offered(0, 900), &mut core).unwrap().expect("admitted");
        assert_eq!(core.total_tasks(), 1);
        assert_eq!(id, TaskId(0));
        assert_eq!(ctl.queued(), 0, "release offers never occupy the ingress queue");
        // An offer whose deadline the clock already passed is expired here,
        // not handed to the core.
        assert_eq!(
            ctl.admit_now(
                OfferedTask { type_id: TaskTypeId(0), arrival: 0, deadline: 0 },
                &mut core
            )
            .unwrap(),
            None
        );
        let stats = ctl.stats();
        assert_eq!((stats.offered, stats.admitted, stats.expired), (3, 1, 1));
    }

    #[test]
    fn best_chance_is_high_on_an_idle_cluster_with_roomy_deadline() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let roomy = best_chance_of_success(&mut core, &offered(0, 5_000));
        let hopeless = best_chance_of_success(&mut core, &offered(0, 1));
        assert!(roomy > 0.9, "idle cluster, roomy deadline: {roomy}");
        assert!(hopeless < 0.05, "1-tick deadline: {hopeless}");
        // The batched form prices identically to the one-shot form.
        let mut tails = QueueTails::capture(&mut core);
        assert_eq!(tails.machines_up(), s.machine_count());
        let batched = tails.best_chance(&s.pet, core.now(), &offered(0, 5_000));
        assert!((batched - roomy).abs() < 1e-15);
    }

    #[test]
    fn captured_tails_skip_down_machines() {
        use taskdrop_sim::FailureSpec;
        let s = Scenario::specint(5);
        // Machines fail almost immediately and repair glacially, so after a
        // while the cluster is (mostly) down.
        let config = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 40, mttr: 1_000_000 }),
            ..SimConfig::default()
        };
        let mut core = SimCore::open(&s, &Pam, &ReactiveOnly, config, 3).unwrap();
        core.inject(TaskTypeId(0), 8_000, 9_000).unwrap(); // keeps events flowing
        core.run_until(6_000);
        let down = s.machines.iter().filter(|m| core.machine_is_down(m.id) == Some(true)).count();
        assert!(down > 0, "failure spec should have downed at least one machine");
        let tails = QueueTails::capture(&mut core);
        assert_eq!(tails.machines_up(), s.machine_count() - down);
    }

    /// The pre-drop gate stays failure-aware through the persistent tail
    /// cache: a capture against a warm-cache core (partly-down cluster)
    /// prices offers bit-identically to a capture against a cold-cache
    /// restored twin — down machines are skipped either way.
    #[test]
    fn warm_and_cold_captures_price_identically_with_down_machines() {
        use taskdrop_sim::FailureSpec;
        let s = Scenario::specint(5);
        let config = SimConfig {
            exclude_boundary: 0,
            failures: Some(FailureSpec { mtbf: 200, mttr: 5_000 }),
            ..SimConfig::default()
        };
        let mut warm = SimCore::open(&s, &Pam, &ReactiveOnly, config, 3).unwrap();
        for k in 0..40u64 {
            warm.inject(TaskTypeId((k % 12) as u16), 5 * k, 5 * k + 600).unwrap();
        }
        warm.run_until(150);
        // Warm the tail cache, then capture twice: live core vs restored
        // cold twin.
        let mut warm_tails = QueueTails::capture(&mut warm);
        let checkpoint = warm.snapshot();
        let mut cold = SimCore::restore(&s, &Pam, &ReactiveOnly, &checkpoint).unwrap();
        let mut cold_tails = QueueTails::capture(&mut cold);
        assert_eq!(warm_tails.machines_up(), cold_tails.machines_up());
        let down = s.machines.iter().filter(|m| warm.machine_is_down(m.id) == Some(true)).count();
        assert_eq!(warm_tails.machines_up(), s.machine_count() - down);
        for (arrival, deadline) in [(150, 180), (150, 400), (160, 2_000), (200, 210)] {
            let offer = offered(arrival, deadline);
            let a = warm_tails.best_chance(&s.pet, warm.now(), &offer);
            let b = cold_tails.best_chance(&s.pet, cold.now(), &offer);
            assert_eq!(a.to_bits(), b.to_bits(), "offer ({arrival}, {deadline})");
        }
    }

    #[test]
    fn steal_release_takes_the_newest_suffix_and_accept_merges_in_order() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let mut donor = AdmissionController::new(8, BackpressurePolicy::Reject);
        for arrival in [10, 20, 30, 40] {
            donor.offer(offered(arrival, 500), &mut core);
        }
        let moved = donor.release_for_steal(2);
        assert_eq!(moved.iter().map(|o| o.arrival).collect::<Vec<_>>(), [30, 40]);
        assert_eq!(donor.queued(), 2);
        assert_eq!(donor.stats().stolen_out, 2);
        // Asking for more than is queued empties the queue and no more.
        assert_eq!(donor.release_for_steal(99).len(), 2);
        assert_eq!(donor.queued(), 0);

        let mut receiver = AdmissionController::new(8, BackpressurePolicy::Reject);
        receiver.offer(offered(25, 500), &mut core);
        receiver.offer(offered(35, 500), &mut core);
        receiver.accept_stolen(&moved);
        assert_eq!(receiver.stats().stolen_in, 2);
        // Merge kept the queue sorted by arrival: the removal order proves it.
        let drained = receiver.release_for_steal(4);
        assert_eq!(drained.iter().map(|o| o.arrival).collect::<Vec<_>>(), [25, 30, 35, 40]);
        // Conservation with steals: offered + stolen_in = admitted +
        // turned_away + queued + stolen_out.
        let st = receiver.stats();
        assert_eq!(
            st.offered + st.stolen_in,
            st.admitted + st.turned_away() + receiver.queued() as u64 + st.stolen_out
        );
    }

    #[test]
    fn controller_serde_roundtrip_preserves_queue_and_stats() {
        let s = Scenario::specint(5);
        let mut core = open_core(&s);
        let mut ctl = AdmissionController::new(2, BackpressurePolicy::ShedOldest);
        ctl.offer(offered(10, 500), &mut core);
        ctl.offer(offered(20, 500), &mut core);
        ctl.offer(offered(30, 500), &mut core);
        let json = serde_json::to_string(&ctl).unwrap();
        let back: AdmissionController = serde_json::from_str(&json).unwrap();
        assert_eq!(ctl, back);
    }
}
