//! Property-based tests for the PMF toolkit.

use proptest::prelude::*;
use taskdrop_pmf::{
    chance_of_success, convolve_dense_forced, convolve_sparse_forced, deadline_convolve,
    Compaction, Pmf, Tick, DENSE_SPAN_LIMIT,
};

const EPS: f64 = 1e-9;

/// Strategy: a normalised PMF with 1..=12 impulses on ticks 0..=500.
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec((0u64..=500, 1u32..=1000), 1..=12).prop_map(|pairs| {
        let weights: Vec<(Tick, f64)> = pairs.into_iter().map(|(t, w)| (t, w as f64)).collect();
        Pmf::from_weights(weights).expect("positive weights")
    })
}

/// Strategy: a normalised PMF whose support can reach past
/// `DENSE_SPAN_LIMIT`, so convolutions straddle the dense/sparse split.
fn arb_wide_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec((0u64..=DENSE_SPAN_LIMIT + DENSE_SPAN_LIMIT / 4, 1u32..=1000), 1..=8)
        .prop_map(|pairs| {
            let weights: Vec<(Tick, f64)> = pairs.into_iter().map(|(t, w)| (t, w as f64)).collect();
            Pmf::from_weights(weights).expect("positive weights")
        })
}

/// Strategy: a sub-normalised PMF (mass in (0, 1]).
fn arb_sub_pmf() -> impl Strategy<Value = Pmf> {
    (arb_pmf(), 1u32..=100).prop_map(|(p, pct)| p.scale_mass(pct as f64 / 100.0))
}

proptest! {
    #[test]
    fn construction_invariants(p in arb_pmf()) {
        let pairs = p.to_pairs();
        // Sorted, unique ticks; positive masses.
        for w in pairs.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for &(_, mass) in &pairs {
            prop_assert!(mass > 0.0);
        }
        prop_assert!((p.total_mass() - 1.0).abs() < EPS);
    }

    #[test]
    fn convolution_mass_is_product(a in arb_sub_pmf(), b in arb_sub_pmf()) {
        let c = a.convolve(&b);
        prop_assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < EPS);
    }

    #[test]
    fn convolution_mean_additive(a in arb_pmf(), b in arb_pmf()) {
        let c = a.convolve(&b);
        let expect = a.mean().unwrap() + b.mean().unwrap();
        prop_assert!((c.mean().unwrap() - expect).abs() < 1e-6);
    }

    #[test]
    fn convolution_commutative(a in arb_pmf(), b in arb_pmf()) {
        let ab = a.convolve(&b);
        let ba = b.convolve(&a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(ba.iter()) {
            prop_assert_eq!(x.t, y.t);
            prop_assert!((x.p - y.p).abs() < EPS);
        }
    }

    #[test]
    fn convolution_support_bounds(a in arb_pmf(), b in arb_pmf()) {
        let c = a.convolve(&b);
        prop_assert_eq!(c.support_min(), Some(a.support_min().unwrap() + b.support_min().unwrap()));
        prop_assert_eq!(c.support_max(), Some(a.support_max().unwrap() + b.support_max().unwrap()));
    }

    #[test]
    fn deadline_convolve_conserves_mass(prev in arb_pmf(), exec in arb_pmf(), d in 0u64..=1200) {
        let c = deadline_convolve(&prev, &exec, d);
        prop_assert!((c.total_mass() - 1.0).abs() < EPS);
    }

    /// With an infinitely late deadline, Eq (1) degenerates to plain convolution.
    #[test]
    fn deadline_convolve_late_deadline_is_convolution(prev in arb_pmf(), exec in arb_pmf()) {
        let c = deadline_convolve(&prev, &exec, u64::MAX);
        let plain = prev.convolve(&exec);
        prop_assert_eq!(c.len(), plain.len());
        for (x, y) in c.iter().zip(plain.iter()) {
            prop_assert_eq!(x.t, y.t);
            prop_assert!((x.p - y.p).abs() < EPS);
        }
    }

    /// With deadline 0 nothing can ever start: pass-through identity.
    #[test]
    fn deadline_convolve_zero_deadline_is_identity(prev in arb_pmf(), exec in arb_pmf()) {
        let c = deadline_convolve(&prev, &exec, 0);
        prop_assert_eq!(c, prev);
    }

    /// Chance of success is monotone non-decreasing in the deadline.
    #[test]
    fn chance_monotone_in_deadline(prev in arb_pmf(), exec in arb_pmf(), d in 0u64..=1100) {
        let c1 = deadline_convolve(&prev, &exec, d);
        let c2 = deadline_convolve(&prev, &exec, d + 25);
        prop_assert!(chance_of_success(&c2, d + 25) + EPS >= chance_of_success(&c1, d));
    }

    /// The completion PMF produced by Eq (1) stochastically dominates the
    /// predecessor: the slot can never free up *earlier* than the predecessor
    /// finished. (Key lemma behind "dropping never hurts the influence zone".)
    #[test]
    fn completion_dominates_predecessor(prev in arb_pmf(), exec in arb_pmf(), d in 0u64..=1100) {
        let c = deadline_convolve(&prev, &exec, d);
        for t in [0u64, 50, 100, 250, 500, 750, 1000, 1500] {
            // P(C < t) <= P(prev < t): completion is stochastically later.
            prop_assert!(c.mass_before(t) <= prev.mass_before(t) + EPS);
        }
    }

    /// The dense and sparse convolution paths agree on PMFs whose spans
    /// straddle `DENSE_SPAN_LIMIT`, so `Pmf::convolve`'s path selection is
    /// unobservable (up to float association error from the different
    /// summation orders).
    #[test]
    fn dense_and_sparse_convolution_agree_across_the_span_split(
        a in arb_wide_pmf(),
        b in arb_wide_pmf(),
    ) {
        let dense = convolve_dense_forced(&a, &b);
        let sparse = convolve_sparse_forced(&a, &b);
        prop_assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(sparse.iter()) {
            prop_assert_eq!(d.t, s.t);
            prop_assert!((d.p - s.p).abs() < EPS);
        }
        let auto = a.convolve(&b);
        let span = auto.support_max().unwrap() - auto.support_min().unwrap() + 1;
        let reference = if span <= DENSE_SPAN_LIMIT { &dense } else { &sparse };
        prop_assert_eq!(&auto, reference);
    }

    #[test]
    fn compaction_preserves_mass(p in arb_pmf(), max in 2usize..=32) {
        let c = Compaction::MaxImpulses(max).apply(&p);
        prop_assert!((c.total_mass() - p.total_mass()).abs() < EPS);
        prop_assert!(c.len() <= max.max(p.len().min(max)));
    }

    #[test]
    fn compaction_bounds_mean_error(p in arb_pmf(), max in 2usize..=32) {
        let c = Compaction::MaxImpulses(max).apply(&p);
        let span = (p.support_max().unwrap() - p.support_min().unwrap() + 1) as f64;
        let width = (span / max as f64).ceil();
        // Mass-weighted mean moves at most one bin width (rounding inclusive).
        let err = (c.mean().unwrap() - p.mean().unwrap()).abs();
        prop_assert!(err <= width + 0.5, "err {err} > width {width}");
    }

    #[test]
    fn compaction_keeps_support_window(p in arb_pmf(), max in 2usize..=32) {
        let c = Compaction::MaxImpulses(max).apply(&p);
        prop_assert!(c.support_min().unwrap() >= p.support_min().unwrap());
        prop_assert!(c.support_max().unwrap() <= p.support_max().unwrap());
    }

    #[test]
    fn condition_at_least_is_normalized(p in arb_pmf(), t in 0u64..=600) {
        if let Some(c) = p.condition_at_least(t) {
            prop_assert!((c.total_mass() - 1.0).abs() < EPS);
            prop_assert!(c.support_min().unwrap() >= t);
        } else {
            prop_assert!(p.mass_at_or_after(t) <= 0.0 + EPS);
        }
    }

    #[test]
    fn quantile_is_consistent_with_cdf(p in arb_pmf(), q in 0.0f64..=1.0) {
        let t = p.quantile(q).unwrap();
        prop_assert!(p.cdf(t) + EPS >= q * p.total_mass());
    }

    #[test]
    fn shift_preserves_shape(p in arb_pmf(), delta in 0u64..=1000) {
        let s = p.shift(delta);
        prop_assert_eq!(s.len(), p.len());
        prop_assert!((s.total_mass() - p.total_mass()).abs() < EPS);
        prop_assert!((s.mean().unwrap() - p.mean().unwrap() - delta as f64).abs() < 1e-6);
    }
}
