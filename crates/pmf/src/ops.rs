//! Convolution, shifting and mixing of PMFs.

use crate::pmf::{Impulse, Pmf};
use crate::Tick;

/// Span threshold below which convolution accumulates into a dense buffer.
///
/// A dense accumulation costs `O(span + n*m)` with perfect cache behaviour; a
/// sparse accumulation costs `O(n*m log(n*m))`. For the queue-length and
/// impulse-count regimes of the simulator (spans of a few thousand ticks) the
/// dense path is almost always selected. The same split drives the fused
/// chain kernel ([`crate::ChainScratch`]), so both paths stay bit-identical.
pub const DENSE_SPAN_LIMIT: u64 = 1 << 16;

/// Number of elementary operations a convolution of two PMFs with `a_len`
/// and `b_len` impulses and result support span `span` performs (factor *B*
/// of the paper's Section IV-F complexity analysis). Exposed for benchmarks.
///
/// The dense path does `a_len * b_len` multiply-accumulates **plus** a
/// `span`-cell zero-and-sweep of the accumulator; the sparse path does the
/// products and then sorts them (the `log` factor is not counted — budgets
/// are lower bounds on elementary touches, not cycle predictions). Pass the
/// result span `hi - lo + 1`; spans above [`DENSE_SPAN_LIMIT`] select the
/// sparse path. Saturates instead of overflowing.
#[must_use]
pub fn conv_budget(a_len: usize, b_len: usize, span: u64) -> u64 {
    let products = (a_len as u64).saturating_mul(b_len as u64);
    if span <= DENSE_SPAN_LIMIT {
        products.saturating_add(span)
    } else {
        products
    }
}

/// Capacity hint for buffers holding up to `a * b` raw products: saturating
/// (a 32-bit host must not overflow `usize`) and capped so a pathological
/// impulse-count product cannot trigger a giant up-front allocation — the
/// buffer grows organically past the cap instead.
pub(crate) fn product_capacity(a: usize, b: usize) -> usize {
    a.saturating_mul(b).min(1 << 20)
}

impl Pmf {
    /// Convolution: the distribution of `X + Y` for independent `X ~ self`,
    /// `Y ~ other`.
    ///
    /// Total mass multiplies: convolving two sub-distributions yields a
    /// sub-distribution. Convolving with the empty PMF yields the empty PMF.
    #[must_use]
    pub fn convolve(&self, other: &Pmf) -> Pmf {
        if self.is_empty() || other.is_empty() {
            return Pmf::empty();
        }
        // Convolve the smaller outer loop over the larger inner loop.
        let (a, b) = (&self.impulses, &other.impulses);
        let lo = a[0].t + b[0].t;
        let hi = a[a.len() - 1].t + b[b.len() - 1].t;
        let span = hi - lo + 1;
        if span <= DENSE_SPAN_LIMIT {
            convolve_dense(a, b, lo, span as usize)
        } else {
            convolve_sparse(a, b)
        }
    }

    /// Shifts every impulse `delta` ticks later: the distribution of
    /// `X + delta`.
    #[must_use]
    pub fn shift(&self, delta: Tick) -> Pmf {
        Pmf::from_sorted_unchecked(
            self.impulses.iter().map(|i| Impulse { t: i.t + delta, p: i.p }).collect(),
        )
    }

    /// The distribution of `max(1, round(factor · X))`: every impulse's tick
    /// is scaled by `factor`, colliding ticks coalesce. Models *approximate
    /// computing*: a degraded task variant that runs in a fraction of the
    /// full execution time (the paper's future-work extension).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn time_scale(&self, factor: f64) -> Pmf {
        assert!(factor.is_finite() && factor > 0.0, "time scale factor must be > 0");
        let pairs: Vec<(Tick, f64)> = self
            .impulses
            .iter()
            .map(|i| (((i.t as f64 * factor).round() as Tick).max(1), i.p))
            .collect();
        coalesce(pairs)
    }

    /// The distribution of `min(X, cap)`: all mass at or beyond `cap`
    /// collapses onto a single impulse at `cap`. Models an execution that is
    /// forcibly terminated at `cap` (e.g. a running task killed at its
    /// deadline): the machine frees no later than `cap`.
    #[must_use]
    pub fn clamp_max(&self, cap: Tick) -> Pmf {
        let idx = self.impulses.partition_point(|i| i.t < cap);
        let tail_mass: f64 = self.impulses[idx..].iter().map(|i| i.p).sum();
        let mut impulses: Vec<Impulse> = self.impulses[..idx].to_vec();
        if tail_mass > 0.0 {
            impulses.push(Impulse { t: cap, p: tail_mass });
        }
        Pmf::from_sorted_unchecked(impulses)
    }

    /// Weighted mixture of PMFs: `sum_k w_k * pmf_k`.
    ///
    /// Weights must be non-negative and finite; they are *not* renormalised,
    /// so the caller controls the output mass (weights summing to 1 applied
    /// to normalised PMFs yield a normalised PMF).
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    #[must_use]
    pub fn mixture(parts: &[(f64, &Pmf)]) -> Pmf {
        let mut pairs: Vec<(Tick, f64)> = Vec::new();
        for &(w, pmf) in parts {
            assert!(w.is_finite() && w >= 0.0, "mixture weight must be finite and >= 0");
            if w == 0.0 {
                continue;
            }
            pairs.extend(pmf.impulses.iter().map(|i| (i.t, i.p * w)));
        }
        coalesce(pairs)
    }
}

fn convolve_dense(a: &[Impulse], b: &[Impulse], lo: Tick, span: usize) -> Pmf {
    let mut acc = vec![0.0f64; span];
    // Iterate the shorter slice outermost so the inner loop streams linearly.
    let (outer, inner) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for oi in outer {
        let base = oi.t;
        let p = oi.p;
        for ii in inner {
            let idx = (base + ii.t - lo) as usize;
            acc[idx] += p * ii.p;
        }
    }
    let impulses: Vec<Impulse> = acc
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p > 0.0)
        .map(|(off, &p)| Impulse { t: lo + off as Tick, p })
        .collect();
    Pmf::from_sorted_unchecked(impulses)
}

fn convolve_sparse(a: &[Impulse], b: &[Impulse]) -> Pmf {
    let mut pairs: Vec<(Tick, f64)> = Vec::with_capacity(product_capacity(a.len(), b.len()));
    for ai in a {
        for bi in b {
            pairs.push((ai.t + bi.t, ai.p * bi.p));
        }
    }
    coalesce(pairs)
}

/// Forces the dense convolution path regardless of span. Exposed for the
/// cross-validation property tests and benchmarks; production code should
/// call [`Pmf::convolve`], which picks the path by [`DENSE_SPAN_LIMIT`].
#[doc(hidden)]
#[must_use]
pub fn convolve_dense_forced(a: &Pmf, b: &Pmf) -> Pmf {
    if a.is_empty() || b.is_empty() {
        return Pmf::empty();
    }
    let (a, b) = (&a.impulses, &b.impulses);
    let lo = a[0].t + b[0].t;
    let hi = a[a.len() - 1].t + b[b.len() - 1].t;
    convolve_dense(a, b, lo, (hi - lo + 1) as usize)
}

/// Forces the sparse convolution path regardless of span. Exposed for the
/// cross-validation property tests and benchmarks; production code should
/// call [`Pmf::convolve`], which picks the path by [`DENSE_SPAN_LIMIT`].
#[doc(hidden)]
#[must_use]
pub fn convolve_sparse_forced(a: &Pmf, b: &Pmf) -> Pmf {
    if a.is_empty() || b.is_empty() {
        return Pmf::empty();
    }
    convolve_sparse(&a.impulses, &b.impulses)
}

/// Sorts `(tick, mass)` pairs and merges equal ticks into a valid `Pmf`.
pub(crate) fn coalesce(mut pairs: Vec<(Tick, f64)>) -> Pmf {
    let mut impulses: Vec<Impulse> = Vec::with_capacity(pairs.len());
    coalesce_into(&mut pairs, &mut impulses);
    Pmf::from_sorted_unchecked(impulses)
}

/// Buffer-reusing workhorse of [`coalesce`]: sorts `pairs` in place and
/// merges equal ticks into `out` (cleared first), leaving `pairs` empty.
/// Shared by the sparse fallback of the fused chain kernel.
pub(crate) fn coalesce_into(pairs: &mut Vec<(Tick, f64)>, out: &mut Vec<Impulse>) {
    pairs.sort_unstable_by_key(|&(t, _)| t);
    out.clear();
    for &(t, p) in pairs.iter() {
        if p <= 0.0 {
            continue;
        }
        match out.last_mut() {
            Some(last) if last.t == t => last.p += p,
            _ => out.push(Impulse { t, p }),
        }
    }
    pairs.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn convolve_points_adds_ticks() {
        let p = Pmf::point(3).convolve(&Pmf::point(4));
        assert_eq!(p.to_pairs(), vec![(7, 1.0)]);
    }

    #[test]
    fn convolve_uniforms_triangle() {
        // U{0,1} * U{0,1} = {0: .25, 1: .5, 2: .25}
        let u = Pmf::uniform(0, 1);
        let c = u.convolve(&u);
        assert!(close(c.at(0), 0.25));
        assert!(close(c.at(1), 0.5));
        assert!(close(c.at(2), 0.25));
    }

    #[test]
    fn convolve_commutes() {
        let a = Pmf::from_impulses(vec![(1, 0.3), (5, 0.7)]).unwrap();
        let b = Pmf::from_impulses(vec![(2, 0.5), (3, 0.25), (10, 0.25)]).unwrap();
        assert_eq!(a.convolve(&b), b.convolve(&a));
    }

    #[test]
    fn convolve_preserves_mass_product() {
        let a = Pmf::from_impulses(vec![(1, 0.4), (2, 0.4)]).unwrap(); // mass 0.8
        let b = Pmf::from_impulses(vec![(3, 0.5)]).unwrap(); // mass 0.5
        let c = a.convolve(&b);
        assert!(close(c.total_mass(), 0.4));
    }

    #[test]
    fn convolve_mean_is_additive() {
        let a = Pmf::from_impulses(vec![(1, 0.25), (3, 0.75)]).unwrap();
        let b = Pmf::uniform(10, 14);
        let c = a.convolve(&b);
        let mean_sum = a.mean().unwrap() + b.mean().unwrap();
        assert!(close(c.mean().unwrap(), mean_sum));
    }

    #[test]
    fn convolve_with_empty_is_empty() {
        let a = Pmf::uniform(1, 5);
        assert!(a.convolve(&Pmf::empty()).is_empty());
        assert!(Pmf::empty().convolve(&a).is_empty());
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        let a = Pmf::from_impulses(vec![(0, 0.2), (100, 0.3), (250, 0.5)]).unwrap();
        let b = Pmf::from_impulses(vec![(5, 0.6), (90, 0.4)]).unwrap();
        let dense = convolve_dense(&a.impulses, &b.impulses, 5, 341);
        let sparse = convolve_sparse(&a.impulses, &b.impulses);
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(sparse.iter()) {
            assert_eq!(d.t, s.t);
            assert!(close(d.p, s.p));
        }
    }

    #[test]
    fn shift_moves_support() {
        let p = Pmf::uniform(2, 4).shift(10);
        assert_eq!(p.support_min(), Some(12));
        assert_eq!(p.support_max(), Some(14));
        assert!(p.is_normalized());
    }

    #[test]
    fn mixture_weighted() {
        let a = Pmf::point(1);
        let b = Pmf::point(2);
        let m = Pmf::mixture(&[(0.25, &a), (0.75, &b)]);
        assert!(close(m.at(1), 0.25));
        assert!(close(m.at(2), 0.75));
        assert!(m.is_normalized());
    }

    #[test]
    fn mixture_overlapping_support_coalesces() {
        let a = Pmf::from_impulses(vec![(1, 0.5), (2, 0.5)]).unwrap();
        let b = Pmf::from_impulses(vec![(2, 1.0)]).unwrap();
        let m = Pmf::mixture(&[(0.5, &a), (0.5, &b)]);
        assert!(close(m.at(2), 0.75));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn mixture_zero_weight_skipped() {
        let a = Pmf::point(1);
        let m = Pmf::mixture(&[(0.0, &a), (1.0, &a)]);
        assert_eq!(m.to_pairs(), vec![(1, 1.0)]);
    }

    #[test]
    fn time_scale_halves_ticks() {
        let p = Pmf::from_impulses(vec![(10, 0.5), (20, 0.5)]).unwrap();
        let s = p.time_scale(0.5);
        assert_eq!(s.to_pairs(), vec![(5, 0.5), (10, 0.5)]);
        assert!(close(s.mean().unwrap(), p.mean().unwrap() * 0.5));
    }

    #[test]
    fn time_scale_coalesces_collisions() {
        let p = Pmf::from_impulses(vec![(10, 0.5), (11, 0.5)]).unwrap();
        let s = p.time_scale(0.1);
        // Both round to 1 and merge; mass conserved.
        assert_eq!(s.to_pairs(), vec![(1, 1.0)]);
    }

    #[test]
    fn time_scale_clamps_to_one_tick() {
        let p = Pmf::point(2);
        assert_eq!(p.time_scale(0.01).to_pairs(), vec![(1, 1.0)]);
    }

    #[test]
    fn time_scale_identity() {
        let p = Pmf::uniform(5, 9);
        assert_eq!(p.time_scale(1.0), p);
    }

    #[test]
    fn clamp_max_collapses_tail() {
        let p = Pmf::from_impulses(vec![(5, 0.25), (10, 0.25), (15, 0.5)]).unwrap();
        let c = p.clamp_max(10);
        assert_eq!(c.to_pairs(), vec![(5, 0.25), (10, 0.75)]);
        assert!(close(c.total_mass(), 1.0));
        // Mass strictly before the cap is untouched.
        assert!(close(c.mass_before(10), p.mass_before(10)));
    }

    #[test]
    fn clamp_max_past_support_is_identity() {
        let p = Pmf::uniform(1, 5);
        assert_eq!(p.clamp_max(100), p);
    }

    #[test]
    fn clamp_max_before_support_is_point() {
        let p = Pmf::uniform(10, 20);
        let c = p.clamp_max(3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.support_min(), Some(3));
        assert!(close(c.total_mass(), 1.0));
    }

    #[test]
    fn conv_budget_counts_span_scan_on_the_dense_path() {
        // Dense: products plus the zero-and-sweep of the span buffer.
        assert_eq!(conv_budget(8, 16, 400), 128 + 400);
        // Sparse (span above the limit): products only.
        assert_eq!(conv_budget(8, 16, DENSE_SPAN_LIMIT + 1), 128);
        // Saturates instead of overflowing.
        assert_eq!(conv_budget(usize::MAX, usize::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn forced_paths_agree_with_convolve() {
        let a = Pmf::uniform(0, 30);
        let b = Pmf::from_impulses(vec![(5, 0.25), (40, 0.75)]).unwrap();
        let auto = a.convolve(&b);
        let dense = convolve_dense_forced(&a, &b);
        let sparse = convolve_sparse_forced(&a, &b);
        assert_eq!(auto, dense);
        assert_eq!(dense.len(), sparse.len());
        for (d, s) in dense.iter().zip(sparse.iter()) {
            assert_eq!(d.t, s.t);
            assert!(close(d.p, s.p));
        }
        assert!(convolve_dense_forced(&Pmf::empty(), &a).is_empty());
        assert!(convolve_sparse_forced(&a, &Pmf::empty()).is_empty());
    }
}
