//! Zero-allocation fused chain stepping — the engine's hot path.
//!
//! One step of a machine-queue completion-time chain is Eq (1) followed by
//! Eq (2) and compaction:
//!
//! 1. deadline-aware convolution of the predecessor completion PMF with the
//!    task's execution PMF ([`crate::deadline_convolve`]);
//! 2. the chance of success — mass strictly before the deadline — read off
//!    the *raw* (uncompacted) result so the deadline boundary is exact;
//! 3. compaction of the result before it feeds the next step.
//!
//! Done naively that is three materialisations per step: a raw pair vector
//! that gets sorted, a coalesced [`Pmf`], and a compacted clone. The
//! [`ChainScratch`] here makes one pass instead: raw `(tick, mass)` products
//! are appended by the same generator as [`crate::deadline_convolve_into`],
//! accumulated into a reusable **dense tick-indexed buffer** (no sort), the
//! chance is summed during the sweep, and compaction rebins straight into a
//! ping-pong output buffer that becomes the next step's predecessor. No
//! allocation occurs after the buffers reach their steady-state sizes.
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so the *order* in which
//! colliding products are summed is part of the observable behaviour. The
//! canonical order is **generation order**: ascending predecessor tick,
//! then ascending execution tick (the order `deadline_convolve_into`
//! appends). The dense accumulator preserves it by construction, and the
//! sparse fallback (support span above [`crate::DENSE_SPAN_LIMIT`]) is the
//! shared [`coalesce`](crate::ops) path, so [`crate::deadline_convolve`]
//! and every [`ChainScratch`] method produce **bit-identical** results —
//! `tests/` in `taskdrop_model` enforce this against the naive chain.

use crate::compact::Compaction;
use crate::ops::{coalesce_into, product_capacity, DENSE_SPAN_LIMIT};
use crate::pmf::{Impulse, Pmf};
use crate::Tick;

/// Accumulates raw `(tick, mass)` products into coalesced, sorted impulses.
///
/// Chooses the same dense/sparse split as [`Pmf::convolve`]: when the
/// support span fits [`DENSE_SPAN_LIMIT`], products are scattered into a
/// zeroed tick-indexed buffer (`O(span + pairs)`, no sort) which preserves
/// generation order for colliding ticks; otherwise the pairs are sorted and
/// merged (the pre-existing sparse path). `pairs` is consumed (left empty),
/// `out` receives the result.
pub(crate) fn accumulate(pairs: &mut Vec<(Tick, f64)>, acc: &mut Vec<f64>, out: &mut Vec<Impulse>) {
    out.clear();
    let Some(&(first_t, _)) = pairs.first() else {
        return;
    };
    let mut lo = first_t;
    let mut hi = first_t;
    for &(t, _) in pairs.iter() {
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let span = hi - lo + 1;
    if span <= DENSE_SPAN_LIMIT {
        acc.clear();
        acc.resize(span as usize, 0.0);
        for &(t, p) in pairs.iter() {
            acc[(t - lo) as usize] += p;
        }
        for (off, &p) in acc.iter().enumerate() {
            if p > 0.0 {
                out.push(Impulse { t: lo + off as Tick, p });
            }
        }
        pairs.clear();
    } else {
        coalesce_into(pairs, out);
    }
}

/// Sum of impulse masses strictly before `deadline`, in ascending tick
/// order — the same summation [`Pmf::mass_before`] performs.
fn chance_before(raw: &[Impulse], deadline: Tick) -> f64 {
    let mut sum = 0.0f64;
    for i in raw {
        if i.t >= deadline {
            break;
        }
        sum += i.p;
    }
    sum
}

/// Appends the raw Eq (1) products of `prev ⊛ exec` under `deadline` into
/// `out` (cleared first); slice-level twin of
/// [`crate::deadline_convolve_into`].
pub(crate) fn push_products(
    prev: &[Impulse],
    exec: &[Impulse],
    deadline: Tick,
    out: &mut Vec<(Tick, f64)>,
) {
    out.clear();
    for pi in prev {
        if pi.t < deadline {
            // Task starts at pi.t; completion = start + execution time.
            for ei in exec {
                out.push((pi.t + ei.t, pi.p * ei.p));
            }
        } else {
            // Reactive drop: machine is free at the predecessor's completion.
            out.push((pi.t, pi.p));
        }
    }
}

/// Reusable scratch buffers for fused chain stepping.
///
/// Owns five buffers: the raw product pairs, the dense accumulator, the
/// uncompacted result, and a ping-pong pair (`cur`/`next`) holding the
/// current and upcoming predecessor completion. All buffers are cleared and
/// refilled per step but never shrink, so a steady-state chain evaluation
/// performs no heap allocation.
///
/// Ownership rule: `cur` (exposed via [`ChainScratch::completion`]) is only
/// valid between [`ChainScratch::begin`]/[`ChainScratch::step`] calls; the
/// one-shot helpers ([`ChainScratch::step_pmf`], [`ChainScratch::chance_of`])
/// clobber the internal work buffers but leave `cur` untouched, so they can
/// be interleaved with an in-progress chain.
#[derive(Debug, Default, Clone)]
pub struct ChainScratch {
    pairs: Vec<(Tick, f64)>,
    acc: Vec<f64>,
    raw: Vec<Impulse>,
    cur: Vec<Impulse>,
    next: Vec<Impulse>,
}

impl ChainScratch {
    /// Fresh scratch with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        ChainScratch::default()
    }

    /// Starts a chain: the predecessor completion becomes `base`.
    pub fn begin(&mut self, base: &Pmf) {
        self.cur.clear();
        self.cur.extend_from_slice(&base.impulses);
    }

    /// Advances the chain by one task: Eq (1) against the current
    /// predecessor, Eq (2) on the raw result, compaction into the new
    /// predecessor. Returns the chance of success.
    pub fn step(&mut self, exec: &Pmf, deadline: Tick, compaction: Compaction) -> f64 {
        let ChainScratch { pairs, acc, raw, cur, next } = self;
        push_products(cur, &exec.impulses, deadline, pairs);
        accumulate(pairs, acc, raw);
        let chance = chance_before(raw, deadline);
        compaction.apply_into(raw, next);
        std::mem::swap(cur, next);
        chance
    }

    /// The current (compacted) predecessor completion.
    #[must_use]
    pub fn completion(&self) -> &[Impulse] {
        &self.cur
    }

    /// Materialises the current predecessor completion as a [`Pmf`].
    #[must_use]
    pub fn completion_pmf(&self) -> Pmf {
        Pmf::from_sorted_unchecked(self.cur.clone())
    }

    /// One-shot fused step from an arbitrary predecessor: returns the
    /// chance of success and the compacted completion, without touching the
    /// chain state set up by [`ChainScratch::begin`]. Bit-identical to
    /// `compaction.apply(&deadline_convolve(prev, exec, deadline))` plus
    /// `raw.mass_before(deadline)`.
    pub fn step_pmf(
        &mut self,
        prev: &Pmf,
        exec: &Pmf,
        deadline: Tick,
        compaction: Compaction,
    ) -> (f64, Pmf) {
        let ChainScratch { pairs, acc, raw, next, .. } = self;
        push_products(&prev.impulses, &exec.impulses, deadline, pairs);
        accumulate(pairs, acc, raw);
        let chance = chance_before(raw, deadline);
        compaction.apply_into(raw, next);
        (chance, Pmf::from_sorted_unchecked(next.clone()))
    }

    /// Chance of success of `prev ⊛ exec` under `deadline` (Eq 1 + Eq 2)
    /// without materialising the completion at all — the admission gate's
    /// and the optimal search's bound primitive.
    pub fn chance_of(&mut self, prev: &Pmf, exec: &Pmf, deadline: Tick) -> f64 {
        let ChainScratch { pairs, acc, raw, .. } = self;
        push_products(&prev.impulses, &exec.impulses, deadline, pairs);
        accumulate(pairs, acc, raw);
        chance_before(raw, deadline)
    }
}

/// Computes Eq (1) into a freshly allocated [`Pmf`] via the shared kernel.
/// This is the body of [`crate::deadline_convolve`]; it lives here so the
/// naive entry point and [`ChainScratch`] cannot drift apart.
pub(crate) fn deadline_convolve_impl(prev: &Pmf, exec: &Pmf, deadline: Tick) -> Pmf {
    let mut pairs: Vec<(Tick, f64)> =
        Vec::with_capacity(product_capacity(prev.len(), exec.len().max(1)));
    push_products(&prev.impulses, &exec.impulses, deadline, &mut pairs);
    let mut acc = Vec::new();
    let mut raw = Vec::new();
    accumulate(&mut pairs, &mut acc, &mut raw);
    Pmf::from_sorted_unchecked(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline_convolve;

    fn bits(p: &Pmf) -> Vec<(Tick, u64)> {
        p.iter().map(|i| (i.t, i.p.to_bits())).collect()
    }

    #[test]
    fn step_pmf_matches_naive_pipeline_bitwise() {
        let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
        let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
        let mut scratch = ChainScratch::new();
        for compaction in [Compaction::None, Compaction::MaxImpulses(2), Compaction::BinWidth(3)] {
            let raw = deadline_convolve(&prev, &exec, 13);
            let naive = compaction.apply(&raw);
            let (chance, fused) = scratch.step_pmf(&prev, &exec, 13, compaction);
            assert_eq!(bits(&naive), bits(&fused));
            assert_eq!(chance.to_bits(), raw.mass_before(13).to_bits());
        }
    }

    #[test]
    fn stepping_matches_repeated_naive_steps_bitwise() {
        let base = Pmf::uniform(0, 40);
        let exec = Pmf::from_impulses(vec![(8, 0.5), (16, 0.5)]).unwrap();
        let compaction = Compaction::MaxImpulses(16);
        let mut scratch = ChainScratch::new();
        scratch.begin(&base);
        let mut prev = base;
        for k in 0..5u64 {
            let deadline = 60 + 25 * k;
            let raw = deadline_convolve(&prev, &exec, deadline);
            let naive_chance = raw.mass_before(deadline);
            prev = compaction.apply(&raw);
            let chance = scratch.step(&exec, deadline, compaction);
            assert_eq!(chance.to_bits(), naive_chance.to_bits(), "step {k}");
            assert_eq!(bits(&prev), bits(&scratch.completion_pmf()), "step {k}");
        }
    }

    #[test]
    fn chance_of_matches_mass_before() {
        let prev = Pmf::uniform(5, 60);
        let exec = Pmf::from_impulses(vec![(3, 0.25), (9, 0.75)]).unwrap();
        let mut scratch = ChainScratch::new();
        for d in [0, 10, 35, 70, 200] {
            let naive = deadline_convolve(&prev, &exec, d).mass_before(d);
            assert_eq!(scratch.chance_of(&prev, &exec, d).to_bits(), naive.to_bits());
        }
    }

    #[test]
    fn one_shot_helpers_do_not_disturb_chain_state() {
        let base = Pmf::point(5);
        let exec = Pmf::point(10);
        let mut scratch = ChainScratch::new();
        scratch.begin(&base);
        scratch.step(&exec, 100, Compaction::None);
        let before = scratch.completion_pmf();
        let _ = scratch.step_pmf(&Pmf::uniform(0, 9), &exec, 50, Compaction::MaxImpulses(4));
        let _ = scratch.chance_of(&Pmf::uniform(0, 9), &exec, 50);
        assert_eq!(before, scratch.completion_pmf());
        assert_eq!(scratch.step(&exec, 100, Compaction::None), 1.0);
        assert_eq!(scratch.completion_pmf(), Pmf::point(25));
    }

    #[test]
    fn sparse_fallback_matches_naive() {
        // Span far beyond DENSE_SPAN_LIMIT forces the coalesce path.
        let prev = Pmf::from_impulses(vec![(0, 0.5), (200_000, 0.5)]).unwrap();
        let exec = Pmf::from_impulses(vec![(1, 0.5), (100_000, 0.5)]).unwrap();
        let mut scratch = ChainScratch::new();
        let (chance, fused) = scratch.step_pmf(&prev, &exec, 150_000, Compaction::None);
        let raw = deadline_convolve(&prev, &exec, 150_000);
        assert_eq!(bits(&raw), bits(&fused));
        assert_eq!(chance.to_bits(), raw.mass_before(150_000).to_bits());
    }

    #[test]
    fn empty_inputs() {
        let mut scratch = ChainScratch::new();
        let (chance, out) = scratch.step_pmf(&Pmf::empty(), &Pmf::point(1), 10, Compaction::None);
        assert_eq!(chance, 0.0);
        assert!(out.is_empty());
        scratch.begin(&Pmf::empty());
        assert_eq!(scratch.step(&Pmf::point(1), 10, Compaction::None), 0.0);
        assert!(scratch.completion().is_empty());
    }
}
