//! Deadline-aware convolution — Equation (1) of the paper, reused verbatim by
//! Equations (4) and (5) for provisional-drop analysis.
//!
//! Semantics: let `prev` be the completion-time PMF of the task ahead in the
//! machine queue and `exec` the execution-time PMF of the pending task with
//! deadline `deadline`.
//!
//! * Predecessor mass landing **before** the deadline lets the task start, so
//!   it convolves with `exec` (including outcomes that finish late — starting
//!   on time does not guarantee finishing on time).
//! * Predecessor mass landing **at or after** the deadline means the task is
//!   *reactively dropped* in that branch of the future: the machine becomes
//!   free at the predecessor's completion time, so that mass passes through
//!   unchanged.
//!
//! The result is the completion-time PMF "of the task slot": a mixture of
//! "task ran" and "task was dropped, slot freed at predecessor completion".
//!
//! **Mass contract.** The output's total mass is exactly
//!
//! ```text
//!   |out| = |prev ≥ deadline| + |prev < deadline| · |exec|
//! ```
//!
//! where `|·|` is total mass: pass-through mass survives verbatim, and
//! on-time mass multiplies by `exec`'s mass (convolution of
//! sub-distributions). When `exec` is a proper distribution (mass 1 — every
//! PET matrix cell is) the operation is a Markov kernel and total mass is
//! conserved exactly. A *sub*-normalised `exec` models a task that may never
//! complete; in the degenerate empty-`exec` case the whole on-time branch is
//! absorbed and only late predecessor mass passes through (see
//! `empty_exec_passes_only_late_mass`).

use crate::chain::deadline_convolve_impl;
use crate::pmf::Pmf;
use crate::Tick;

/// Computes Equation (1): completion-time PMF of a pending task with
/// execution PMF `exec` and deadline `deadline`, queued behind a predecessor
/// whose completion PMF is `prev`.
///
/// "Can start before the deadline" is the strict comparison `k < deadline`,
/// consistent with [`Pmf::mass_before`] and Figure 2 of the paper.
///
/// Total mass follows the module-level mass contract: conserved exactly for
/// a proper `exec`, scaled on the on-time branch for a sub-normalised one.
///
/// Colliding products are summed in *generation order* (ascending
/// predecessor tick, then ascending execution tick) through the same fused
/// kernel as [`crate::ChainScratch`], so naive and scratch-based chain
/// evaluations are bit-identical.
#[must_use]
pub fn deadline_convolve(prev: &Pmf, exec: &Pmf, deadline: Tick) -> Pmf {
    deadline_convolve_impl(prev, exec, deadline)
}

/// Variant of [`deadline_convolve`] that appends the raw `(tick, mass)`
/// products into `out` (cleared first) so callers can reuse the allocation
/// and control the accumulation themselves. This is the product generator
/// behind both [`deadline_convolve`] and the fused chain kernel
/// ([`crate::ChainScratch`]); the append order (ascending predecessor tick,
/// then ascending execution tick) is the canonical summation order of the
/// determinism contract.
pub fn deadline_convolve_into(prev: &Pmf, exec: &Pmf, deadline: Tick, out: &mut Vec<(Tick, f64)>) {
    crate::chain::push_products(&prev.impulses, &exec.impulses, deadline, out);
}

/// Chance of success (Equation (2)): probability that a task with
/// completion-time PMF `completion` finishes strictly before `deadline`.
#[must_use]
pub fn chance_of_success(completion: &Pmf, deadline: Tick) -> f64 {
    completion.mass_before(deadline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    /// Reproduces Figure 2 of the paper exactly.
    #[test]
    fn paper_figure2() {
        let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
        let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
        let c = deadline_convolve(&prev, &exec, 13);
        let pairs = c.to_pairs();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].0, 11);
        assert!(close(pairs[0].1, 0.36));
        assert_eq!(pairs[1].0, 12);
        assert!(close(pairs[1].1, 0.42));
        assert_eq!(pairs[2].0, 13);
        assert!(close(pairs[2].1, 0.20));
        assert_eq!(pairs[3].0, 14);
        assert!(close(pairs[3].1, 0.02));
        // Chance of success annotated in the figure: mass strictly before 13.
        assert!(close(chance_of_success(&c, 13), 0.78));
    }

    #[test]
    fn conserves_mass() {
        let exec = Pmf::from_impulses(vec![(3, 0.5), (7, 0.5)]).unwrap();
        let prev = Pmf::from_impulses(vec![(0, 0.25), (10, 0.25), (20, 0.5)]).unwrap();
        for deadline in [0, 1, 5, 10, 15, 21, 100] {
            let c = deadline_convolve(&prev, &exec, deadline);
            assert!(close(c.total_mass(), 1.0), "deadline={deadline}");
        }
    }

    #[test]
    fn all_mass_after_deadline_passes_through() {
        // Predecessor finishes at 20 or later; deadline 15 -> task never runs.
        let exec = Pmf::point(5);
        let prev = Pmf::from_impulses(vec![(20, 0.5), (30, 0.5)]).unwrap();
        let c = deadline_convolve(&prev, &exec, 15);
        assert_eq!(c, prev);
        assert_eq!(chance_of_success(&c, 15), 0.0);
    }

    #[test]
    fn all_mass_before_deadline_is_plain_convolution() {
        let exec = Pmf::from_impulses(vec![(2, 0.5), (4, 0.5)]).unwrap();
        let prev = Pmf::from_impulses(vec![(1, 0.5), (3, 0.5)]).unwrap();
        let c = deadline_convolve(&prev, &exec, 100);
        assert_eq!(c, prev.convolve(&exec));
    }

    #[test]
    fn boundary_start_exactly_at_deadline_is_dropped() {
        // Predecessor completes exactly at the deadline: task cannot start.
        let exec = Pmf::point(1);
        let prev = Pmf::point(10);
        let c = deadline_convolve(&prev, &exec, 10);
        assert_eq!(c, prev);
        // One tick of slack lets it run.
        let c = deadline_convolve(&prev, &exec, 11);
        assert_eq!(c, Pmf::point(11));
    }

    #[test]
    fn late_finish_mass_is_kept_not_passed_through() {
        // Starts on time (prev=5 < 10) but may finish late (exec up to 20).
        let exec = Pmf::from_impulses(vec![(1, 0.5), (20, 0.5)]).unwrap();
        let prev = Pmf::point(5);
        let c = deadline_convolve(&prev, &exec, 10);
        assert!(close(c.at(6), 0.5)); // on time
        assert!(close(c.at(25), 0.5)); // late, but it did run
        assert!(close(chance_of_success(&c, 10), 0.5));
    }

    #[test]
    fn empty_prev_yields_empty() {
        let exec = Pmf::point(1);
        let c = deadline_convolve(&Pmf::empty(), &exec, 10);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_exec_passes_only_late_mass() {
        // Degenerate: a task with no execution-time model contributes nothing
        // for on-time branches; late branches still pass through. This is the
        // module-level mass contract with |exec| = 0.
        let prev = Pmf::from_impulses(vec![(5, 0.5), (20, 0.5)]).unwrap();
        let c = deadline_convolve(&prev, &Pmf::empty(), 10);
        assert_eq!(c.to_pairs(), vec![(20, 0.5)]);
        let expected = prev.mass_at_or_after(10) + prev.mass_before(10) * 0.0;
        assert!(close(c.total_mass(), expected));
    }

    /// The module-level mass contract for a sub-normalised `exec`:
    /// `|out| = |prev >= d| + |prev < d| * |exec|`.
    #[test]
    fn subnormal_exec_scales_only_on_time_mass() {
        let prev = Pmf::from_impulses(vec![(0, 0.25), (10, 0.25), (20, 0.5)]).unwrap();
        let exec = Pmf::point(3).scale_mass(0.6);
        for deadline in [0, 5, 15, 25] {
            let c = deadline_convolve(&prev, &exec, deadline);
            let expected =
                prev.mass_at_or_after(deadline) + prev.mass_before(deadline) * exec.total_mass();
            assert!(close(c.total_mass(), expected), "deadline={deadline}");
        }
    }

    /// Dropping the predecessor (replacing `prev` by something stochastically
    /// earlier) can only improve the chance of success of the follower.
    #[test]
    fn earlier_predecessor_never_hurts() {
        let exec = Pmf::from_impulses(vec![(2, 0.3), (5, 0.7)]).unwrap();
        let slow = Pmf::from_impulses(vec![(8, 0.5), (12, 0.5)]).unwrap();
        let fast = Pmf::from_impulses(vec![(4, 0.5), (8, 0.5)]).unwrap(); // dominates
        for deadline in [5, 9, 11, 13, 15, 20] {
            let p_slow = chance_of_success(&deadline_convolve(&slow, &exec, deadline), deadline);
            let p_fast = chance_of_success(&deadline_convolve(&fast, &exec, deadline), deadline);
            assert!(p_fast >= p_slow - 1e-12, "deadline={deadline}");
        }
    }
}
