//! Discrete probability mass functions (PMFs) over integer time ticks.
//!
//! This crate is the probabilistic substrate of the `taskdrop` project, a
//! reproduction of *"Autonomous Task Dropping Mechanism to Achieve Robustness
//! in Heterogeneous Computing Systems"* (Mokhtari, Denninnart, Amini Salehi,
//! 2020). The paper models the execution time of each task type on each
//! machine type as a discrete random variable stored as a PMF (an array of
//! *impulses*), and derives task **completion-time** PMFs by convolving
//! execution-time PMFs along a machine queue.
//!
//! The centrepiece is [`deadline_convolve`], the paper's Equation (1): a
//! convolution in which probability mass of the predecessor that lands at or
//! after the task's deadline *passes through* unchanged, modelling the
//! reactive drop of a task that can no longer start before its deadline.
//!
//! # Quick example (Figure 2 of the paper)
//!
//! ```
//! use taskdrop_pmf::{Pmf, deadline_convolve};
//!
//! // Execution-time PMF of task i: P(E=1)=0.6, P(E=2)=0.4
//! let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
//! // Completion-time PMF of task i-1.
//! let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
//! // Deadline of task i.
//! let deadline = 13;
//!
//! let completion = deadline_convolve(&prev, &exec, deadline);
//! let expected = [(11, 0.36), (12, 0.42), (13, 0.2), (14, 0.02)];
//! for ((t, p), (et, ep)) in completion.to_pairs().into_iter().zip(expected) {
//!     assert_eq!(t, et);
//!     assert!((p - ep).abs() < 1e-12);
//! }
//! // Chance of success: mass strictly before the deadline.
//! assert!((completion.mass_before(deadline) - 0.78).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod chain;
mod compact;
mod deadline;
mod error;
mod moments;
mod ops;
mod pmf;

pub use chain::ChainScratch;
pub use compact::Compaction;
pub use deadline::{chance_of_success, deadline_convolve, deadline_convolve_into};
pub use error::PmfError;
pub use ops::{conv_budget, convolve_dense_forced, convolve_sparse_forced, DENSE_SPAN_LIMIT};
pub use pmf::{Impulse, Pmf, MASS_EPSILON};

/// Discrete simulation time, in ticks (1 tick = 1 ms in the simulator).
pub type Tick = u64;

/// Probability value in `[0, 1]`.
pub type Prob = f64;
