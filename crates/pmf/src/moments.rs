//! Moments of a PMF: mean, variance, standard deviation.
//!
//! For sub-distributions (total mass `< 1`) the moments are those of the
//! *conditional* distribution — mass-weighted averages divided by the total
//! mass — which is what scheduling heuristics need when a completion PMF has
//! been pruned.

use crate::pmf::Pmf;

impl Pmf {
    /// Mass-weighted mean tick. `None` for the empty PMF.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let total = self.total_mass();
        if total == 0.0 {
            return None;
        }
        let s: f64 = self.impulses.iter().map(|i| i.t as f64 * i.p).sum();
        Some(s / total)
    }

    /// Conditional variance. `None` for the empty PMF.
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        let total = self.total_mass();
        let s: f64 = self
            .impulses
            .iter()
            .map(|i| {
                let d = i.t as f64 - mean;
                d * d * i.p
            })
            .sum();
        Some(s / total)
    }

    /// Conditional standard deviation. `None` for the empty PMF.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mass_moments() {
        let p = Pmf::point(42);
        assert_eq!(p.mean(), Some(42.0));
        assert_eq!(p.variance(), Some(0.0));
        assert_eq!(p.std_dev(), Some(0.0));
    }

    #[test]
    fn uniform_mean() {
        let p = Pmf::uniform(0, 10);
        assert!((p.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_like_variance() {
        // Mass 0.5 at 0 and 0.5 at 2: mean 1, variance 1.
        let p = Pmf::from_impulses(vec![(0, 0.5), (2, 0.5)]).unwrap();
        assert!((p.mean().unwrap() - 1.0).abs() < 1e-12);
        assert!((p.variance().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subdistribution_uses_conditional_mean() {
        let p = Pmf::point(10).scale_mass(0.25);
        assert_eq!(p.mean(), Some(10.0));
    }

    #[test]
    fn empty_moments_are_none() {
        let e = Pmf::empty();
        assert_eq!(e.mean(), None);
        assert_eq!(e.variance(), None);
        assert_eq!(e.std_dev(), None);
    }
}
