//! Impulse-count compaction.
//!
//! Section IV-F of the paper notes that convolving PMFs with `|N1|` and
//! `|N2|` impulses can yield up to `|N1|·|N2|` impulses, so completion-time
//! PMFs grow along a machine queue. The paper's simulator keeps this in check
//! through histogram discretisation; we make the policy explicit and
//! configurable, and ablate it in `taskdrop-bench/benches/compaction.rs`.
//!
//! Compaction merges nearby impulses into their mass-weighted mean tick:
//! total mass is preserved *exactly* (same summation order), and the mean
//! moves by at most half a tick per merged bin (rounding of the weighted
//! mean). Deadline queries (`mass_before`) can move by at most the mass that
//! sat within one bin width of the deadline.

use crate::pmf::{Impulse, Pmf};
use crate::Tick;

/// Policy limiting the number of impulses a PMF may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Compaction {
    /// Never merge impulses (exact, exponential growth along queues).
    None,
    /// Rebin so at most `max` impulses remain (bin width derived from the
    /// support span). `max` must be at least 2.
    MaxImpulses(usize),
    /// Merge impulses into fixed-width bins of `width` ticks. `width` must be
    /// at least 1 (1 is a no-op since ticks are integers).
    BinWidth(Tick),
}

impl Default for Compaction {
    /// 64 impulses: the paper reports impulse counts in practice stay far
    /// below the worst case; 64 keeps deadline-mass error negligible for the
    /// 50–200 ms execution-time scale while bounding convolution cost.
    fn default() -> Self {
        Compaction::MaxImpulses(64)
    }
}

impl Compaction {
    /// Applies the policy to `pmf`, returning a possibly-smaller PMF.
    #[must_use]
    pub fn apply(self, pmf: &Pmf) -> Pmf {
        let mut out: Vec<Impulse> = Vec::with_capacity(pmf.len());
        self.apply_into(&pmf.impulses, &mut out);
        Pmf::from_sorted_unchecked(out)
    }

    /// Buffer-reusing twin of [`Compaction::apply`]: compacts the sorted,
    /// coalesced `raw` impulses into `out` (cleared first). Shared by the
    /// fused chain kernel ([`crate::ChainScratch`]) so the fused and naive
    /// paths compact with bit-identical arithmetic.
    pub(crate) fn apply_into(self, raw: &[Impulse], out: &mut Vec<Impulse>) {
        match self {
            Compaction::None => copy_into(raw, out),
            Compaction::MaxImpulses(max) => {
                assert!(max >= 2, "MaxImpulses requires max >= 2");
                if raw.len() <= max {
                    return copy_into(raw, out);
                }
                let lo = raw[0].t;
                let hi = raw[raw.len() - 1].t;
                let span = hi - lo + 1;
                // ceil(span / max) guarantees at most `max` bins.
                let width = span.div_ceil(max as Tick).max(1);
                rebin_into(raw, width, out);
            }
            Compaction::BinWidth(width) => {
                assert!(width >= 1, "BinWidth requires width >= 1");
                if width == 1 {
                    return copy_into(raw, out);
                }
                rebin_into(raw, width, out);
            }
        }
    }
}

fn copy_into(raw: &[Impulse], out: &mut Vec<Impulse>) {
    out.clear();
    out.extend_from_slice(raw);
}

/// Merges impulses into bins of `width` ticks anchored at the support
/// minimum; each bin collapses to its mass-weighted mean tick (rounded to the
/// nearest tick, which stays inside the bin). Writes into `out` (cleared
/// first).
fn rebin_into(raw: &[Impulse], width: Tick, out: &mut Vec<Impulse>) {
    out.clear();
    let Some(first) = raw.first() else {
        return;
    };
    let lo = first.t;
    let mut bin_idx: Tick = 0;
    let mut bin_mass = 0.0f64;
    let mut bin_moment = 0.0f64; // sum of (t - lo) * p, kept small for accuracy
    let flush = |out: &mut Vec<Impulse>, mass: f64, moment: f64| {
        if mass > 0.0 {
            let mean_off = (moment / mass).round() as Tick;
            out.push(Impulse { t: lo + mean_off, p: mass });
        }
    };
    for i in raw {
        let idx = (i.t - lo) / width;
        if idx != bin_idx {
            flush(out, bin_mass, bin_moment);
            bin_idx = idx;
            bin_mass = 0.0;
            bin_moment = 0.0;
        }
        bin_mass += i.p;
        bin_moment += (i.t - lo) as f64 * i.p;
    }
    flush(out, bin_mass, bin_moment);
    // Rounding the weighted mean keeps ticks inside their (half-open) bins,
    // and bins are processed in order, so the result is sorted and unique.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn none_is_identity() {
        let p = Pmf::uniform(0, 99);
        assert_eq!(Compaction::None.apply(&p), p);
    }

    #[test]
    fn under_limit_is_identity() {
        let p = Pmf::uniform(0, 9);
        assert_eq!(Compaction::MaxImpulses(10).apply(&p), p);
    }

    #[test]
    fn max_impulses_respects_limit() {
        let p = Pmf::uniform(0, 999);
        for max in [2, 4, 16, 64, 500] {
            let c = Compaction::MaxImpulses(max).apply(&p);
            assert!(c.len() <= max, "max={max} got {}", c.len());
        }
    }

    #[test]
    fn compaction_preserves_mass_exactly_for_uniform() {
        let p = Pmf::uniform(0, 999);
        let c = Compaction::MaxImpulses(16).apply(&p);
        assert!((c.total_mass() - p.total_mass()).abs() < 1e-12);
    }

    #[test]
    fn compaction_preserves_mean_approximately() {
        let p = Pmf::uniform(100, 1099);
        let c = Compaction::MaxImpulses(8).apply(&p);
        let err = (c.mean().unwrap() - p.mean().unwrap()).abs();
        assert!(err <= 0.5, "mean moved by {err}");
    }

    #[test]
    fn bin_width_merges_neighbors() {
        let p = Pmf::from_impulses(vec![(10, 0.25), (11, 0.25), (20, 0.5)]).unwrap();
        let c = Compaction::BinWidth(5).apply(&p);
        // 10 and 11 share a bin; weighted mean is 10.5 -> rounds to 10 or 11.
        assert_eq!(c.len(), 2);
        assert!(close(c.total_mass(), 1.0));
        let first = c.iter().next().unwrap();
        assert!(first.t == 10 || first.t == 11);
        assert!(close(first.p, 0.5));
    }

    #[test]
    fn bin_width_one_is_identity() {
        let p = Pmf::uniform(3, 8);
        assert_eq!(Compaction::BinWidth(1).apply(&p), p);
    }

    #[test]
    fn empty_stays_empty() {
        assert!(Compaction::MaxImpulses(4).apply(&Pmf::empty()).is_empty());
        assert!(Compaction::BinWidth(10).apply(&Pmf::empty()).is_empty());
    }

    #[test]
    fn point_mass_unchanged() {
        let p = Pmf::point(1234);
        assert_eq!(Compaction::MaxImpulses(2).apply(&p), p);
        assert_eq!(Compaction::BinWidth(100).apply(&p), p);
    }

    #[test]
    fn default_is_64_impulses() {
        assert_eq!(Compaction::default(), Compaction::MaxImpulses(64));
    }
}
