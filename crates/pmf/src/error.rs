use std::fmt;

/// Errors produced when constructing or validating a [`crate::Pmf`].
#[derive(Debug, Clone, PartialEq)]
pub enum PmfError {
    /// An impulse probability was negative.
    NegativeProbability {
        /// Time tick of the offending impulse.
        tick: crate::Tick,
        /// The negative probability value.
        prob: crate::Prob,
    },
    /// An impulse probability was NaN or infinite.
    NonFiniteProbability {
        /// Time tick of the offending impulse.
        tick: crate::Tick,
    },
    /// Total probability mass exceeds one beyond tolerance.
    MassExceedsOne {
        /// The offending total mass.
        total: f64,
    },
}

impl fmt::Display for PmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmfError::NegativeProbability { tick, prob } => {
                write!(f, "negative probability {prob} at tick {tick}")
            }
            PmfError::NonFiniteProbability { tick } => {
                write!(f, "non-finite probability at tick {tick}")
            }
            PmfError::MassExceedsOne { total } => {
                write!(f, "total probability mass {total} exceeds 1")
            }
        }
    }
}

impl std::error::Error for PmfError {}
