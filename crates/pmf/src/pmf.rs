use crate::{PmfError, Prob, Tick};

/// Tolerance used when checking that total probability mass does not exceed 1,
/// and when deciding whether a PMF is (still) normalised.
pub const MASS_EPSILON: f64 = 1e-6;

/// A single probability impulse: `P(X = t) = p`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Impulse {
    /// Time tick at which the impulse sits.
    pub t: Tick,
    /// Probability mass of the impulse (always `> 0` inside a [`Pmf`]).
    pub p: Prob,
}

/// A discrete probability mass function over integer time ticks.
///
/// Invariants maintained by every constructor and operation:
///
/// * impulses are sorted by tick, strictly increasing (no duplicate ticks);
/// * every impulse has finite probability `> 0` (zero-mass impulses are
///   coalesced away);
/// * total mass is at most `1 + MASS_EPSILON`.
///
/// Total mass *may* be below 1: conditioning and pruning produce
/// sub-distributions. The empty PMF (zero mass) is allowed and behaves as the
/// absorbing element of convolution.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(try_from = "Vec<(Tick, Prob)>", into = "Vec<(Tick, Prob)>"))]
pub struct Pmf {
    pub(crate) impulses: Vec<Impulse>,
}

impl Pmf {
    /// The empty PMF: no impulses, zero total mass.
    #[must_use]
    pub fn empty() -> Self {
        Pmf { impulses: Vec::new() }
    }

    /// A deterministic (point-mass) PMF: `P(X = t) = 1`.
    #[must_use]
    pub fn point(t: Tick) -> Self {
        Pmf { impulses: vec![Impulse { t, p: 1.0 }] }
    }

    /// Builds a PMF from `(tick, probability)` pairs.
    ///
    /// Pairs may be unsorted and may contain duplicate ticks (masses are
    /// summed). Zero-mass entries are discarded.
    ///
    /// # Errors
    ///
    /// Returns an error if any probability is negative or non-finite, or if
    /// the total mass exceeds `1 + MASS_EPSILON`.
    pub fn from_impulses(pairs: Vec<(Tick, Prob)>) -> Result<Self, PmfError> {
        let mut pairs = pairs;
        for &(t, p) in &pairs {
            if !p.is_finite() {
                return Err(PmfError::NonFiniteProbability { tick: t });
            }
            if p < 0.0 {
                return Err(PmfError::NegativeProbability { tick: t, prob: p });
            }
        }
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut impulses: Vec<Impulse> = Vec::with_capacity(pairs.len());
        for (t, p) in pairs {
            if p == 0.0 {
                continue;
            }
            match impulses.last_mut() {
                Some(last) if last.t == t => last.p += p,
                _ => impulses.push(Impulse { t, p }),
            }
        }
        let total: f64 = impulses.iter().map(|i| i.p).sum();
        if total > 1.0 + MASS_EPSILON {
            return Err(PmfError::MassExceedsOne { total });
        }
        Ok(Pmf { impulses })
    }

    /// Builds a PMF from raw weights, normalising them to total mass 1.
    ///
    /// Returns the empty PMF when all weights are zero.
    ///
    /// # Errors
    ///
    /// Returns an error if any weight is negative or non-finite.
    pub fn from_weights(pairs: Vec<(Tick, f64)>) -> Result<Self, PmfError> {
        for &(t, w) in &pairs {
            if !w.is_finite() {
                return Err(PmfError::NonFiniteProbability { tick: t });
            }
            if w < 0.0 {
                return Err(PmfError::NegativeProbability { tick: t, prob: w });
            }
        }
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        if total == 0.0 {
            return Ok(Pmf::empty());
        }
        let scaled = pairs.into_iter().map(|(t, w)| (t, w / total)).collect();
        Pmf::from_impulses(scaled)
    }

    /// Uniform PMF over the inclusive tick range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn uniform(lo: Tick, hi: Tick) -> Self {
        assert!(lo <= hi, "uniform range must satisfy lo <= hi");
        let n = hi - lo + 1;
        let p = 1.0 / n as f64;
        Pmf { impulses: (lo..=hi).map(|t| Impulse { t, p }).collect() }
    }

    /// Internal constructor from already-sorted, coalesced, positive impulses.
    /// Callers must uphold the `Pmf` invariants.
    pub(crate) fn from_sorted_unchecked(impulses: Vec<Impulse>) -> Self {
        debug_assert!(impulses.windows(2).all(|w| w[0].t < w[1].t), "impulses not sorted/unique");
        debug_assert!(impulses.iter().all(|i| i.p > 0.0 && i.p.is_finite()));
        Pmf { impulses }
    }

    /// Number of impulses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.impulses.len()
    }

    /// Whether this PMF carries no mass at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.impulses.is_empty()
    }

    /// Iterator over impulses in increasing tick order.
    pub fn iter(&self) -> impl Iterator<Item = &Impulse> + '_ {
        self.impulses.iter()
    }

    /// The impulses as `(tick, probability)` pairs in increasing tick order.
    #[must_use]
    pub fn to_pairs(&self) -> Vec<(Tick, Prob)> {
        self.impulses.iter().map(|i| (i.t, i.p)).collect()
    }

    /// Total probability mass (1 for a proper distribution).
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.impulses.iter().map(|i| i.p).sum()
    }

    /// Whether total mass is within `MASS_EPSILON` of 1.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        (self.total_mass() - 1.0).abs() <= MASS_EPSILON
    }

    /// `P(X = t)`, zero if no impulse sits at `t`.
    #[must_use]
    pub fn at(&self, t: Tick) -> Prob {
        match self.impulses.binary_search_by_key(&t, |i| i.t) {
            Ok(idx) => self.impulses[idx].p,
            Err(_) => 0.0,
        }
    }

    /// `P(X < t)` — probability mass strictly before tick `t`.
    ///
    /// This is the paper's Equation (2): the *chance of success* of a task
    /// with completion-time PMF `self` and deadline `t` (completion exactly
    /// at the deadline counts as late, matching Figure 2 of the paper).
    #[must_use]
    pub fn mass_before(&self, t: Tick) -> f64 {
        let idx = self.impulses.partition_point(|i| i.t < t);
        // `+ 0.0` normalises the empty sum, which is -0.0 in Rust.
        self.impulses[..idx].iter().map(|i| i.p).sum::<f64>() + 0.0
    }

    /// `P(X <= t)` — the cumulative distribution function.
    #[must_use]
    pub fn cdf(&self, t: Tick) -> f64 {
        let idx = self.impulses.partition_point(|i| i.t <= t);
        self.impulses[..idx].iter().map(|i| i.p).sum::<f64>() + 0.0
    }

    /// `P(X >= t)` — probability mass at or after tick `t`.
    #[must_use]
    pub fn mass_at_or_after(&self, t: Tick) -> f64 {
        let idx = self.impulses.partition_point(|i| i.t < t);
        self.impulses[idx..].iter().map(|i| i.p).sum::<f64>() + 0.0
    }

    /// Earliest tick carrying mass, `None` for the empty PMF.
    #[must_use]
    pub fn support_min(&self) -> Option<Tick> {
        self.impulses.first().map(|i| i.t)
    }

    /// Latest tick carrying mass, `None` for the empty PMF.
    #[must_use]
    pub fn support_max(&self) -> Option<Tick> {
        self.impulses.last().map(|i| i.t)
    }

    /// Smallest tick `t` such that `P(X <= t) >= q * total_mass`.
    ///
    /// `q` is clamped to `[0, 1]`. Returns `None` for the empty PMF.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<Tick> {
        if self.impulses.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total_mass();
        let mut acc = 0.0;
        for i in &self.impulses {
            acc += i.p;
            if acc + 1e-15 >= target {
                return Some(i.t);
            }
        }
        self.support_max()
    }

    /// Rescales all impulse masses by `factor` (must be finite and `>= 0`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the rescaled mass would exceed `1 + MASS_EPSILON`.
    #[must_use]
    pub fn scale_mass(&self, factor: f64) -> Pmf {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be finite and >= 0");
        if factor == 0.0 {
            return Pmf::empty();
        }
        let impulses: Vec<Impulse> =
            self.impulses.iter().map(|i| Impulse { t: i.t, p: i.p * factor }).collect();
        debug_assert!(impulses.iter().map(|i| i.p).sum::<f64>() <= 1.0 + MASS_EPSILON);
        Pmf { impulses }
    }

    /// Renormalises to total mass 1. Returns the empty PMF unchanged.
    #[must_use]
    pub fn normalize(&self) -> Pmf {
        let total = self.total_mass();
        if total == 0.0 {
            return Pmf::empty();
        }
        Pmf { impulses: self.impulses.iter().map(|i| Impulse { t: i.t, p: i.p / total }).collect() }
    }

    /// Conditions on `X >= t`: removes mass before `t` and renormalises.
    ///
    /// Returns `None` when no mass lies at or after `t` (the event has
    /// probability zero). This is used by the simulator to update the
    /// completion-time estimate of a task that is already running and has not
    /// finished by the current time.
    #[must_use]
    pub fn condition_at_least(&self, t: Tick) -> Option<Pmf> {
        let idx = self.impulses.partition_point(|i| i.t < t);
        let tail = &self.impulses[idx..];
        let mass: f64 = tail.iter().map(|i| i.p).sum();
        if mass <= 0.0 {
            return None;
        }
        Some(Pmf { impulses: tail.iter().map(|i| Impulse { t: i.t, p: i.p / mass }).collect() })
    }
}

impl TryFrom<Vec<(Tick, Prob)>> for Pmf {
    type Error = PmfError;

    fn try_from(pairs: Vec<(Tick, Prob)>) -> Result<Self, Self::Error> {
        Pmf::from_impulses(pairs)
    }
}

impl From<Pmf> for Vec<(Tick, Prob)> {
    fn from(pmf: Pmf) -> Self {
        pmf.to_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mass_basics() {
        let p = Pmf::point(7);
        assert_eq!(p.len(), 1);
        assert_eq!(p.at(7), 1.0);
        assert_eq!(p.at(6), 0.0);
        assert!(p.is_normalized());
        assert_eq!(p.support_min(), Some(7));
        assert_eq!(p.support_max(), Some(7));
    }

    #[test]
    fn from_impulses_sorts_and_coalesces() {
        let p = Pmf::from_impulses(vec![(5, 0.25), (3, 0.5), (5, 0.25)]).unwrap();
        assert_eq!(p.to_pairs(), vec![(3, 0.5), (5, 0.5)]);
    }

    #[test]
    fn from_impulses_drops_zero_mass() {
        let p = Pmf::from_impulses(vec![(1, 0.0), (2, 1.0)]).unwrap();
        assert_eq!(p.to_pairs(), vec![(2, 1.0)]);
    }

    #[test]
    fn from_impulses_rejects_negative() {
        let err = Pmf::from_impulses(vec![(1, -0.1)]).unwrap_err();
        assert!(matches!(err, PmfError::NegativeProbability { tick: 1, .. }));
    }

    #[test]
    fn from_impulses_rejects_nan() {
        let err = Pmf::from_impulses(vec![(9, f64::NAN)]).unwrap_err();
        assert!(matches!(err, PmfError::NonFiniteProbability { tick: 9 }));
    }

    #[test]
    fn from_impulses_rejects_excess_mass() {
        let err = Pmf::from_impulses(vec![(1, 0.8), (2, 0.4)]).unwrap_err();
        assert!(matches!(err, PmfError::MassExceedsOne { .. }));
    }

    #[test]
    fn from_weights_normalizes() {
        let p = Pmf::from_weights(vec![(1, 3.0), (2, 1.0)]).unwrap();
        assert!((p.at(1) - 0.75).abs() < 1e-12);
        assert!((p.at(2) - 0.25).abs() < 1e-12);
        assert!(p.is_normalized());
    }

    #[test]
    fn from_weights_all_zero_is_empty() {
        let p = Pmf::from_weights(vec![(1, 0.0), (2, 0.0)]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn uniform_has_equal_mass() {
        let p = Pmf::uniform(10, 13);
        assert_eq!(p.len(), 4);
        assert!(p.is_normalized());
        assert!((p.at(11) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mass_before_is_strict() {
        let p = Pmf::from_impulses(vec![(10, 0.4), (12, 0.6)]).unwrap();
        assert_eq!(p.mass_before(10), 0.0);
        assert!((p.mass_before(11) - 0.4).abs() < 1e-12);
        assert!((p.mass_before(12) - 0.4).abs() < 1e-12);
        assert!((p.mass_before(13) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_inclusive() {
        let p = Pmf::from_impulses(vec![(10, 0.4), (12, 0.6)]).unwrap();
        assert!((p.cdf(10) - 0.4).abs() < 1e-12);
        assert!((p.cdf(11) - 0.4).abs() < 1e-12);
        assert!((p.cdf(12) - 1.0).abs() < 1e-12);
        assert_eq!(p.cdf(9), 0.0);
    }

    #[test]
    fn mass_at_or_after_complements_mass_before() {
        let p = Pmf::from_impulses(vec![(1, 0.2), (5, 0.3), (9, 0.5)]).unwrap();
        for t in 0..12 {
            let total = p.mass_before(t) + p.mass_at_or_after(t);
            assert!((total - 1.0).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn quantile_median_of_uniform() {
        let p = Pmf::uniform(0, 9);
        assert_eq!(p.quantile(0.5), Some(4));
        assert_eq!(p.quantile(0.0), Some(0));
        assert_eq!(p.quantile(1.0), Some(9));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(Pmf::empty().quantile(0.5), None);
    }

    #[test]
    fn condition_at_least_renormalizes() {
        let p = Pmf::from_impulses(vec![(1, 0.5), (3, 0.25), (4, 0.25)]).unwrap();
        let c = p.condition_at_least(2).unwrap();
        assert_eq!(c.to_pairs().len(), 2);
        assert!((c.at(3) - 0.5).abs() < 1e-12);
        assert!((c.at(4) - 0.5).abs() < 1e-12);
        assert!(c.is_normalized());
    }

    #[test]
    fn condition_at_least_past_support_is_none() {
        let p = Pmf::point(5);
        assert!(p.condition_at_least(6).is_none());
        assert!(p.condition_at_least(5).is_some());
    }

    #[test]
    fn scale_mass_produces_subdistribution() {
        let p = Pmf::point(3).scale_mass(0.5);
        assert!((p.total_mass() - 0.5).abs() < 1e-12);
        assert!(!p.is_normalized());
        assert!(p.normalize().is_normalized());
    }

    #[test]
    fn scale_mass_zero_is_empty() {
        assert!(Pmf::point(3).scale_mass(0.0).is_empty());
    }

    #[test]
    fn empty_pmf_queries() {
        let e = Pmf::empty();
        assert_eq!(e.total_mass(), 0.0);
        assert_eq!(e.mass_before(100), 0.0);
        assert_eq!(e.cdf(100), 0.0);
        assert_eq!(e.support_min(), None);
        assert!(e.normalize().is_empty());
    }
}
