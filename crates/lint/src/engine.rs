//! The rule engine: classify files, apply rules in scope, honour pragmas,
//! collect per-crate ratchet counts, and run the workspace-level passes
//! (crate layering, checkpoint-schema fingerprints).

use std::path::{Path, PathBuf};

use crate::diag::{Finding, Severity};
use crate::items::{segment, ItemIndex};
use crate::layering::{self, LayeringSpec};
use crate::lexer::{scan, Scanned};
use crate::ratchet::{Ratchet, RatchetStatus};
use crate::rules::{match_all, rule, Scope, RULES};
use crate::schema::{self, SchemaSnapshot};
use crate::ttree::TokenTree;

/// Which target a file belongs to, inferred from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` of some crate — production code.
    Src,
    /// `tests/` — integration tests.
    Tests,
    /// `benches/` — bench targets.
    Benches,
    /// `examples/` — runnable demos (treated as production code).
    Examples,
}

/// A classified workspace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate name: `pmf`, `sim`, …, `bench`, `lint`, or `taskdrop`
    /// for the umbrella crate.
    pub krate: String,
    /// File section within the crate.
    pub section: Section,
}

/// Classify a workspace-relative, `/`-separated path. `None` means the
/// file is out of scope (vendor, fixtures, non-Rust).
#[must_use]
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.contains("/fixtures/") {
        return None;
    }
    let section_of = |s: &str| match s {
        "src" => Some(Section::Src),
        "tests" => Some(Section::Tests),
        "benches" => Some(Section::Benches),
        "examples" => Some(Section::Examples),
        _ => None,
    };
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, section, ..] => {
            Some(FileClass { krate: (*krate).to_string(), section: section_of(section)? })
        }
        [section, ..] if parts.len() >= 2 => {
            Some(FileClass { krate: "taskdrop".to_string(), section: section_of(section)? })
        }
        _ => None,
    }
}

const SIM_PATH: &[&str] = &[
    "pmf", "stats", "model", "sched", "core", "workload", "sim", "obs", "serve", "dag", "taskdrop",
];
const CONCURRENCY_CORE: &[&str] = &["sim", "model", "core", "pmf", "dag", "serve"];

impl Scope {
    /// Does this scope cover `class`'s crate?
    #[must_use]
    pub fn covers(self, class: &FileClass) -> bool {
        match self {
            Scope::SimPath => SIM_PATH.contains(&class.krate.as_str()),
            Scope::NonBench => class.krate != "bench",
            Scope::Everywhere => true,
            Scope::ConcurrencyCore => CONCURRENCY_CORE.contains(&class.krate.as_str()),
        }
    }
}

/// A parsed `lint:allow` pragma.
#[derive(Debug, Clone)]
struct Pragma {
    rule: &'static str,
    /// 1-based line the pragma suppresses (its own line for trailing
    /// pragmas, the next line for own-line pragmas).
    target_line: usize,
    /// Line the comment itself sits on (for unused-pragma diagnostics).
    comment_line: usize,
    used: bool,
}

/// Parse pragmas out of the scanned comments. Malformed pragmas become
/// `bare-allow` findings immediately.
fn parse_pragmas(
    path: &str,
    scanned: &Scanned,
    src_lines: &[&str],
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in &scanned.comments {
        let text = c.text.trim_start();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let excerpt = src_lines.get(c.line - 1).map_or(String::new(), |l| l.trim().to_string());
        let mut bare = |message: String| {
            findings.push(Finding {
                rule: "bare-allow",
                severity: Severity::Error,
                path: path.to_string(),
                line: c.line,
                col: 1,
                message,
                excerpt: excerpt.clone(),
                item: None,
            });
        };
        // Expect `(<rule>): <non-empty reason>`.
        let Some(rest) = rest.strip_prefix('(') else {
            bare(
                "`lint:allow` pragma without a rule: write `lint:allow(<rule>): <reason>`"
                    .to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bare("unterminated `lint:allow(` pragma".to_string());
            continue;
        };
        let rule_name = rest[..close].trim();
        let tail = &rest[close + 1..];
        let Some(known) = rule(rule_name) else {
            bare(format!(
                "`lint:allow({rule_name})` names an unknown rule; known rules: {}",
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            ));
            continue;
        };
        if known.id == "bare-allow" {
            bare("the `bare-allow` meta-rule cannot be suppressed".to_string());
            continue;
        }
        let reason = tail.strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => {
                pragmas.push(Pragma {
                    rule: known.id,
                    target_line: if c.own_line { c.line + 1 } else { c.line },
                    comment_line: c.line,
                    used: false,
                });
            }
            _ => bare(format!(
                "`lint:allow({rule_name})` without a reason: a bare allow is \
                 itself a violation — write `lint:allow({rule_name}): <why this \
                 site is safe>`"
            )),
        }
    }
    pragmas
}

/// Module segments of a file within its crate: `crates/serve/src/shard.rs`
/// → `["shard"]`, `src/a/b.rs` → `["a", "b"]`; `lib.rs`/`main.rs`/`mod.rs`
/// contribute nothing.
fn module_segments(rel: &str) -> Vec<&str> {
    let parts: Vec<&str> = rel.split('/').collect();
    let after_section = if parts.first() == Some(&"crates") { 3 } else { 1 };
    let mut segs = Vec::new();
    for (i, part) in parts.iter().enumerate().skip(after_section) {
        let is_last = i == parts.len() - 1;
        let seg = if is_last { part.strip_suffix(".rs").unwrap_or(part) } else { part };
        if is_last && matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        segs.push(seg);
    }
    segs
}

/// `crate::module::item` path for a finding at `offset`, when the offset
/// sits inside a segmented item.
fn item_path_at(class: &FileClass, rel: &str, items: &ItemIndex, offset: usize) -> Option<String> {
    let item = items.path_at(offset)?;
    let mut segs: Vec<&str> = vec![class.krate.as_str()];
    segs.extend(module_segments(rel));
    segs.push(item);
    Some(segs.join("::"))
}

/// The outcome of linting one file.
#[derive(Debug)]
pub struct FileReport {
    /// Error/Warn findings, in source order.
    pub findings: Vec<Finding>,
    /// Ratchet-rule findings (counted per crate, not individually fatal).
    pub ratchet_sites: Vec<Finding>,
}

/// Lint a single source text as if it lived at `rel_path` (workspace-
/// relative, `/`-separated). This is the unit the fixture tests drive.
#[must_use]
pub fn check_source(rel_path: &str, src: &str) -> FileReport {
    check_source_in(rel_path, src, None)
}

/// [`check_source`] with an optional layering spec: when present, source
/// edges (`use taskdrop_*`) are checked against the DAG too.
#[must_use]
pub fn check_source_in(
    rel_path: &str,
    src: &str,
    layering_spec: Option<&LayeringSpec>,
) -> FileReport {
    let mut findings = Vec::new();
    let mut ratchet_sites = Vec::new();
    let Some(class) = classify(rel_path) else {
        return FileReport { findings, ratchet_sites };
    };
    let scanned = scan(src);
    let tree = TokenTree::build(&scanned.masked);
    let items = segment(&scanned, &tree);
    let src_lines: Vec<&str> = src.lines().collect();
    let mut pragmas = parse_pragmas(rel_path, &scanned, &src_lines, &mut findings);

    let mut hits = match_all(&scanned.masked);
    if let Some(spec) = layering_spec {
        hits.extend(layering::source_hits(&scanned.masked, &class.krate, spec));
    }
    hits.sort_by_key(|h| (h.offset, h.rule));
    let mut seen: Vec<(&'static str, usize)> = Vec::new();
    for hit in hits {
        let meta = rule(hit.rule).expect("matchers only emit catalogued rules");
        if !meta.scope.covers(&class) {
            continue;
        }
        // `macro_rules!` definition bodies are token soup, not code: the
        // tokens only become code at expansion sites, which is where any
        // finding belongs.
        if items.in_macro_def(hit.offset) {
            continue;
        }
        let (line, col) = scanned.line_col(hit.offset);
        let in_test_code = matches!(class.section, Section::Tests | Section::Benches)
            || items.in_cfg_test(hit.offset);
        if !meta.in_tests && in_test_code {
            continue;
        }
        // Rules with textually overlapping patterns (e.g.
        // `std::thread::spawn` also matches `thread::spawn`) collapse to
        // one finding per line.
        if meta.dedup_per_line {
            if seen.contains(&(hit.rule, line)) {
                continue;
            }
            seen.push((hit.rule, line));
        }
        if let Some(p) = pragmas.iter_mut().find(|p| p.rule == hit.rule && p.target_line == line) {
            p.used = true;
            continue;
        }
        let finding = Finding {
            rule: meta.id,
            severity: meta.severity,
            path: rel_path.to_string(),
            line,
            col,
            message: hit.message,
            excerpt: src_lines.get(line - 1).map_or(String::new(), |l| l.trim().to_string()),
            item: item_path_at(&class, rel_path, &items, hit.offset),
        };
        if meta.severity == Severity::Ratchet {
            ratchet_sites.push(finding);
        } else {
            findings.push(finding);
        }
    }

    for p in pragmas.iter().filter(|p| !p.used) {
        findings.push(Finding {
            rule: "bare-allow",
            severity: Severity::Warn,
            path: rel_path.to_string(),
            line: p.comment_line,
            col: 1,
            message: format!(
                "unused `lint:allow({})` pragma — nothing to suppress on line {}; remove it",
                p.rule, p.target_line
            ),
            excerpt: src_lines
                .get(p.comment_line - 1)
                .map_or(String::new(), |l| l.trim().to_string()),
            item: None,
        });
    }

    findings.sort_by_key(|f| (f.line, f.col));
    FileReport { findings, ratchet_sites }
}

/// Full-workspace report.
#[derive(Debug)]
pub struct Report {
    /// Error/Warn findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Per-(rule, crate) ratchet status against the committed baseline.
    pub ratchets: Vec<RatchetStatus>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Current checkpoint-schema snapshot (`None` when the tree has no
    /// checkpoint root types — synthetic test trees).
    pub schema_current: Option<SchemaSnapshot>,
    /// Committed snapshot from `crates/lint/schema.json`, if present.
    pub schema_committed: Option<SchemaSnapshot>,
}

impl Report {
    /// `true` if CI must fail: any error-severity finding, or any ratchet
    /// count above (or missing from) the committed baseline.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
            || self.ratchets.iter().any(RatchetStatus::regressed)
    }
}

/// Directories scanned inside the workspace root. `vendor/` is explicitly
/// out: the stand-ins mirror third-party APIs and are exempt by design.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace under `root`, comparing ratchet counts against
/// `baseline` (as loaded from `crates/lint/ratchet.json`). Workspace-level
/// passes — crate layering and checkpoint-schema fingerprints — run when
/// their committed inputs exist (`crates/lint/layering.json`; the schema
/// pass runs whenever a checkpoint root type is present in the tree).
///
/// # Errors
/// Propagates I/O failures reading the tree or malformed committed files.
pub fn run_workspace(root: &Path, baseline: &Ratchet) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();

    let lint_dir = root.join("crates").join("lint");
    let layering_spec = LayeringSpec::load(&lint_dir.join("layering.json"))?;

    let mut findings = Vec::new();
    let mut ratchet_sites: Vec<Finding> = Vec::new();
    let mut type_defs: Vec<schema::TypeDef> = Vec::new();
    let mut versions: Vec<u32> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some(class) = classify(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(path)?;
        let mut report = check_source_in(&rel, &src, layering_spec.as_ref());
        findings.append(&mut report.findings);
        ratchet_sites.append(&mut report.ratchet_sites);

        // Schema inventory: production sources only — test helpers must
        // not widen the checkpoint fingerprint.
        if class.section == Section::Src {
            let scanned = scan(&src);
            let tree = TokenTree::build(&scanned.masked);
            let items = segment(&scanned, &tree);
            let (mut defs, version) = schema::collect(&rel, &class.krate, &scanned, &tree, &items);
            type_defs.append(&mut defs);
            if let Some(v) = version {
                versions.push(v);
            }
        }
    }

    // Workspace-level pass 1: crate layering (manifest edges + coverage).
    if let Some(spec) = &layering_spec {
        let edges = layering::manifest_edges(root)?;
        let members = layering::member_crates(root)?;
        findings.extend(layering::check_manifests(spec, &edges, &members));
    }

    // Workspace-level pass 2: checkpoint-schema fingerprints.
    versions.sort_unstable();
    versions.dedup();
    if versions.len() > 1 {
        findings.push(Finding {
            rule: "schema-drift",
            severity: Severity::Error,
            path: schema::SCHEMA_PATH.to_string(),
            line: 1,
            col: 1,
            message: format!(
                "conflicting CHECKPOINT_VERSION consts found ({versions:?}); \
                 exactly one crate must own the version"
            ),
            excerpt: String::new(),
            item: None,
        });
    }
    let version_found = !versions.is_empty();
    let schema_current = schema::snapshot(&type_defs, versions.first().copied().unwrap_or(0));
    let schema_committed = SchemaSnapshot::load(&lint_dir.join("schema.json"))?;
    if let Some(current) = &schema_current {
        findings.extend(schema::compare(schema_committed.as_ref(), current, version_found));
    }

    // Per-(rule, crate) ratchet aggregation. Keys are the union of crates
    // with sites this run and crates with a committed baseline, so both
    // regressions and improvements surface.
    let mut ratchets = Vec::new();
    for meta in RULES.iter().filter(|r| r.severity == Severity::Ratchet) {
        let mut krates: Vec<String> = ratchet_sites
            .iter()
            .filter(|f| f.rule == meta.id)
            .filter_map(|f| classify(&f.path).map(|c| c.krate))
            .collect();
        krates.extend(baseline.crates_for(meta.id).iter().map(|k| (*k).to_string()));
        krates.sort();
        krates.dedup();
        for krate in krates {
            let sites: Vec<Finding> = ratchet_sites
                .iter()
                .filter(|f| {
                    f.rule == meta.id && classify(&f.path).is_some_and(|c| c.krate == krate)
                })
                .cloned()
                .collect();
            ratchets.push(RatchetStatus {
                rule: meta.id,
                count: sites.len(),
                baseline: baseline.get(meta.id, &krate),
                krate,
                sites,
            });
        }
    }

    Ok(Report { findings, ratchets, files_scanned: files.len(), schema_current, schema_committed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let c = classify("crates/pmf/src/lib.rs").unwrap();
        assert_eq!(c.krate, "pmf");
        assert_eq!(c.section, Section::Src);
        let c = classify("crates/serve/tests/roundtrip.rs").unwrap();
        assert_eq!(c.krate, "serve");
        assert_eq!(c.section, Section::Tests);
        let c = classify("src/lib.rs").unwrap();
        assert_eq!(c.krate, "taskdrop");
        assert_eq!(c.section, Section::Src);
        let c = classify("examples/quickstart.rs").unwrap();
        assert_eq!(c.section, Section::Examples);
        assert!(classify("crates/lint/tests/fixtures/pos.rs").is_none());
        assert!(classify("README.md").is_none());
        assert!(classify("build.rs").is_none());
    }

    #[test]
    fn scope_coverage() {
        let pmf = classify("crates/pmf/src/lib.rs").unwrap();
        let bench = classify("crates/bench/src/lib.rs").unwrap();
        let lint = classify("crates/lint/src/lib.rs").unwrap();
        let serve = classify("crates/serve/src/lib.rs").unwrap();
        let dag = classify("crates/dag/src/coordinator.rs").unwrap();
        assert!(Scope::SimPath.covers(&pmf));
        assert!(Scope::SimPath.covers(&dag));
        assert!(!Scope::SimPath.covers(&bench));
        assert!(!Scope::SimPath.covers(&lint));
        assert!(!Scope::NonBench.covers(&bench));
        assert!(Scope::NonBench.covers(&lint));
        assert!(Scope::ConcurrencyCore.covers(&pmf));
        assert!(Scope::ConcurrencyCore.covers(&dag));
        // serve joined the concurrency core when the fleet driver landed:
        // its engine modules must stay thread-free, and the few driver
        // threading sites (worker-pool sizing) carry reasoned pragmas.
        assert!(Scope::ConcurrencyCore.covers(&serve));
        assert!(Scope::Everywhere.covers(&bench));
    }

    /// The scope lists are positive allowlists: a new workspace crate that
    /// nobody adds to `SIM_PATH` would silently escape every sim-path rule.
    /// Tie the lists to the root manifest so adding a crate without
    /// deciding its lint coverage fails here.
    #[test]
    fn scope_lists_track_workspace_members() {
        let manifest =
            std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../Cargo.toml"))
                .expect("workspace root manifest");
        let members_block = manifest
            .split("members = [")
            .nth(1)
            .and_then(|rest| rest.split(']').next())
            .expect("members list in root manifest");
        let crates: Vec<&str> = members_block
            .lines()
            .filter_map(|l| l.trim().strip_prefix("\"crates/"))
            .filter_map(|l| l.strip_suffix("\","))
            .collect();
        assert!(!crates.is_empty(), "failed to parse workspace members");

        // Tooling crates that deliberately sit outside the sim path; every
        // other `crates/*` member must be sim-path covered.
        const NON_SIM: &[&str] = &["bench", "lint"];
        for krate in &crates {
            let covered = SIM_PATH.contains(krate);
            let exempt = NON_SIM.contains(krate);
            assert!(
                covered ^ exempt,
                "crate `{krate}` must be in exactly one of SIM_PATH or the \
                 NON_SIM exemption list — decide its lint coverage"
            );
        }
        // No stale entries: everything scoped must exist in the workspace
        // (the umbrella crate `taskdrop` lives at the root, not crates/).
        for krate in SIM_PATH.iter().filter(|k| **k != "taskdrop") {
            assert!(crates.contains(krate), "SIM_PATH entry `{krate}` is not a workspace member");
        }
        for krate in CONCURRENCY_CORE {
            assert!(
                SIM_PATH.contains(krate),
                "CONCURRENCY_CORE entry `{krate}` must also be sim-path scoped"
            );
        }
    }

    #[test]
    fn cfg_test_mod_is_scoped_out() {
        let src = "use std::time::Instant;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let _ = Instant::now(); }\n\
                   }\n\
                   fn live() {}\n";
        let r = check_source("crates/sim/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        // The same call outside the module fires.
        let src = format!("{src}\nfn bad() {{ let _ = Instant::now(); }}\n");
        let r = check_source("crates/sim/src/x.rs", &src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "wall-clock");
    }

    #[test]
    fn findings_carry_the_enclosing_item_path() {
        let src = "mod inner {\n\
                       pub struct W;\n\
                       impl W {\n\
                           pub fn tick(&self) { let _ = Instant::now(); }\n\
                       }\n\
                   }\n";
        let r = check_source("crates/sim/src/clock.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].item.as_deref(), Some("sim::clock::inner::W::tick"));
        assert!(r.findings[0].render().contains("(in sim::clock::inner::W::tick)"));
    }

    #[test]
    fn lib_rs_contributes_no_module_segment() {
        let r = check_source("crates/sim/src/lib.rs", "fn f() { let _ = Instant::now(); }\n");
        assert_eq!(r.findings[0].item.as_deref(), Some("sim::f"));
    }

    #[test]
    fn macro_rules_bodies_do_not_fire() {
        let src = "macro_rules! with_clock {\n\
                       ($b:block) => {{ let _t = Instant::now(); $b }};\n\
                   }\n";
        let r = check_source("crates/sim/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        // The same pattern outside a macro body still fires.
        let r = check_source("crates/sim/src/x.rs", "fn f() { let _t = Instant::now(); }\n");
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn integration_tests_dir_is_test_code() {
        let r = check_source("crates/sim/tests/t.rs", "fn f() { let m: HashMap<u8,u8>; }");
        assert!(r.findings.is_empty());
        // But entropy is banned even in tests.
        let r = check_source("crates/sim/tests/t.rs", "fn f() { let r = thread_rng(); }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "entropy-rng");
    }

    /// serve is concurrency-core scoped: bare thread primitives in its
    /// engine modules are errors, and the fleet driver's sole threading
    /// site (worker-pool sizing) must carry a reasoned pragma to pass.
    #[test]
    fn serve_threading_needs_a_reasoned_pragma() {
        let bare = "fn workers() -> usize {\n\
                    \x20   std::thread::available_parallelism().map_or(1, |n| n.get())\n\
                    }\n";
        let r = check_source("crates/serve/src/fleet.rs", bare);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "thread-primitives");

        let allowed = "fn workers() -> usize {\n\
                       \x20   // lint:allow(thread-primitives): sizes the worker pool only\n\
                       \x20   std::thread::available_parallelism().map_or(1, |n| n.get())\n\
                       }\n";
        let r = check_source("crates/serve/src/fleet.rs", allowed);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        // Engine crates stay thread-free with no pragma escape hatch in
        // spirit: the same bare call is still an error in sim.
        let r = check_source("crates/sim/src/core.rs", bare);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "thread-primitives");
    }

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "fn f() { let m: HashMap<u8,u8> = todo!(); } // lint:allow(hash-collections): doc demo of the banned type\n";
        let r = check_source("crates/sim/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn own_line_pragma_suppresses_next_line() {
        let src = "// lint:allow(wall-clock): illustrating the hazard\n\
                   fn f() { let _ = Instant::now(); }\n";
        let r = check_source("crates/sim/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn pragma_does_not_leak_to_other_lines() {
        let src = "// lint:allow(wall-clock): only the next line\n\
                   fn a() { let _ = Instant::now(); }\n\
                   fn b() { let _ = Instant::now(); }\n";
        let r = check_source("crates/sim/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn bare_allow_is_a_violation() {
        for bad in [
            "// lint:allow(wall-clock)\nfn f() {}\n",
            "// lint:allow(wall-clock):\nfn f() {}\n",
            "// lint:allow(wall-clock):   \nfn f() {}\n",
            "// lint:allow\nfn f() {}\n",
        ] {
            let r = check_source("crates/sim/src/x.rs", bad);
            assert_eq!(r.findings.len(), 1, "{bad:?} -> {:?}", r.findings);
            assert_eq!(r.findings[0].rule, "bare-allow");
            assert_eq!(r.findings[0].severity, Severity::Error);
        }
    }

    #[test]
    fn unknown_rule_in_pragma_is_a_violation() {
        let r =
            check_source("crates/sim/src/x.rs", "// lint:allow(no-such-rule): reason\nfn f() {}\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "bare-allow");
        assert_eq!(r.findings[0].severity, Severity::Error);
    }

    #[test]
    fn unused_pragma_warns() {
        let r = check_source(
            "crates/sim/src/x.rs",
            "// lint:allow(wall-clock): nothing here needs it\nfn f() {}\n",
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "bare-allow");
        assert_eq!(r.findings[0].severity, Severity::Warn);
    }

    #[test]
    fn ratchet_sites_counted_not_fatal_everywhere() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n";
        let r = check_source("crates/serve/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.ratchet_sites.len(), 2);
        // The panic ratchet is per-crate but applies everywhere now.
        let r = check_source("crates/sim/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.ratchet_sites.len(), 2);
        // Test code is exempt.
        let r = check_source("crates/sim/tests/t.rs", src);
        assert!(r.ratchet_sites.is_empty());
    }

    #[test]
    fn layering_source_edge_fires_through_check_source_in() {
        let spec = LayeringSpec {
            layers: ["core", "serve"]
                .iter()
                .enumerate()
                .map(|(i, k)| crate::layering::LayerEntry {
                    krate: (*k).to_string(),
                    layer: u32::try_from(i).expect("tiny"),
                })
                .collect(),
        };
        let src = "use taskdrop_serve::Shard;\nfn f() {}\n";
        let r = check_source_in("crates/core/src/lib.rs", src, Some(&spec));
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "crate-layering");
        // Same edge in test code is exempt (dev-dependency equivalence).
        let r = check_source_in("crates/core/tests/t.rs", src, Some(&spec));
        assert!(r.findings.is_empty());
        // A pragma can grant a reviewed exception.
        let src = "use taskdrop_serve::Shard; // lint:allow(crate-layering): reviewed exception\n";
        let r = check_source_in("crates/core/src/lib.rs", src, Some(&spec));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let src = "//! ```\n//! let m = HashMap::new();\n//! ```\nfn f() {}\n";
        let r = check_source("crates/sim/src/x.rs", src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn module_segment_extraction() {
        assert_eq!(module_segments("crates/serve/src/shard.rs"), ["shard"]);
        assert_eq!(module_segments("crates/sim/src/lib.rs"), Vec::<&str>::new());
        assert_eq!(module_segments("src/service.rs"), ["service"]);
        assert_eq!(module_segments("crates/sim/src/exec/queue.rs"), ["exec", "queue"]);
        assert_eq!(module_segments("tests/smoke.rs"), ["smoke"]);
    }
}
