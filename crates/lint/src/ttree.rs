//! The token-tree layer: balanced `{}` / `()` / `[]` delimiter trees over a
//! masked source ([`crate::lexer::scan`]).
//!
//! The masking lexer already guarantees that no delimiter inside a comment,
//! string, raw string or char literal survives into the masked text, so a
//! plain stack pass recovers the real delimiter structure of the file. The
//! tree is stored flat — one [`Pair`] per matched delimiter, sorted by open
//! offset — which is exactly the shape the item segmenter
//! ([`crate::items`]) needs: *given an opening delimiter, where does it
//! close?* (answered by [`TokenTree::close_of`] in `O(log n)`).
//!
//! **Recovery.** Real trees are linted mid-edit too, so the builder never
//! panics on malformed input: a stray closer is dropped, a closer that
//! matches an outer open pops (and closes) the abandoned inner opens at the
//! closer's position, and anything still open at EOF closes at EOF. The
//! [`TokenTree::balanced`] flag records whether recovery was needed.

/// Which delimiter family a [`Pair`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `{` … `}`
    Brace,
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
}

impl Delim {
    fn of_open(b: u8) -> Option<Delim> {
        match b {
            b'{' => Some(Delim::Brace),
            b'(' => Some(Delim::Paren),
            b'[' => Some(Delim::Bracket),
            _ => None,
        }
    }

    fn of_close(b: u8) -> Option<Delim> {
        match b {
            b'}' => Some(Delim::Brace),
            b')' => Some(Delim::Paren),
            b']' => Some(Delim::Bracket),
            _ => None,
        }
    }
}

/// One matched (or recovered) delimiter pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Delimiter family.
    pub delim: Delim,
    /// Byte offset of the opening delimiter.
    pub open: usize,
    /// Byte offset of the closing delimiter (== `open` region end; for
    /// EOF-recovered pairs this is the source length).
    pub close: usize,
    /// Nesting depth at the opener (top level is 0).
    pub depth: usize,
}

/// The flat delimiter tree of one masked source.
#[derive(Debug, Clone)]
pub struct TokenTree {
    /// Matched pairs, sorted by `open` offset.
    pub pairs: Vec<Pair>,
    /// `false` if any stray closer was dropped or any open delimiter had
    /// to be recovered (closed early or at EOF).
    pub balanced: bool,
}

impl TokenTree {
    /// Build the delimiter tree of `masked` (the output of
    /// [`crate::lexer::scan`] — running this over *unmasked* source would
    /// see delimiters inside strings and comments).
    #[must_use]
    pub fn build(masked: &str) -> TokenTree {
        let bytes = masked.as_bytes();
        // (delim, open offset, index in pairs) for every currently open pair.
        let mut stack: Vec<(Delim, usize, usize)> = Vec::new();
        let mut pairs: Vec<Pair> = Vec::new();
        let mut balanced = true;
        for (i, &b) in bytes.iter().enumerate() {
            if let Some(d) = Delim::of_open(b) {
                stack.push((d, i, pairs.len()));
                pairs.push(Pair { delim: d, open: i, close: usize::MAX, depth: stack.len() - 1 });
            } else if let Some(d) = Delim::of_close(b) {
                match stack.iter().rposition(|&(sd, _, _)| sd == d) {
                    Some(pos) => {
                        if pos != stack.len() - 1 {
                            // Abandoned inner opens: close them here.
                            balanced = false;
                        }
                        while stack.len() > pos {
                            let (_, _, idx) = stack.pop().expect("len > pos >= 0");
                            pairs[idx].close = i;
                        }
                    }
                    // Stray closer with no matching open: drop it.
                    None => balanced = false,
                }
            }
        }
        if !stack.is_empty() {
            balanced = false;
            for (_, _, idx) in stack {
                pairs[idx].close = bytes.len();
            }
        }
        TokenTree { pairs, balanced }
    }

    /// The close offset of the pair opening exactly at `open`.
    #[must_use]
    pub fn close_of(&self, open: usize) -> Option<usize> {
        self.pairs.binary_search_by_key(&open, |p| p.open).ok().map(|i| self.pairs[i].close)
    }

    /// The innermost pair strictly containing `offset` (open < offset <
    /// close), if any.
    #[must_use]
    pub fn enclosing(&self, offset: usize) -> Option<&Pair> {
        self.pairs.iter().filter(|p| p.open < offset && offset < p.close).max_by_key(|p| p.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn tree(src: &str) -> TokenTree {
        TokenTree::build(&scan(src).masked)
    }

    #[test]
    fn nested_generics_and_tuples_balance() {
        let src = "fn f(v: Vec<Vec<(u8, u8)>>) -> [u8; 2] { ([v.len() as u8, 0]) }";
        let t = tree(src);
        assert!(t.balanced);
        // fn params, tuple type, return array, body, paren group, array
        // literal, and the `v.len()` call.
        assert_eq!(t.pairs.len(), 7);
        let body_open = src.find('{').unwrap();
        assert_eq!(t.close_of(body_open), Some(src.rfind('}').unwrap()));
    }

    #[test]
    fn where_clause_brackets_resolve() {
        let src = "fn g<T>(x: T) -> T where T: AsRef<[u8]> { x }";
        let t = tree(src);
        assert!(t.balanced);
        let arr = src.find('[').unwrap();
        assert_eq!(t.close_of(arr), Some(src.find(']').unwrap()));
    }

    #[test]
    fn delimiters_inside_raw_strings_are_invisible() {
        let src = r###"macro_rules! m { () => { r#"{ ( [ never closed"# } }"###;
        let t = tree(src);
        assert!(t.balanced, "{:?}", t.pairs);
        // macro body brace pair + () matcher + => {} arm body.
        assert_eq!(t.pairs.iter().filter(|p| p.delim == Delim::Brace).count(), 2);
    }

    #[test]
    fn stray_closer_is_dropped() {
        let t = tree("fn f() { } }");
        assert!(!t.balanced);
        assert_eq!(t.pairs.len(), 2);
        assert!(t.pairs.iter().all(|p| p.close != usize::MAX));
    }

    #[test]
    fn unclosed_open_recovers_at_eof() {
        let src = "fn f() { let x = (1;";
        let t = tree(src);
        assert!(!t.balanced);
        let brace = t.pairs.iter().find(|p| p.delim == Delim::Brace).unwrap();
        assert_eq!(brace.close, src.len());
    }

    #[test]
    fn outer_closer_recovers_abandoned_inner_open() {
        // `(` never closes; `}` closes the brace and force-closes the paren.
        let src = "{ ( }";
        let t = tree(src);
        assert!(!t.balanced);
        let paren = t.pairs.iter().find(|p| p.delim == Delim::Paren).unwrap();
        assert_eq!(paren.close, 4, "paren closed at the brace's closer");
        assert_eq!(t.close_of(0), Some(4));
    }

    #[test]
    fn enclosing_finds_innermost() {
        let src = "{ a ( b [ c ] ) }";
        let t = tree(src);
        let c = src.find('c').unwrap();
        assert_eq!(t.enclosing(c).unwrap().delim, Delim::Bracket);
        let b = src.find('b').unwrap();
        assert_eq!(t.enclosing(b).unwrap().delim, Delim::Paren);
        assert!(t.enclosing(0).is_none());
    }

    #[test]
    fn depths_count_from_zero() {
        let t = tree("{ { } }");
        assert_eq!(t.pairs[0].depth, 0);
        assert_eq!(t.pairs[1].depth, 1);
    }
}
