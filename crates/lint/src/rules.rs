//! The rule catalogue: what each rule bans, where, and why.
//!
//! Two families (DESIGN.md §14):
//!
//! * **Determinism (D1–D5)** — hazards that can silently break the
//!   workspace's bit-identical-replay invariant: unordered collections
//!   whose iteration order feeds event order, wall-clock reads, entropy-
//!   seeded RNG, NaN-lossy comparators, environment-dependent behaviour.
//! * **Concurrency-readiness (C1–C2)** — ground rules for the threaded
//!   `ServiceDriver` work: ad-hoc `std` threading primitives are banned in
//!   the simulation core (threading belongs to the driver's deterministic
//!   merge layer, through the vendored crossbeam), and the panic surface —
//!   `.unwrap()`/`.expect()`, `panic!`-family macros, slice indexing — is
//!   ratcheted downward per crate (typed `SimError` is the checkpoint/
//!   restore contract).
//! * **Structural (S1–S2)** — invariants computed from the token-tree/item
//!   layer plus workspace metadata: the crate-layering DAG
//!   (`crate-layering`, see [`crate::layering`]) and checkpoint-schema
//!   fingerprints (`schema-drift`, see [`crate::schema`]).
//!
//! Plus one meta-rule: a `lint:allow` pragma without a reason (or naming an
//! unknown rule) is itself a violation (`bare-allow`).

use crate::diag::Severity;

/// Where a rule applies, by crate and file section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The deterministic simulation path: `pmf`, `stats`, `model`, `sched`,
    /// `core`, `workload`, `sim`, `serve` and the umbrella crate.
    SimPath,
    /// Every crate except `bench` (the only place wall-clock is honest).
    NonBench,
    /// The whole workspace, `bench` and `lint` included.
    Everywhere,
    /// The crates the threaded driver will coordinate: `sim`, `model`,
    /// `core`, `pmf`.
    ConcurrencyCore,
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Kebab-case identifier, used in diagnostics and pragmas.
    pub id: &'static str,
    /// Gate class.
    pub severity: Severity,
    /// Crate/section scope.
    pub scope: Scope,
    /// Whether findings inside test code (`tests/`, `benches/`,
    /// `#[cfg(test)]` items) count.
    pub in_tests: bool,
    /// Collapse to one finding per line — for rules whose patterns overlap
    /// textually (`std::thread::spawn` also matches `thread::spawn`).
    pub dedup_per_line: bool,
    /// One-line summary for `--rules` and the docs.
    pub summary: &'static str,
}

/// The catalogue. Order is the reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "hash-collections",
        severity: Severity::Error,
        scope: Scope::SimPath,
        in_tests: false,
        dedup_per_line: false,
        summary: "D1: no std HashMap/HashSet in sim-path crates — iteration \
                  order feeds event order; use BTreeMap/BTreeSet or keyed vectors",
    },
    Rule {
        id: "wall-clock",
        severity: Severity::Error,
        scope: Scope::NonBench,
        in_tests: false,
        dedup_per_line: false,
        summary: "D2: no Instant::now/SystemTime::now outside crates/bench — \
                  virtual time only on the sim path",
    },
    Rule {
        id: "entropy-rng",
        severity: Severity::Error,
        scope: Scope::Everywhere,
        in_tests: true,
        dedup_per_line: false,
        summary: "D3: no entropy-seeded RNG (thread_rng, from_entropy, \
                  rand::random, OsRng) anywhere — all draws key off exec_seed-style seeds",
    },
    Rule {
        id: "partial-cmp-unwrap",
        severity: Severity::Error,
        scope: Scope::Everywhere,
        in_tests: true,
        dedup_per_line: false,
        summary: "D4: no partial_cmp(..).unwrap()/.expect(..) comparators — \
                  use f64::total_cmp, which is total and NaN-safe",
    },
    Rule {
        id: "env-read",
        severity: Severity::Error,
        scope: Scope::SimPath,
        in_tests: true,
        dedup_per_line: false,
        summary: "D5: no std::env::var / set_var in sim-path crates — \
                  environment must not influence simulated behaviour",
    },
    Rule {
        id: "thread-primitives",
        severity: Severity::Error,
        scope: Scope::ConcurrencyCore,
        in_tests: false,
        dedup_per_line: true,
        summary: "C1: no std::thread::spawn / std::sync::{Mutex,RwLock,..} in \
                  sim/model/core/pmf/dag/serve — threading is reserved for \
                  the fleet driver's deterministic merge layer via the \
                  vendored crossbeam",
    },
    Rule {
        id: "panic-unwrap",
        severity: Severity::Ratchet,
        scope: Scope::Everywhere,
        in_tests: false,
        dedup_per_line: false,
        summary: "C2: per-crate ratcheted .unwrap()/.expect() count in \
                  non-test code — typed SimError is the checkpoint/restore \
                  contract; committed baselines may only go down",
    },
    Rule {
        id: "panic-macro",
        severity: Severity::Ratchet,
        scope: Scope::Everywhere,
        in_tests: false,
        dedup_per_line: false,
        summary: "C2: per-crate ratcheted panic!/unreachable!/todo!/\
                  unimplemented! count in non-test code — a panic in the \
                  fleet kills determinism mid-epoch; prefer typed errors",
    },
    Rule {
        id: "slice-index",
        severity: Severity::Ratchet,
        scope: Scope::Everywhere,
        in_tests: false,
        dedup_per_line: true,
        summary: "C2: per-crate ratcheted slice/array indexing (`x[i]`) \
                  count in non-test code — an out-of-bounds index is an \
                  implicit panic; prefer .get()/.get_mut()",
    },
    Rule {
        id: "crate-layering",
        severity: Severity::Error,
        scope: Scope::Everywhere,
        in_tests: false,
        dedup_per_line: true,
        summary: "S1: every taskdrop_* dependency edge (Cargo.toml and \
                  source) must point strictly downward in the committed \
                  layering DAG (crates/lint/layering.json)",
    },
    Rule {
        id: "schema-drift",
        severity: Severity::Error,
        scope: Scope::Everywhere,
        in_tests: false,
        dedup_per_line: false,
        summary: "S2: serde types reachable from Checkpoint/ShardCheckpoint/\
                  DagCheckpoint must match the committed fingerprints \
                  (crates/lint/schema.json) or bump CHECKPOINT_VERSION",
    },
    Rule {
        id: "bare-allow",
        severity: Severity::Error,
        scope: Scope::Everywhere,
        in_tests: true,
        dedup_per_line: false,
        summary: "meta: every lint:allow pragma must name a known rule and \
                  carry a non-empty reason",
    },
];

/// Look a rule up by id.
#[must_use]
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `word` in `masked` occurring as a whole identifier (no
/// identifier byte on either side; `::`-path context is fine).
fn find_word(masked: &str, word: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    masked
        .match_indices(word)
        .filter(|&(i, _)| {
            let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
            let end = i + word.len();
            let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
            before_ok && after_ok
        })
        .map(|(i, _)| i)
        .collect()
}

/// A raw match: rule id, byte offset, message.
pub(crate) struct RawHit {
    pub rule: &'static str,
    pub offset: usize,
    pub message: String,
}

fn push_words(
    masked: &str,
    rule: &'static str,
    words: &[&str],
    msg: &dyn Fn(&str) -> String,
    out: &mut Vec<RawHit>,
) {
    for w in words {
        for offset in find_word(masked, w) {
            out.push(RawHit { rule, offset, message: msg(w) });
        }
    }
}

/// Run every pattern matcher over one masked source, unfiltered by scope or
/// pragmas (the engine filters).
pub(crate) fn match_all(masked: &str) -> Vec<RawHit> {
    let mut out = Vec::new();

    // D1 — unordered std collections.
    push_words(
        masked,
        "hash-collections",
        &["HashMap", "HashSet"],
        &|w| {
            format!(
                "`{w}` is banned on the sim path: its iteration order is \
                 seeded per-process and feeds event order; use `BTreeMap`/\
                 `BTreeSet` or a keyed vector"
            )
        },
        &mut out,
    );

    // D2 — wall-clock reads.
    push_words(
        masked,
        "wall-clock",
        &["Instant::now", "SystemTime::now"],
        &|w| {
            format!(
                "`{w}` reads the wall clock; outside `crates/bench` all time \
                 must be virtual (tick-driven) or results stop replaying"
            )
        },
        &mut out,
    );

    // D3 — entropy-seeded randomness.
    push_words(
        masked,
        "entropy-rng",
        &["thread_rng", "from_entropy", "rand::random", "OsRng", "getrandom"],
        &|w| {
            format!(
                "`{w}` draws from OS entropy; every random stream must be \
                 keyed off an explicit `exec_seed`-style seed (`derive_seed`)"
            )
        },
        &mut out,
    );

    // D4 — NaN-lossy comparators: `partial_cmp(…)` whose result is
    // immediately `.unwrap()`ed / `.expect()`ed.
    let bytes = masked.as_bytes();
    for start in find_word(masked, "partial_cmp") {
        let mut i = start + "partial_cmp".len();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        // Match the call's closing parenthesis (masked text: parens inside
        // strings/comments are already blanked).
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'.' {
            let rest = &masked[j + 1..];
            let rest_trim = rest.trim_start();
            let method: String =
                rest_trim.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if method == "unwrap" || method == "expect" {
                out.push(RawHit {
                    rule: "partial-cmp-unwrap",
                    offset: start,
                    message: "`partial_cmp(..).unwrap()` panics on NaN and \
                              makes the comparator partial; use \
                              `f64::total_cmp` (total, deterministic)"
                        .to_string(),
                });
            }
        }
    }

    // D5 — environment reads/writes on the sim path.
    push_words(
        masked,
        "env-read",
        &["env::var", "env::vars", "env::var_os", "env::set_var", "env::remove_var"],
        &|w| {
            format!(
                "`{w}` lets the process environment influence sim-path \
                 behaviour; configuration must flow through typed config \
                 structs so runs replay anywhere"
            )
        },
        &mut out,
    );

    // C1 — ad-hoc std threading primitives in the simulation core.
    push_words(
        masked,
        "thread-primitives",
        &[
            "std::thread",
            "thread::spawn",
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
            "std::sync::Barrier",
        ],
        &|w| {
            format!(
                "`{w}` in the simulation core: threading belongs to the \
                 driver's deterministic epoch-merge layer (vendored \
                 crossbeam + parking_lot), not ad-hoc std primitives"
            )
        },
        &mut out,
    );
    // Grouped imports: `use std::sync::{Mutex, …};`
    for start in masked.match_indices("use std::sync::{").map(|(i, _)| i) {
        let stmt_end = masked[start..].find(';').map_or(masked.len(), |e| start + e);
        let stmt = &masked[start..stmt_end];
        for prim in ["Mutex", "RwLock", "Condvar", "Barrier"] {
            if find_word(stmt, prim).is_empty() {
                continue;
            }
            out.push(RawHit {
                rule: "thread-primitives",
                offset: start,
                message: format!(
                    "`std::sync::{prim}` (grouped import) in the simulation \
                     core: threading belongs to the driver's deterministic \
                     merge layer, not ad-hoc std primitives"
                ),
            });
        }
    }

    // C2a — `.unwrap()` / `.expect(` method calls (per-crate ratchet).
    for w in ["unwrap", "expect"] {
        for start in find_word(masked, w) {
            // Must be a method call: a `.` before (whitespace allowed, for
            // rustfmt's chain breaks) and a `(` directly after.
            let after = start + w.len();
            if after >= bytes.len() || bytes[after] != b'(' {
                continue;
            }
            let mut k = start;
            while k > 0 && bytes[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            if k == 0 || bytes[k - 1] != b'.' {
                continue;
            }
            out.push(RawHit {
                rule: "panic-unwrap",
                offset: start,
                message: format!(
                    "`.{w}()` in non-test code; prefer a typed error \
                     (ratcheted per crate: the committed count may only \
                     decrease)"
                ),
            });
        }
    }

    // C2b — panic-family macros (per-crate ratchet).
    for w in ["panic", "unreachable", "todo", "unimplemented"] {
        for start in find_word(masked, w) {
            let after = start + w.len();
            if after >= bytes.len() || bytes[after] != b'!' {
                continue;
            }
            out.push(RawHit {
                rule: "panic-macro",
                offset: start,
                message: format!(
                    "`{w}!` in non-test code; a panic mid-epoch breaks the \
                     fleet's deterministic merge — prefer a typed error \
                     (ratcheted per crate)"
                ),
            });
        }
    }

    // C2c — slice/array indexing (per-crate ratchet): a `[` whose previous
    // non-whitespace byte ends an expression (identifier, `)` or `]`) is an
    // index, unless that identifier is a keyword (`let [a, b] = ..`,
    // `match x { .. }` arms, `return [..]`, etc.).
    const NON_INDEX_KEYWORDS: &[&str] = &[
        "let", "mut", "ref", "in", "if", "else", "match", "return", "as", "box", "move", "dyn",
        "impl", "where", "break", "continue", "loop", "while", "for", "unsafe", "async", "const",
        "static", "struct", "enum", "union", "type", "fn", "use", "pub", "mod", "trait", "await",
        "yield",
    ];
    for (i, _) in masked.match_indices('[') {
        let mut k = i;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let prev = bytes[k - 1];
        let expr_end = prev == b')' || prev == b']' || is_ident_byte(prev);
        if !expr_end {
            continue;
        }
        if is_ident_byte(prev) {
            let mut s = k - 1;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            let word = &masked[s..k];
            if NON_INDEX_KEYWORDS.contains(&word) {
                continue;
            }
        }
        out.push(RawHit {
            rule: "slice-index",
            offset: i,
            message: "slice/array indexing panics out of bounds; prefer \
                      `.get()`/`.get_mut()` with a typed error (ratcheted \
                      per crate)"
                .to_string(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str, rule: &str) -> usize {
        let scanned = crate::lexer::scan(src);
        match_all(&scanned.masked).iter().filter(|h| h.rule == rule).count()
    }

    #[test]
    fn word_boundaries_respected() {
        assert_eq!(hits("let m: HashMap<u8, u8>;", "hash-collections"), 1);
        assert_eq!(hits("let m: FxHashMap<u8, u8>;", "hash-collections"), 0);
        assert_eq!(hits("let m = HashMapLike::new();", "hash-collections"), 0);
        assert_eq!(hits("use std::collections::HashSet;", "hash-collections"), 1);
    }

    #[test]
    fn partial_cmp_needs_immediate_unwrap() {
        assert_eq!(hits("a.partial_cmp(&b).unwrap()", "partial-cmp-unwrap"), 1);
        assert_eq!(hits("a.partial_cmp(&b).expect(\"finite\")", "partial-cmp-unwrap"), 1);
        assert_eq!(hits("a.partial_cmp(&b).unwrap_or(Ordering::Equal)", "partial-cmp-unwrap"), 0);
        assert_eq!(hits("a.partial_cmp(&b)", "partial-cmp-unwrap"), 0);
        assert_eq!(hits("a.total_cmp(&b)", "partial-cmp-unwrap"), 0);
        // Nested parens inside the call, then a chain break.
        assert_eq!(hits("key(a).partial_cmp(&key(b))\n    .unwrap()", "partial-cmp-unwrap"), 1);
    }

    #[test]
    fn env_read_exact_idents() {
        assert_eq!(hits("std::env::var(\"X\")", "env-read"), 1);
        assert_eq!(hits("std::env::args()", "env-read"), 0);
        assert_eq!(hits("env::set_var(\"X\", \"1\")", "env-read"), 1);
        assert_eq!(hits("std::env::var_os(\"X\")", "env-read"), 1);
    }

    #[test]
    fn thread_primitives_spare_parking_lot_and_crossbeam() {
        assert_eq!(hits("use parking_lot::Mutex;", "thread-primitives"), 0);
        assert_eq!(hits("crossbeam::thread::scope(|s| s.spawn(|_| {}));", "thread-primitives"), 0);
        assert!(hits("use std::sync::Mutex;", "thread-primitives") >= 1);
        assert!(hits("use std::sync::{Arc, Mutex};", "thread-primitives") >= 1);
        assert_eq!(hits("use std::sync::{Arc, atomic::AtomicU64};", "thread-primitives"), 0);
        assert!(hits("std::thread::spawn(|| {});", "thread-primitives") >= 1);
    }

    #[test]
    fn unwrap_must_be_a_method_call() {
        assert_eq!(hits("x.unwrap()", "panic-unwrap"), 1);
        assert_eq!(hits("x.expect(\"msg\")", "panic-unwrap"), 1);
        assert_eq!(hits("x\n    .unwrap()", "panic-unwrap"), 1);
        assert_eq!(hits("x.unwrap_or(0)", "panic-unwrap"), 0);
        assert_eq!(hits("fn unwrap() {}", "panic-unwrap"), 0);
        assert_eq!(hits("Self::unwrap(x)", "panic-unwrap"), 0);
    }

    #[test]
    fn panic_macros_need_the_bang() {
        assert_eq!(hits("panic!(\"boom\")", "panic-macro"), 1);
        assert_eq!(hits("unreachable!()", "panic-macro"), 1);
        assert_eq!(hits("todo!()", "panic-macro"), 1);
        assert_eq!(hits("unimplemented!()", "panic-macro"), 1);
        assert_eq!(hits("core::panic!(\"boom\")", "panic-macro"), 1);
        assert_eq!(hits("fn panic() {}", "panic-macro"), 0);
        assert_eq!(hits("self.panic_count += 1;", "panic-macro"), 0);
        assert_eq!(hits("assert_eq!(a, b)", "panic-macro"), 0);
    }

    #[test]
    fn slice_index_heuristics() {
        assert_eq!(hits("let x = v[0];", "slice-index"), 1);
        assert_eq!(hits("let x = arr[i][j];", "slice-index"), 2);
        assert_eq!(hits("let x = f()[0];", "slice-index"), 1);
        assert_eq!(hits("let x = v[1..n];", "slice-index"), 1);
        // Patterns, types and literals are not indexing.
        assert_eq!(hits("let [a, b] = pair;", "slice-index"), 0);
        assert_eq!(hits("fn f(x: [u8; 2]) -> [u8; 2] { x }", "slice-index"), 0);
        assert_eq!(hits("let v = vec![1, 2];", "slice-index"), 0);
        assert_eq!(hits("let a = [0u8; 4];", "slice-index"), 0);
        assert_eq!(hits("fn g(s: &[u8]) {}", "slice-index"), 0);
        assert_eq!(hits("#[derive(Debug)]\nstruct S;", "slice-index"), 0);
        assert_eq!(hits("for [a, b] in pairs {}", "slice-index"), 0);
    }

    #[test]
    fn masked_regions_do_not_fire() {
        assert_eq!(hits("// HashMap in a comment\nlet x = 1;", "hash-collections"), 0);
        assert_eq!(hits("let s = \"thread_rng\";", "entropy-rng"), 0);
        assert_eq!(hits("/* Instant::now */ let x = 1;", "wall-clock"), 0);
    }

    #[test]
    fn entropy_rng_patterns() {
        assert_eq!(hits("let mut r = rand::thread_rng();", "entropy-rng"), 1);
        assert_eq!(hits("let r = SmallRng::from_entropy();", "entropy-rng"), 1);
        assert_eq!(hits("let x: f64 = rand::random();", "entropy-rng"), 1);
        assert_eq!(hits("let r = new_rng(derive_seed(seed, 3));", "entropy-rng"), 0);
    }
}
