//! Item-level segmentation over the masked source + token tree.
//!
//! This is the layer that lets rules reason *structurally* instead of
//! line-by-line: every `use` / `fn` / `struct` / `enum` / `impl` / `mod` /
//! `trait` / `const` / `static` / `type` / `macro_rules!` item is recorded
//! with its byte span, its attributes (so `#[cfg(test)]` and
//! `#[derive(...)]` are item properties, not text matches), its body span,
//! and its path inside the file (`tests::helper`, `Shard::advance_to`).
//!
//! The segmenter is deliberately forgiving — it recurses into `mod`,
//! `impl` and `trait` bodies (where nested items live), treats anything it
//! cannot classify as an opaque token to skip, and never recurses into
//! `fn` bodies or `macro_rules!` definitions (the former contain
//! expressions, the latter contain token soup that only *expands* to
//! code). Consumers ask three questions: *which item encloses this byte?*
//! ([`ItemIndex::item_at`]), *is this byte test-only code?*
//! ([`ItemIndex::in_cfg_test`]), and *is this byte inside a `macro_rules!`
//! definition body?* ([`ItemIndex::in_macro_def`]).

use crate::lexer::Scanned;
use crate::ttree::TokenTree;

/// What kind of item a segment is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `use path::to::thing;`
    Use,
    /// `extern crate name;`
    ExternCrate,
    /// `fn name(..) { .. }` (or a bodyless trait method).
    Fn,
    /// `struct Name { .. }` / tuple / unit struct.
    Struct,
    /// `enum Name { .. }`
    Enum,
    /// `union Name { .. }`
    Union,
    /// `impl [Trait for] Type { .. }` — the name is the *type*.
    Impl,
    /// `mod name;` or `mod name { .. }`
    Mod,
    /// `trait Name { .. }`
    Trait,
    /// `macro_rules! name { .. }`
    MacroDef,
    /// `const NAME: T = ..;`
    Const,
    /// `static NAME: T = ..;`
    Static,
    /// `type Name = ..;`
    TypeAlias,
    /// Anything else (macro invocation at item level, stray tokens).
    Other,
}

/// One segmented item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name (`advance_to`, `Checkpoint`; impl items carry the
    /// self-type's last path segment; `use` items carry the first path
    /// segment — the crate the edge points at).
    pub name: String,
    /// `::`-joined path within the file, including this item's own name
    /// (`tests::roundtrip`, `Shard::advance_to`).
    pub path: String,
    /// Byte span `[start, end)` covering attributes through body/`;`.
    pub span: (usize, usize),
    /// Byte offsets of the body's `{`/`(`/`[` and its closer, if any.
    pub body: Option<(usize, usize)>,
    /// Byte spans of the item's outer attributes.
    pub attrs: Vec<(usize, usize)>,
    /// `true` if this item (or an enclosing one) is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Idents named inside `#[derive(...)]` — including derives nested in
    /// `#[cfg_attr(..., derive(...))]`.
    pub derives: Vec<String>,
    /// Item nesting depth (file level is 0).
    pub depth: usize,
}

/// The segmented items of one file.
#[derive(Debug, Clone, Default)]
pub struct ItemIndex {
    /// All items, parents before their children.
    pub items: Vec<Item>,
}

impl ItemIndex {
    /// The innermost item whose span contains `offset`.
    #[must_use]
    pub fn item_at(&self, offset: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.span.0 <= offset && offset < it.span.1)
            .max_by_key(|it| (it.depth, std::cmp::Reverse(it.span.1 - it.span.0)))
    }

    /// The `::`-joined path of the innermost *named* item at `offset`.
    #[must_use]
    pub fn path_at(&self, offset: usize) -> Option<&str> {
        self.item_at(offset).filter(|it| !it.path.is_empty()).map(|it| it.path.as_str())
    }

    /// Is `offset` inside a `#[cfg(test)]`-gated item (directly or via an
    /// enclosing module)?
    #[must_use]
    pub fn in_cfg_test(&self, offset: usize) -> bool {
        self.item_at(offset).is_some_and(|it| it.cfg_test)
    }

    /// Is `offset` inside a `macro_rules!` *definition* body? (Pattern
    /// rules skip those: the tokens only become code where the macro is
    /// invoked, which is where findings belong.)
    #[must_use]
    pub fn in_macro_def(&self, offset: usize) -> bool {
        self.items.iter().any(|it| {
            it.kind == ItemKind::MacroDef && it.body.is_some_and(|(o, c)| o < offset && offset < c)
        })
    }
}

/// Does an attribute's masked text gate the item on `cfg(test)`?
fn attr_is_cfg_test(attr_text: &str) -> bool {
    let squashed: String = attr_text.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.contains("cfg(test") || squashed.contains("cfg(all(test")
}

/// Idents inside any `derive(...)` group of an attribute's masked text.
fn attr_derives(attr_text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = attr_text.as_bytes();
    let mut search = 0;
    while let Some(rel) = attr_text[search..].find("derive") {
        let at = search + rel;
        search = at + "derive".len();
        let boundary_ok =
            at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if !boundary_ok {
            continue;
        }
        let mut i = search;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        let mut depth = 0usize;
        let mut word = String::new();
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b if b.is_ascii_alphanumeric() || b == b'_' => word.push(b as char),
                _ => {
                    if !word.is_empty() {
                        out.push(std::mem::take(&mut word));
                    }
                }
            }
            i += 1;
        }
        if !word.is_empty() {
            out.push(word);
        }
        search = i;
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    tree: &'a TokenTree,
    i: usize,
    end: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.end && self.bytes[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        (self.i < self.end).then(|| self.bytes[self.i])
    }

    /// The identifier starting exactly at the cursor, without consuming.
    fn at_word(&self) -> Option<&str> {
        let b = self.peek()?;
        if !(b.is_ascii_alphabetic() || b == b'_') {
            return None;
        }
        let mut j = self.i;
        while j < self.end && (self.bytes[j].is_ascii_alphanumeric() || self.bytes[j] == b'_') {
            j += 1;
        }
        // Masked bytes are either original ASCII-compatible UTF-8 or
        // spaces; an ident run is pure ASCII.
        std::str::from_utf8(&self.bytes[self.i..j]).ok()
    }

    fn read_word(&mut self) -> Option<String> {
        let w = self.at_word()?.to_string();
        self.i += w.len();
        Some(w)
    }

    /// If the cursor is on an opening delimiter, jump past its close;
    /// otherwise advance one byte. Always makes progress.
    fn bump(&mut self) {
        if let Some(close) = self.tree.close_of(self.i) {
            self.i = (close + 1).min(self.end);
        } else {
            self.i += 1;
        }
    }

    /// Skip a `<...>` generic group (cursor on `<`). Paren/bracket groups
    /// inside jump via the tree; `->` return arrows don't close angles.
    fn skip_angles(&mut self) {
        debug_assert_eq!(self.peek(), Some(b'<'));
        let mut depth = 0usize;
        while self.i < self.end {
            match self.bytes[self.i] {
                b'(' | b'[' => {
                    self.bump();
                    continue;
                }
                b'<' => depth += 1,
                b'>' => {
                    if self.i > 0 && self.bytes[self.i - 1] == b'-' {
                        // `->` inside a bound: not an angle closer.
                    } else {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Advance to just past the next `;` at this depth (groups jumped);
    /// stops early at `end`.
    fn skip_past_semi(&mut self) {
        while self.i < self.end {
            match self.bytes[self.i] {
                b';' => {
                    self.i += 1;
                    return;
                }
                b'{' | b'(' | b'[' => self.bump(),
                _ => self.i += 1,
            }
        }
    }

    /// Advance until a body `{` (returning its offset) or past a `;`
    /// (returning `None`), jumping paren/bracket groups on the way.
    fn find_body_or_semi(&mut self) -> Option<usize> {
        while self.i < self.end {
            match self.bytes[self.i] {
                b'{' => return Some(self.i),
                b';' => {
                    self.i += 1;
                    return None;
                }
                b'(' | b'[' => self.bump(),
                b'<' => self.skip_angles(),
                _ => self.i += 1,
            }
        }
        None
    }
}

/// Segment `scanned` into items using its token `tree`.
#[must_use]
pub fn segment(scanned: &Scanned, tree: &TokenTree) -> ItemIndex {
    let mut index = ItemIndex::default();
    let masked = scanned.masked.as_bytes();
    parse_block(masked, tree, 0, masked.len(), "", false, 0, &mut index);
    index
}

#[allow(clippy::too_many_arguments)] // private recursion plumbing
fn parse_block(
    bytes: &[u8],
    tree: &TokenTree,
    start: usize,
    end: usize,
    prefix: &str,
    inherited_cfg_test: bool,
    depth: usize,
    out: &mut ItemIndex,
) {
    let mut cur = Cursor { bytes, tree, i: start, end };
    loop {
        cur.skip_ws();
        if cur.i >= cur.end {
            break;
        }

        // Outer (and stray inner) attributes.
        let mut attrs: Vec<(usize, usize)> = Vec::new();
        loop {
            cur.skip_ws();
            if cur.peek() != Some(b'#') {
                break;
            }
            let attr_start = cur.i;
            let mut j = cur.i + 1;
            if j < cur.end && bytes[j] == b'!' {
                j += 1;
            }
            if j >= cur.end || bytes[j] != b'[' {
                cur.i += 1; // stray `#`
                break;
            }
            let close = tree.close_of(j).unwrap_or(cur.end);
            attrs.push((attr_start, (close + 1).min(cur.end)));
            cur.i = (close + 1).min(cur.end);
        }
        cur.skip_ws();
        if cur.i >= cur.end {
            break;
        }
        let item_start = attrs.first().map_or(cur.i, |a| a.0);

        let attr_text =
            |span: &(usize, usize)| std::str::from_utf8(&bytes[span.0..span.1]).unwrap_or("");
        let cfg_test = inherited_cfg_test || attrs.iter().any(|a| attr_is_cfg_test(attr_text(a)));
        let derives: Vec<String> = attrs.iter().flat_map(|a| attr_derives(attr_text(a))).collect();

        // Modifiers, then the item keyword.
        let mut keyword: Option<String> = None;
        loop {
            cur.skip_ws();
            let Some(w) = cur.at_word() else { break };
            match w {
                "pub" => {
                    cur.read_word();
                    cur.skip_ws();
                    if cur.peek() == Some(b'(') {
                        cur.bump(); // pub(crate), pub(in path)
                    }
                }
                "default" | "unsafe" | "async" => {
                    cur.read_word();
                }
                "const" => {
                    cur.read_word();
                    cur.skip_ws();
                    if cur.at_word() != Some("fn") {
                        keyword = Some("const".to_string());
                        break;
                    }
                }
                "extern" => {
                    cur.read_word();
                    cur.skip_ws();
                    if cur.peek() == Some(b'"') {
                        // ABI string: delimiters survive masking.
                        cur.i += 1;
                        while cur.peek().is_some_and(|b| b != b'"') {
                            cur.i += 1;
                        }
                        cur.i = (cur.i + 1).min(cur.end);
                    } else if cur.at_word() == Some("crate") {
                        keyword = Some("extern-crate".to_string());
                        break;
                    }
                }
                _ => {
                    keyword = Some(cur.read_word().expect("at_word was Some"));
                    break;
                }
            }
        }

        let Some(kw) = keyword else {
            // Not an item start (stray token / group): skip it and carry on.
            cur.bump();
            continue;
        };

        let push = |out: &mut ItemIndex,
                    kind: ItemKind,
                    name: String,
                    span_end: usize,
                    body: Option<(usize, usize)>| {
            let path = match (prefix.is_empty(), name.is_empty()) {
                (_, true) => prefix.to_string(),
                (true, false) => name.clone(),
                (false, false) => format!("{prefix}::{name}"),
            };
            out.items.push(Item {
                kind,
                name,
                path,
                span: (item_start, span_end),
                body,
                attrs: attrs.clone(),
                cfg_test,
                derives: derives.clone(),
                depth,
            });
        };

        match kw.as_str() {
            "use" => {
                cur.skip_ws();
                while cur.peek() == Some(b':') {
                    cur.i += 1; // leading `::`
                }
                let name = cur.at_word().unwrap_or("").to_string();
                cur.skip_past_semi();
                push(out, ItemKind::Use, name, cur.i, None);
            }
            "extern-crate" => {
                cur.read_word(); // `crate`
                cur.skip_ws();
                let name = cur.at_word().unwrap_or("").to_string();
                cur.skip_past_semi();
                push(out, ItemKind::ExternCrate, name, cur.i, None);
            }
            "mod" => {
                cur.skip_ws();
                let name = cur.read_word().unwrap_or_default();
                match cur.find_body_or_semi() {
                    Some(open) => {
                        let close = tree.close_of(open).unwrap_or(cur.end);
                        let child_prefix = if prefix.is_empty() {
                            name.clone()
                        } else {
                            format!("{prefix}::{name}")
                        };
                        push(out, ItemKind::Mod, name, (close + 1).min(end), Some((open, close)));
                        parse_block(
                            bytes,
                            tree,
                            open + 1,
                            close,
                            &child_prefix,
                            cfg_test,
                            depth + 1,
                            out,
                        );
                        cur.i = (close + 1).min(end);
                    }
                    None => push(out, ItemKind::Mod, name, cur.i, None),
                }
            }
            "fn" => {
                cur.skip_ws();
                let name = cur.read_word().unwrap_or_default();
                match cur.find_body_or_semi() {
                    Some(open) => {
                        let close = tree.close_of(open).unwrap_or(cur.end);
                        cur.i = (close + 1).min(end);
                        push(out, ItemKind::Fn, name, cur.i, Some((open, close)));
                    }
                    None => push(out, ItemKind::Fn, name, cur.i, None),
                }
            }
            "struct" | "enum" | "union" => {
                let kind = match kw.as_str() {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    _ => ItemKind::Union,
                };
                cur.skip_ws();
                let name = cur.read_word().unwrap_or_default();
                // Tuple structs: the `(` group is the body and a `;` ends
                // the item; braced bodies end it directly.
                let mut body = None;
                while cur.i < cur.end {
                    match cur.peek() {
                        Some(b'{') => {
                            let open = cur.i;
                            let close = tree.close_of(open).unwrap_or(cur.end);
                            body = Some((open, close));
                            cur.i = (close + 1).min(end);
                            break;
                        }
                        Some(b'(') => {
                            let open = cur.i;
                            let close = tree.close_of(open).unwrap_or(cur.end);
                            body = Some((open, close));
                            cur.i = (close + 1).min(end);
                            cur.skip_past_semi();
                            break;
                        }
                        Some(b';') => {
                            cur.i += 1;
                            break;
                        }
                        Some(b'<') => cur.skip_angles(),
                        Some(b'[') => cur.bump(),
                        _ => cur.i += 1,
                    }
                }
                push(out, kind, name, cur.i, body);
            }
            "trait" => {
                cur.skip_ws();
                let name = cur.read_word().unwrap_or_default();
                match cur.find_body_or_semi() {
                    Some(open) => {
                        let close = tree.close_of(open).unwrap_or(cur.end);
                        let child_prefix = if prefix.is_empty() {
                            name.clone()
                        } else {
                            format!("{prefix}::{name}")
                        };
                        push(out, ItemKind::Trait, name, (close + 1).min(end), Some((open, close)));
                        parse_block(
                            bytes,
                            tree,
                            open + 1,
                            close,
                            &child_prefix,
                            cfg_test,
                            depth + 1,
                            out,
                        );
                        cur.i = (close + 1).min(end);
                    }
                    None => push(out, ItemKind::Trait, name, cur.i, None),
                }
            }
            "impl" => {
                // Header: optional generics, then `[!]Trait [for] Type`.
                cur.skip_ws();
                if cur.peek() == Some(b'<') {
                    cur.skip_angles();
                }
                let mut name = String::new();
                loop {
                    cur.skip_ws();
                    if let Some(w) = cur.at_word() {
                        if w == "for" {
                            cur.read_word();
                            name.clear(); // the self-type follows
                            continue;
                        }
                        if w == "where" {
                            // Bounds until the body.
                            while cur.i < cur.end && cur.peek() != Some(b'{') {
                                match cur.peek() {
                                    Some(b'(') | Some(b'[') => cur.bump(),
                                    Some(b'<') => cur.skip_angles(),
                                    _ => cur.i += 1,
                                }
                            }
                            break;
                        }
                        name = cur.read_word().expect("at_word was Some");
                        continue;
                    }
                    match cur.peek() {
                        Some(b'{') | None => break,
                        Some(b'<') => cur.skip_angles(),
                        Some(b'(') | Some(b'[') => {
                            cur.bump(); // impl Trait for (A, B) / [T; N]
                        }
                        Some(b';') => break, // `impl Trait for Type;` (never valid, recover)
                        _ => cur.i += 1,
                    }
                }
                if cur.peek() == Some(b'{') {
                    let open = cur.i;
                    let close = tree.close_of(open).unwrap_or(cur.end);
                    let child_prefix = match (prefix.is_empty(), name.is_empty()) {
                        (_, true) => prefix.to_string(),
                        (true, false) => name.clone(),
                        (false, false) => format!("{prefix}::{name}"),
                    };
                    push(out, ItemKind::Impl, name, (close + 1).min(end), Some((open, close)));
                    parse_block(
                        bytes,
                        tree,
                        open + 1,
                        close,
                        &child_prefix,
                        cfg_test,
                        depth + 1,
                        out,
                    );
                    cur.i = (close + 1).min(end);
                } else {
                    cur.skip_past_semi();
                    push(out, ItemKind::Impl, name, cur.i, None);
                }
            }
            "macro_rules" => {
                cur.skip_ws();
                if cur.peek() == Some(b'!') {
                    cur.i += 1;
                }
                cur.skip_ws();
                let name = cur.read_word().unwrap_or_default();
                cur.skip_ws();
                let body = match cur.peek() {
                    Some(b'{') | Some(b'(') | Some(b'[') => {
                        let open = cur.i;
                        let close = tree.close_of(open).unwrap_or(cur.end);
                        cur.i = (close + 1).min(end);
                        if bytes[open] != b'{' {
                            cur.skip_past_semi();
                        }
                        Some((open, close))
                    }
                    _ => None,
                };
                push(out, ItemKind::MacroDef, name, cur.i, body);
            }
            "const" | "static" => {
                let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
                cur.skip_ws();
                if cur.at_word() == Some("mut") {
                    cur.read_word();
                    cur.skip_ws();
                }
                let name = cur.at_word().unwrap_or("").to_string();
                cur.skip_past_semi();
                push(out, kind, name, cur.i, None);
            }
            "type" => {
                cur.skip_ws();
                let name = cur.at_word().unwrap_or("").to_string();
                cur.skip_past_semi();
                push(out, ItemKind::TypeAlias, name, cur.i, None);
            }
            _ => {
                // Macro invocation at item level (`name! { .. }` /
                // `name!(..);`) or something we don't model: consume one
                // "statement" and record it as opaque.
                cur.skip_ws();
                if cur.peek() == Some(b'!') {
                    cur.i += 1;
                    cur.skip_ws();
                    cur.read_word(); // optional `macro_name! ident { .. }`
                    cur.skip_ws();
                    match cur.peek() {
                        Some(b'{') => cur.bump(),
                        Some(b'(') | Some(b'[') => {
                            cur.bump();
                            cur.skip_past_semi();
                        }
                        _ => cur.skip_past_semi(),
                    }
                    push(out, ItemKind::Other, kw, cur.i, None);
                } else {
                    if let Some(open) = cur.find_body_or_semi() {
                        let close = tree.close_of(open).unwrap_or(cur.end);
                        cur.i = (close + 1).min(end);
                    }
                    push(out, ItemKind::Other, kw, cur.i, None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn index(src: &str) -> ItemIndex {
        let scanned = scan(src);
        let tree = TokenTree::build(&scanned.masked);
        segment(&scanned, &tree)
    }

    fn find<'a>(idx: &'a ItemIndex, kind: ItemKind, name: &str) -> &'a Item {
        idx.items
            .iter()
            .find(|it| it.kind == kind && it.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name}: {:?}", idx.items))
    }

    #[test]
    fn top_level_items_segment() {
        let src = "use std::collections::BTreeMap;\n\
                   pub struct Point { x: u8, y: u8 }\n\
                   pub(crate) fn dist(p: Point) -> u8 { p.x + p.y }\n\
                   const LIMIT: usize = 4;\n\
                   pub type Pair = (u8, u8);\n";
        let idx = index(src);
        assert_eq!(find(&idx, ItemKind::Use, "std").kind, ItemKind::Use);
        assert!(find(&idx, ItemKind::Struct, "Point").body.is_some());
        assert_eq!(find(&idx, ItemKind::Fn, "dist").path, "dist");
        assert_eq!(find(&idx, ItemKind::Const, "LIMIT").name, "LIMIT");
        assert_eq!(find(&idx, ItemKind::TypeAlias, "Pair").name, "Pair");
    }

    #[test]
    fn nested_paths_thread_through_mods_and_impls() {
        let src = "mod outer {\n\
                       pub struct S;\n\
                       impl S {\n\
                           pub fn go(&self) {}\n\
                       }\n\
                       mod inner { fn leaf() {} }\n\
                   }\n";
        let idx = index(src);
        assert_eq!(find(&idx, ItemKind::Fn, "go").path, "outer::S::go");
        assert_eq!(find(&idx, ItemKind::Fn, "leaf").path, "outer::inner::leaf");
        let off = src.find("&self").unwrap();
        assert_eq!(idx.path_at(off), Some("outer::S::go"));
    }

    #[test]
    fn trait_impls_name_the_self_type() {
        let src = "impl<'a> Display for Checkpoint<'a> { fn fmt(&self) {} }\n\
                   impl From<u8> for Tick { fn from(v: u8) -> Tick { Tick(v) } }\n";
        let idx = index(src);
        assert_eq!(find(&idx, ItemKind::Fn, "fmt").path, "Checkpoint::fmt");
        assert_eq!(find(&idx, ItemKind::Fn, "from").path, "Tick::from");
    }

    #[test]
    fn cfg_test_gates_items_and_inherits() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() {}\n\
                       #[test]\n\
                       fn case() { helper(); }\n\
                   }\n";
        let idx = index(src);
        assert!(!find(&idx, ItemKind::Fn, "live").cfg_test);
        assert!(find(&idx, ItemKind::Fn, "helper").cfg_test);
        assert!(find(&idx, ItemKind::Fn, "case").cfg_test);
        assert!(idx.in_cfg_test(src.find("helper();").unwrap()));
        assert!(!idx.in_cfg_test(src.find("live").unwrap()));
    }

    #[test]
    fn cfg_all_test_counts_as_test_gating() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\n";
        let idx = index(src);
        assert!(find(&idx, ItemKind::Fn, "f").cfg_test);
    }

    #[test]
    fn derives_are_captured_plain_and_cfg_attr() {
        let src = "#[derive(Debug, Clone, serde::Serialize)]\nstruct A;\n\
                   #[cfg_attr(feature = \"serde\", derive(serde::Serialize, serde::Deserialize))]\n\
                   struct B;\n";
        let idx = index(src);
        let a = find(&idx, ItemKind::Struct, "A");
        assert!(a.derives.iter().any(|d| d == "Serialize"), "{:?}", a.derives);
        assert!(a.derives.iter().any(|d| d == "Debug"));
        let b = find(&idx, ItemKind::Struct, "B");
        assert!(b.derives.iter().any(|d| d == "Deserialize"), "{:?}", b.derives);
    }

    #[test]
    fn macro_rules_bodies_are_marked() {
        let src = "macro_rules! noisy {\n\
                       () => { Instant::now() };\n\
                   }\n\
                   fn after() {}\n";
        let idx = index(src);
        let m = find(&idx, ItemKind::MacroDef, "noisy");
        assert!(m.body.is_some());
        assert!(idx.in_macro_def(src.find("Instant").unwrap()));
        assert!(!idx.in_macro_def(src.find("after").unwrap()));
    }

    #[test]
    fn fn_bodies_with_where_clauses_and_generics_close_correctly() {
        let src = "fn g<T: AsRef<[u8]>>(x: T) -> Vec<Vec<(u8, u8)>>\n\
                   where T: Clone {\n\
                       let v = x.as_ref().to_vec();\n\
                       vec![v.into_iter().map(|b| (b, b)).collect()]\n\
                   }\n\
                   struct After;\n";
        let idx = index(src);
        let g = find(&idx, ItemKind::Fn, "g");
        assert!(g.body.is_some());
        assert!(idx.items.iter().any(|it| it.name == "After"));
        assert_eq!(idx.path_at(src.find("to_vec").unwrap()), Some("g"));
    }

    #[test]
    fn tuple_and_unit_structs_terminate() {
        let src = "struct U;\nstruct T(u8, Vec<u8>);\nstruct B { f: u8 }\nfn tail() {}\n";
        let idx = index(src);
        assert!(find(&idx, ItemKind::Struct, "U").body.is_none());
        assert!(find(&idx, ItemKind::Struct, "T").body.is_some());
        assert!(find(&idx, ItemKind::Struct, "B").body.is_some());
        assert!(idx.items.iter().any(|it| it.name == "tail"));
    }

    #[test]
    fn extern_crate_and_macro_invocations_segment() {
        let src = "extern crate taskdrop_pmf;\n\
                   thread_local! { static X: u8 = 0; }\n\
                   fn tail() {}\n";
        let idx = index(src);
        assert_eq!(find(&idx, ItemKind::ExternCrate, "taskdrop_pmf").name, "taskdrop_pmf");
        assert!(idx.items.iter().any(|it| it.name == "tail"));
    }

    #[test]
    fn unbalanced_input_still_terminates() {
        let idx = index("fn broken( { struct X;");
        assert!(!idx.items.is_empty());
    }
}
