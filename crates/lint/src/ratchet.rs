//! The ratchet: committed per-rule, per-crate counts that may only
//! decrease.
//!
//! Count-gated rules (`panic-unwrap`, `panic-macro`, `slice-index`) don't
//! fail on existing debt — they fail on *new* debt, and they localize it:
//! each `(rule, crate)` pair carries its own committed count, so an
//! `unwrap()` added to `serve` can't hide behind slack in `bench`. The
//! committed baseline lives in `crates/lint/ratchet.json`; CI fails when
//! any count exceeds its baseline (a missing entry reads as zero), and
//! `--update-ratchet` re-records current counts after genuine clean-ups
//! (entries that reach zero are dropped from the file).

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::diag::Finding;

/// One committed count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatchetEntry {
    /// Rule id.
    pub rule: String,
    /// Short crate name the count applies to.
    pub krate: String,
    /// Highest permitted finding count.
    pub count: usize,
}

/// The committed baseline file contents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ratchet {
    /// Entries, kept sorted by (rule, crate) for a stable on-disk form.
    pub entries: Vec<RatchetEntry>,
}

impl Ratchet {
    /// Baseline for `(rule, krate)`, if recorded.
    #[must_use]
    pub fn get(&self, rule: &str, krate: &str) -> Option<usize> {
        self.entries.iter().find(|e| e.rule == rule && e.krate == krate).map(|e| e.count)
    }

    /// Crates with a recorded baseline for `rule`.
    #[must_use]
    pub fn crates_for(&self, rule: &str) -> Vec<&str> {
        self.entries.iter().filter(|e| e.rule == rule).map(|e| e.krate.as_str()).collect()
    }

    /// Build a baseline from `(rule, crate, count)` triples; zero counts
    /// are dropped (absence already means zero).
    #[must_use]
    pub fn from_counts(counts: &[(&str, &str, usize)]) -> Self {
        let mut entries: Vec<RatchetEntry> = counts
            .iter()
            .filter(|&&(_, _, count)| count > 0)
            .map(|&(rule, krate, count)| RatchetEntry {
                rule: rule.to_string(),
                krate: krate.to_string(),
                count,
            })
            .collect();
        entries.sort_by(|a, b| (&a.rule, &a.krate).cmp(&(&b.rule, &b.krate)));
        Ratchet { entries }
    }

    /// Load from `path`. A missing file is an empty baseline (every
    /// ratcheted rule then reads as a regression until recorded).
    ///
    /// # Errors
    /// I/O failures other than not-found, and malformed JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => serde_json::from_str(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed ratchet file {}: {e:?}", path.display()),
                )
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Ratchet::default()),
            Err(e) => Err(e),
        }
    }

    /// Write to `path` as pretty JSON (stable order, trailing newline).
    ///
    /// # Errors
    /// I/O failures writing the file.
    pub fn save(&self, path: &Path) -> std::io::Result<Self> {
        let mut sorted = self.clone();
        sorted.entries.sort_by(|a, b| (&a.rule, &a.krate).cmp(&(&b.rule, &b.krate)));
        let json = serde_json::to_string_pretty(&sorted)
            .map_err(|e| std::io::Error::other(format!("serialize ratchet: {e:?}")))?;
        std::fs::write(path, json + "\n")?;
        Ok(sorted)
    }
}

/// Outcome of one `(rule, crate)` ratchet against the baseline.
#[derive(Debug)]
pub struct RatchetStatus {
    /// Rule id.
    pub rule: &'static str,
    /// Short crate name.
    pub krate: String,
    /// Findings counted in this run.
    pub count: usize,
    /// Committed baseline, if any.
    pub baseline: Option<usize>,
    /// The individual sites (printed on regression).
    pub sites: Vec<Finding>,
}

impl RatchetStatus {
    /// A count above the baseline fails the run; a missing baseline counts
    /// as zero (debt-free crates need no entry).
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.count > self.baseline.unwrap_or(0)
    }

    /// The baseline can be tightened (count went down).
    #[must_use]
    pub fn improvable(&self) -> bool {
        self.baseline.is_some_and(|b| self.count < b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_baseline_reads_as_zero() {
        let mk = |count| RatchetStatus {
            rule: "panic-unwrap",
            krate: "serve".to_string(),
            count,
            baseline: None,
            sites: vec![],
        };
        assert!(!mk(0).regressed(), "debt-free crates need no ratchet entry");
        assert!(mk(1).regressed(), "any unrecorded debt fails");
    }

    #[test]
    fn count_above_baseline_regresses_below_improves() {
        let mk = |count, baseline| RatchetStatus {
            rule: "panic-unwrap",
            krate: "serve".to_string(),
            count,
            baseline: Some(baseline),
            sites: vec![],
        };
        assert!(mk(5, 4).regressed());
        assert!(!mk(4, 4).regressed());
        assert!(!mk(3, 4).regressed());
        assert!(mk(3, 4).improvable());
        assert!(!mk(4, 4).improvable());
    }

    #[test]
    fn per_crate_keys_are_independent() {
        let r = Ratchet::from_counts(&[
            ("panic-unwrap", "lint", 7),
            ("panic-unwrap", "serve", 0),
            ("slice-index", "pmf", 2),
        ]);
        assert_eq!(r.get("panic-unwrap", "lint"), Some(7));
        assert_eq!(r.get("panic-unwrap", "serve"), None, "zero counts are dropped");
        assert_eq!(r.get("slice-index", "pmf"), Some(2));
        assert_eq!(r.get("slice-index", "lint"), None);
        assert_eq!(r.crates_for("panic-unwrap"), ["lint"]);
    }

    #[test]
    fn roundtrip_via_json() {
        let r = Ratchet::from_counts(&[("panic-unwrap", "serve", 29), ("slice-index", "sim", 3)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Ratchet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("panic-unwrap", "serve"), Some(29));
        assert_eq!(back.get("slice-index", "sim"), Some(3));
        assert_eq!(back.get("panic-unwrap", "absent"), None);
        // from_counts sorts for a stable on-disk form.
        assert_eq!(r.entries[0].rule, "panic-unwrap");
    }
}
