//! Diagnostic types and rendering (human and machine-readable).

use serde::Serialize;

/// How a rule's findings gate CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Any finding fails the run.
    Error,
    /// Reported, never fails the run (hygiene signals, unused pragmas).
    Warn,
    /// Findings are *counted* and compared against the committed ratchet
    /// baseline; the run fails only if the count increases.
    Ratchet,
}

impl Severity {
    /// Lowercase label used in human output and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Ratchet => "ratchet",
        }
    }
}

/// One diagnostic: a rule firing at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (kebab-case, e.g. `hash-collections`).
    pub rule: &'static str,
    /// Gate class of the rule that fired.
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte-based).
    pub col: usize,
    /// What was found and why it matters.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Enclosing item path (`serve::Shard::advance_to`), when the finding
    /// sits inside a segmented item.
    pub item: Option<String>,
}

impl Finding {
    /// `severity[rule]: path:line:col (in item) — message` plus the
    /// excerpt line.
    #[must_use]
    pub fn render(&self) -> String {
        let item = self.item.as_ref().map(|i| format!(" (in {i})")).unwrap_or_default();
        format!(
            "{}[{}]: {}:{}:{}{} — {}\n    | {}",
            self.severity.as_str(),
            self.rule,
            self.path,
            self.line,
            self.col,
            item,
            self.message,
            self.excerpt
        )
    }
}

/// Serializable mirror of [`Finding`] for `--json` output (the vendored
/// serde derives on owned field types only).
#[derive(Debug, Serialize)]
pub struct FindingJson {
    /// Rule identifier.
    pub rule: String,
    /// Severity label (`error` / `warn` / `ratchet`).
    pub severity: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human message.
    pub message: String,
    /// Offending line, trimmed.
    pub excerpt: String,
    /// Enclosing item path, when known.
    pub item: Option<String>,
}

impl From<&Finding> for FindingJson {
    fn from(f: &Finding) -> Self {
        FindingJson {
            rule: f.rule.to_string(),
            severity: f.severity.as_str().to_string(),
            path: f.path.clone(),
            line: f.line,
            col: f.col,
            message: f.message.clone(),
            excerpt: f.excerpt.clone(),
            item: f.item.clone(),
        }
    }
}
