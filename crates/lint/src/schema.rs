//! Checkpoint-schema fingerprinting: the "old checkpoints parse" promise
//! as a lint gate.
//!
//! PR 8 committed to versioned, replayable checkpoints. The soft spot is
//! silent drift: a field added to a serde struct reachable from
//! `Checkpoint`/`ShardCheckpoint`/`DagCheckpoint` changes the wire
//! format without anyone bumping `CHECKPOINT_VERSION`, and old snapshots
//! stop restoring. This module inventories every serde type reachable
//! from the roots (via the item segmentation — field names, types and
//! *order*, serde/cfg attributes included), hashes each type with FNV-1a
//! 64, and compares against the committed `crates/lint/schema.json`:
//!
//! * same `CHECKPOINT_VERSION`, same fingerprints → clean;
//! * same version, different fingerprints → **error** at each drifted
//!   type (the change needs a same-PR version bump);
//! * bumped version → **error** until `--update-schema` refreshes the
//!   committed file (and `--update-schema` itself *refuses* to run when
//!   the version was not bumped — drift can't be laundered).
//!
//! Fingerprints are computed over masked text, so comments never perturb
//! them; the one blind spot is the *content* of string literals in field
//! attributes (masked to spaces), which is acceptable — names, types,
//! order, and attribute shape all survive.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::diag::{Finding, Severity};
use crate::items::{ItemIndex, ItemKind};
use crate::lexer::Scanned;
use crate::ttree::TokenTree;

/// The root types whose reachable closure is fingerprinted.
pub const SCHEMA_ROOTS: &[&str] = &["Checkpoint", "ShardCheckpoint", "DagCheckpoint"];

/// Workspace-relative path of the committed fingerprint file.
pub const SCHEMA_PATH: &str = "crates/lint/schema.json";

/// One serde type as collected from source (pre-reachability).
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// Defining crate (short name).
    pub krate: String,
    /// Type name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based definition line.
    pub line: usize,
    /// `struct` / `enum` / `alias`.
    pub kind: &'static str,
    /// Rendered fields (or variants / alias target), in declaration order.
    pub fields: Vec<String>,
    /// Identifiers referenced by the field types (reachability edges).
    pub referenced: Vec<String>,
}

/// The committed fingerprint of one reachable type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeFingerprint {
    /// Defining crate.
    pub krate: String,
    /// Type name.
    pub name: String,
    /// FNV-1a 64 hash (hex) of kind + name + field renderings.
    pub hash: String,
    /// Rendered fields, committed for reviewable diffs.
    pub fields: Vec<String>,
    /// Workspace-relative file (for diagnostics; not hashed).
    pub file: String,
    /// 1-based line (not hashed).
    pub line: usize,
}

/// The full committed snapshot (`crates/lint/schema.json`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaSnapshot {
    /// `CHECKPOINT_VERSION` at snapshot time.
    pub checkpoint_version: u32,
    /// Order-independent hash over all type fingerprints.
    pub root_hash: String,
    /// All reachable types, sorted by (crate, name).
    pub types: Vec<TypeFingerprint>,
}

impl SchemaSnapshot {
    /// Load from `path`; `Ok(None)` when the file doesn't exist.
    ///
    /// # Errors
    /// I/O failures other than not-found, and malformed JSON.
    pub fn load(path: &Path) -> std::io::Result<Option<Self>> {
        match std::fs::read_to_string(path) {
            Ok(text) => serde_json::from_str(&text).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed schema file {}: {e:?}", path.display()),
                )
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Write to `path` as pretty JSON with a trailing newline.
    ///
    /// # Errors
    /// I/O failures writing the file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("serialize schema: {e:?}")))?;
        std::fs::write(path, json + "\n")
    }

    /// Fingerprint for `(krate, name)`, if present.
    #[must_use]
    pub fn get(&self, krate: &str, name: &str) -> Option<&TypeFingerprint> {
        self.types.iter().find(|t| t.krate == krate && t.name == name)
    }
}

/// FNV-1a 64 (dependency-free; stability matters more than strength —
/// this detects accidental drift, not adversaries).
#[must_use]
pub fn fnv64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Collapse all whitespace runs in `text` to single spaces.
fn squash(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Split `masked[start..end]` at top-level commas (delimiter groups
/// jumped via the tree), returning non-empty chunk spans.
fn split_fields(masked: &[u8], tree: &TokenTree, start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut chunks = Vec::new();
    let mut chunk_start = start;
    let mut i = start;
    while i < end {
        match masked[i] {
            b'{' | b'(' | b'[' => {
                i = tree.close_of(i).map_or(i + 1, |c| (c + 1).min(end));
            }
            b'<' => {
                // Generic args: angle-scan with `->` guard.
                let mut depth = 0usize;
                while i < end {
                    match masked[i] {
                        b'(' | b'[' => {
                            i = tree.close_of(i).map_or(i + 1, |c| (c + 1).min(end));
                            continue;
                        }
                        b'<' => depth += 1,
                        b'>' if i > 0 && masked[i - 1] != b'-' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
            }
            b',' => {
                chunks.push((chunk_start, i));
                i += 1;
                chunk_start = i;
            }
            _ => i += 1,
        }
    }
    chunks.push((chunk_start, end));
    chunks
}

/// Identifiers in `text` outside `#[...]` attribute groups.
fn type_idents(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'#' {
            // Skip the attribute group.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'[' {
                j += 1;
            }
            let mut depth = 0usize;
            while j < bytes.len() {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let s = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(text[s..i].to_string());
        } else {
            i += 1;
        }
    }
    out
}

/// Collect serde type definitions (and any `CHECKPOINT_VERSION` const)
/// from one segmented file.
#[must_use]
pub fn collect(
    rel: &str,
    krate: &str,
    scanned: &Scanned,
    tree: &TokenTree,
    items: &ItemIndex,
) -> (Vec<TypeDef>, Option<u32>) {
    let masked = scanned.masked.as_bytes();
    let mut defs = Vec::new();
    let mut version = None;
    for item in &items.items {
        if item.cfg_test {
            continue;
        }
        match item.kind {
            ItemKind::Struct | ItemKind::Enum | ItemKind::Union => {
                let is_serde = item.derives.iter().any(|d| d == "Serialize" || d == "Deserialize");
                if !is_serde || item.name.is_empty() {
                    continue;
                }
                let kind = if item.kind == ItemKind::Enum { "enum" } else { "struct" };
                let mut fields = Vec::new();
                let mut referenced = Vec::new();
                if let Some((open, close)) = item.body {
                    for (s, e) in split_fields(masked, tree, open + 1, close) {
                        let text = squash(&scanned.masked[s..e]);
                        if text.is_empty() {
                            continue;
                        }
                        referenced.extend(type_idents(&scanned.masked[s..e]));
                        fields.push(text);
                    }
                }
                let (line, _) = scanned.line_col(item.span.0);
                defs.push(TypeDef {
                    krate: krate.to_string(),
                    name: item.name.clone(),
                    file: rel.to_string(),
                    line,
                    kind,
                    fields,
                    referenced,
                });
            }
            ItemKind::TypeAlias => {
                if item.name.is_empty() {
                    continue;
                }
                let text = &scanned.masked[item.span.0..item.span.1.min(scanned.masked.len())];
                let Some(eq) = text.find('=') else { continue };
                let rhs = text[eq + 1..].trim_end_matches(';');
                let (line, _) = scanned.line_col(item.span.0);
                defs.push(TypeDef {
                    krate: krate.to_string(),
                    name: item.name.clone(),
                    file: rel.to_string(),
                    line,
                    kind: "alias",
                    fields: vec![squash(rhs)],
                    referenced: type_idents(rhs),
                });
            }
            ItemKind::Const if item.name == "CHECKPOINT_VERSION" => {
                let text = &scanned.masked[item.span.0..item.span.1.min(scanned.masked.len())];
                if let Some(eq) = text.find('=') {
                    let digits: String =
                        text[eq + 1..].chars().filter(char::is_ascii_digit).collect();
                    version = digits.parse().ok().or(version);
                }
            }
            _ => {}
        }
    }
    (defs, version)
}

/// Build the snapshot: reachable closure of [`SCHEMA_ROOTS`] over `defs`.
/// `None` when no root type exists at all (synthetic trees without
/// checkpoints skip the schema pass entirely).
#[must_use]
pub fn snapshot(defs: &[TypeDef], checkpoint_version: u32) -> Option<SchemaSnapshot> {
    let mut queue: Vec<usize> = Vec::new();
    let mut visited = vec![false; defs.len()];
    for (i, d) in defs.iter().enumerate() {
        if SCHEMA_ROOTS.contains(&d.name.as_str()) {
            visited[i] = true;
            queue.push(i);
        }
    }
    if queue.is_empty() {
        return None;
    }
    while let Some(i) = queue.pop() {
        let here = &defs[i];
        for ident in &here.referenced {
            let matches: Vec<usize> =
                defs.iter().enumerate().filter(|(_, d)| &d.name == ident).map(|(j, _)| j).collect();
            // Prefer a same-crate definition; otherwise take every match
            // (conservative: ambiguity widens the fingerprint).
            let same: Vec<usize> =
                matches.iter().copied().filter(|&j| defs[j].krate == here.krate).collect();
            for j in if same.is_empty() { matches } else { same } {
                if !visited[j] {
                    visited[j] = true;
                    queue.push(j);
                }
            }
        }
    }

    let mut types: Vec<TypeFingerprint> = defs
        .iter()
        .zip(&visited)
        .filter(|(_, v)| **v)
        .map(|(d, _)| {
            let payload = format!("{} {}\n{}", d.kind, d.name, d.fields.join("\n"));
            TypeFingerprint {
                krate: d.krate.clone(),
                name: d.name.clone(),
                hash: format!("{:016x}", fnv64(&payload)),
                fields: d.fields.clone(),
                file: d.file.clone(),
                line: d.line,
            }
        })
        .collect();
    types.sort_by(|a, b| (&a.krate, &a.name).cmp(&(&b.krate, &b.name)));
    let lines: Vec<String> =
        types.iter().map(|t| format!("{}::{}={}", t.krate, t.name, t.hash)).collect();
    let root_hash = format!("{:016x}", fnv64(&lines.join("\n")));
    Some(SchemaSnapshot { checkpoint_version, root_hash, types })
}

fn schema_finding(path: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: "schema-drift",
        severity: Severity::Error,
        path: path.to_string(),
        line,
        col: 1,
        message,
        excerpt: String::new(),
        item: None,
    }
}

/// Compare the current snapshot against the committed one and produce
/// gate findings. `version_found` is whether a `CHECKPOINT_VERSION` const
/// was located anywhere in the tree.
#[must_use]
pub fn compare(
    committed: Option<&SchemaSnapshot>,
    current: &SchemaSnapshot,
    version_found: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !version_found {
        findings.push(schema_finding(
            SCHEMA_PATH,
            1,
            "checkpoint roots exist but no `CHECKPOINT_VERSION` const was \
             found; the schema gate needs a version to ratchet against"
                .to_string(),
        ));
        return findings;
    }
    let Some(committed) = committed else {
        findings.push(schema_finding(
            SCHEMA_PATH,
            1,
            format!(
                "checkpoint types found but {SCHEMA_PATH} is missing; run \
                 `taskdrop_lint --update-schema` and commit the fingerprints"
            ),
        ));
        return findings;
    };
    if committed.checkpoint_version != current.checkpoint_version {
        if committed.root_hash == current.root_hash {
            findings.push(schema_finding(
                SCHEMA_PATH,
                1,
                format!(
                    "CHECKPOINT_VERSION changed ({} -> {}) but the schema \
                     fingerprints are unchanged; refresh {SCHEMA_PATH} with \
                     `--update-schema` (or drop the needless bump)",
                    committed.checkpoint_version, current.checkpoint_version
                ),
            ));
        } else {
            findings.push(schema_finding(
                SCHEMA_PATH,
                1,
                format!(
                    "CHECKPOINT_VERSION changed ({} -> {}); refresh the \
                     committed fingerprints with `taskdrop_lint \
                     --update-schema` in the same PR",
                    committed.checkpoint_version, current.checkpoint_version
                ),
            ));
        }
        return findings;
    }
    if committed.root_hash == current.root_hash {
        return findings;
    }
    // Same version, drifted schema: point at every drifted type.
    for t in &current.types {
        match committed.get(&t.krate, &t.name) {
            Some(c) if c.hash == t.hash => {}
            Some(_) => findings.push(schema_finding(
                &t.file,
                t.line,
                format!(
                    "checkpoint schema drift: `{}::{}` changed shape without \
                     a CHECKPOINT_VERSION bump — old checkpoints may no \
                     longer restore; bump the version and run --update-schema",
                    t.krate, t.name
                ),
            )),
            None => findings.push(schema_finding(
                &t.file,
                t.line,
                format!(
                    "checkpoint schema drift: `{}::{}` is newly reachable \
                     from a checkpoint root without a CHECKPOINT_VERSION \
                     bump; bump the version and run --update-schema",
                    t.krate, t.name
                ),
            )),
        }
    }
    for c in &committed.types {
        if current.get(&c.krate, &c.name).is_none() {
            findings.push(schema_finding(
                SCHEMA_PATH,
                1,
                format!(
                    "checkpoint schema drift: `{}::{}` is no longer reachable \
                     from a checkpoint root without a CHECKPOINT_VERSION \
                     bump; bump the version and run --update-schema",
                    c.krate, c.name
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::segment;
    use crate::lexer::scan;
    use crate::ttree::TokenTree;

    fn collect_src(rel: &str, krate: &str, src: &str) -> (Vec<TypeDef>, Option<u32>) {
        let scanned = scan(src);
        let tree = TokenTree::build(&scanned.masked);
        let items = segment(&scanned, &tree);
        collect(rel, krate, &scanned, &tree, &items)
    }

    const SIM_SRC: &str = "\
pub const CHECKPOINT_VERSION: u32 = 3;\n\
pub type Tick = u64;\n\
#[derive(Debug, Clone, Serialize, Deserialize)]\n\
pub struct Inner { pub a: u8, pub when: Tick }\n\
#[derive(Debug, Clone, Serialize, Deserialize)]\n\
pub struct Checkpoint {\n\
    pub version: u32,\n\
    #[serde(default)]\n\
    pub inner: Vec<Inner>,\n\
}\n\
#[derive(Debug, Serialize, Deserialize)]\n\
pub struct Unrelated { pub z: u8 }\n\
#[cfg(test)]\n\
mod tests { pub struct Checkpoint { pub fake: u8 } }\n";

    #[test]
    fn collect_finds_serde_types_version_and_skips_tests() {
        let (defs, version) = collect_src("crates/sim/src/cp.rs", "sim", SIM_SRC);
        assert_eq!(version, Some(3));
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"Checkpoint"));
        assert!(names.contains(&"Inner"));
        assert!(names.contains(&"Tick"), "aliases are collected: {names:?}");
        assert_eq!(names.iter().filter(|n| **n == "Checkpoint").count(), 1, "test mod skipped");
        let cp = defs.iter().find(|d| d.name == "Checkpoint").unwrap();
        assert_eq!(cp.fields.len(), 2);
        assert!(cp.fields[1].contains("#[serde(default)]"), "{:?}", cp.fields);
        assert!(cp.referenced.iter().any(|r| r == "Inner"));
    }

    #[test]
    fn snapshot_reaches_transitively_and_skips_unrelated() {
        let (defs, version) = collect_src("crates/sim/src/cp.rs", "sim", SIM_SRC);
        let snap = snapshot(&defs, version.unwrap()).unwrap();
        let names: Vec<&str> = snap.types.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["Checkpoint", "Inner", "Tick"], "sorted, closed, no Unrelated");
        assert_eq!(snap.checkpoint_version, 3);
    }

    #[test]
    fn no_roots_means_no_snapshot() {
        let (defs, _) = collect_src(
            "crates/x/src/lib.rs",
            "x",
            "#[derive(Serialize)]\nstruct Plain { a: u8 }\n",
        );
        assert!(snapshot(&defs, 1).is_none());
    }

    #[test]
    fn field_mutation_changes_exactly_that_fingerprint() {
        let (defs, _) = collect_src("crates/sim/src/cp.rs", "sim", SIM_SRC);
        let before = snapshot(&defs, 3).unwrap();
        let mutated = SIM_SRC.replace("pub a: u8", "pub a: u16");
        let (defs2, _) = collect_src("crates/sim/src/cp.rs", "sim", &mutated);
        let after = snapshot(&defs2, 3).unwrap();
        assert_ne!(before.root_hash, after.root_hash);
        assert_ne!(
            before.get("sim", "Inner").unwrap().hash,
            after.get("sim", "Inner").unwrap().hash
        );
        assert_eq!(
            before.get("sim", "Checkpoint").unwrap().hash,
            after.get("sim", "Checkpoint").unwrap().hash
        );
    }

    #[test]
    fn comments_do_not_perturb_fingerprints() {
        let (defs, _) = collect_src("crates/sim/src/cp.rs", "sim", SIM_SRC);
        let before = snapshot(&defs, 3).unwrap();
        let commented = SIM_SRC.replace("pub a: u8,", "/// docs grew\n    pub a: u8,");
        // (the field list uses `,`-free last fields; replace is a no-op if
        // pattern missing — assert the texts differ to keep the test honest)
        let commented = if commented == SIM_SRC {
            SIM_SRC.replace("pub version: u32,", "// note\n    pub version: u32,")
        } else {
            commented
        };
        assert_ne!(commented, SIM_SRC);
        let (defs2, _) = collect_src("crates/sim/src/cp.rs", "sim", &commented);
        let after = snapshot(&defs2, 3).unwrap();
        assert_eq!(before.root_hash, after.root_hash);
    }

    #[test]
    fn compare_flags_drift_without_bump_and_demands_refresh_on_bump() {
        let (defs, _) = collect_src("crates/sim/src/cp.rs", "sim", SIM_SRC);
        let committed = snapshot(&defs, 3).unwrap();
        let mutated = SIM_SRC.replace("pub a: u8", "pub a: u16");
        let (defs2, _) = collect_src("crates/sim/src/cp.rs", "sim", &mutated);
        let current = snapshot(&defs2, 3).unwrap();

        // Drift, same version: error naming the drifted type.
        let f = compare(Some(&committed), &current, true);
        assert!(!f.is_empty());
        assert!(f.iter().any(|x| x.message.contains("Inner")), "{f:?}");

        // Same shape, same version: clean.
        assert!(compare(Some(&committed), &committed.clone(), true).is_empty());

        // Bumped version: stale committed file must be refreshed.
        let bumped = SchemaSnapshot { checkpoint_version: 4, ..current.clone() };
        let f = compare(Some(&committed), &bumped, true);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("--update-schema"));

        // Missing committed file: error.
        let f = compare(None, &current, true);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing"));

        // No version const anywhere: error.
        let f = compare(Some(&committed), &current, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("CHECKPOINT_VERSION"));
    }

    #[test]
    fn enum_variants_fingerprint_in_order() {
        let src = "#[derive(Serialize, Deserialize)]\n\
                   pub enum TaskFate { Completed { at: u64 }, Dropped(u8), Forfeited }\n\
                   #[derive(Serialize, Deserialize)]\n\
                   pub struct Checkpoint { pub fate: TaskFate }\n\
                   pub const CHECKPOINT_VERSION: u32 = 1;\n";
        let (defs, v) = collect_src("crates/sim/src/cp.rs", "sim", src);
        let snap = snapshot(&defs, v.unwrap()).unwrap();
        let fate = snap.get("sim", "TaskFate").unwrap();
        assert_eq!(fate.fields.len(), 3);
        // Reordering variants is drift.
        let swapped =
            src.replace("Completed { at: u64 }, Dropped(u8)", "Dropped(u8), Completed { at: u64 }");
        let (defs2, v2) = collect_src("crates/sim/src/cp.rs", "sim", &swapped);
        let snap2 = snapshot(&defs2, v2.unwrap()).unwrap();
        assert_ne!(fate.hash, snap2.get("sim", "TaskFate").unwrap().hash);
    }
}
