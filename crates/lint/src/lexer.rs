//! A small, honest Rust source scanner.
//!
//! `syn` is not available offline, and the lint rules only need to know one
//! thing the raw bytes cannot tell them: *is this byte code, or is it inside
//! a comment / string / char literal?* [`scan`] answers that by producing a
//! **masked** copy of the source — same byte length, same newlines, but with
//! the contents of every comment, string literal, raw string and char
//! literal blanked to spaces. Rules then run plain substring/identifier
//! matching over the masked text and byte offsets map 1:1 back to the
//! original source for line/column reporting.
//!
//! Handled: line comments (`//`, `///`, `//!`), **nested** block comments
//! (`/* /* */ */`, incl. doc variants), string literals with escapes, byte
//! strings (`b"…"`), raw and raw-byte strings with any hash depth
//! (`r"…"`, `r#"…"#`, `br##"…"##`), char and byte-char literals
//! (`'x'`, `'\n'`, `b'x'`) and the lifetime-vs-char-literal ambiguity
//! (`'a` in `&'a str` stays code).
//!
//! Line comments are additionally recorded verbatim (with position) so the
//! pragma layer can parse `// lint:allow(rule): reason` annotations.

/// A line comment recorded during scanning, for pragma parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Byte offset of the `//` in the source.
    pub offset: usize,
    /// `true` if only whitespace precedes the `//` on its line — the
    /// pragma then applies to the *next* line instead of its own.
    pub own_line: bool,
    /// Comment text *after* the `//` (and after any further `/` or `!`
    /// doc markers), not trimmed.
    pub text: String,
}

/// Result of scanning one source file.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// The source with comment/string/char-literal contents blanked to
    /// spaces. Same length as the input; newlines preserved, so byte
    /// offsets and line numbers are interchangeable with the original.
    pub masked: String,
    /// Every line comment, in source order.
    pub comments: Vec<LineComment>,
    /// Byte offset of the start of each line (line 1 is `line_starts[0]`).
    line_starts: Vec<usize>,
}

impl Scanned {
    /// Map a byte offset to a 1-based `(line, column)` pair.
    #[must_use]
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The original-length line (trimmed) containing `offset`, taken from
    /// the masked text — good enough for excerpts since only comment and
    /// string *contents* are blanked.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).map_or(self.masked.len(), |&e| e);
        self.masked[start..end].trim_end_matches(['\n', '\r'])
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan `src`, blanking every non-code byte. See the module docs.
#[must_use]
pub fn scan(src: &str) -> Scanned {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];
    let mut line = 1usize;
    let mut i = 0usize;

    // Blank out[from..to], preserving newlines, and keep line accounting.
    // Returns nothing; caller advances `i` itself.
    macro_rules! blank {
        ($from:expr, $to:expr) => {
            for k in $from..$to {
                if out[k] != b'\n' {
                    out[k] = b' ';
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            line_starts.push(i + 1);
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            let mut j = i + 2;
            // Skip doc markers so pragma text starts clean.
            while j < b.len() && (b[j] == b'/' || b[j] == b'!') {
                j += 1;
            }
            let mut end = i;
            while end < b.len() && b[end] != b'\n' {
                end += 1;
            }
            let own_line = src[line_starts[line - 1]..start].chars().all(char::is_whitespace);
            comments.push(LineComment {
                line,
                offset: start,
                own_line,
                text: src[j.min(end)..end].to_string(),
            });
            blank!(start, end);
            i = end;
            continue;
        }
        // Block comment (nests).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'\n' {
                    line += 1;
                    line_starts.push(j + 1);
                    j += 1;
                } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank!(start, j);
            i = j;
            continue;
        }
        // Raw / raw-byte string: r"…", r#"…"#, br##"…"## — only when the
        // prefix letter is not part of a longer identifier.
        if (c == b'r' || c == b'b') && (i == 0 || !is_ident(b[i - 1])) {
            let mut j = i;
            if c == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' || (c == b'r' && j == i) {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' && b[j] == b'r' {
                    // Find the terminator `"` + hashes.
                    let mut m = k + 1;
                    'raw: while m < b.len() {
                        if b[m] == b'\n' {
                            line += 1;
                            line_starts.push(m + 1);
                            m += 1;
                            continue;
                        }
                        if b[m] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && m + 1 + h < b.len() && b[m + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                m += 1 + hashes;
                                break 'raw;
                            }
                        }
                        m += 1;
                    }
                    // Blank everything including the delimiters: the
                    // prefix/hashes carry no code meaning rules care about.
                    blank!(i, m);
                    i = m;
                    continue;
                }
            }
            // Fall through: plain identifier starting with r/b, or b"…"
            // handled below when we reach the quote after `b`.
            if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                // byte string: let the `"` branch handle it from i+1.
                i += 1;
                continue;
            }
            if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                // byte char literal: let the `'` branch handle it.
                i += 1;
                continue;
            }
            i += 1;
            continue;
        }
        // String literal with escapes. Delimiting quotes stay visible.
        if c == b'"' {
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' && j + 1 < b.len() {
                    // Line-continuation escape: the skipped byte may be the
                    // newline itself — keep line accounting honest.
                    if b[j + 1] == b'\n' {
                        line += 1;
                        line_starts.push(j + 2);
                    }
                    j += 2;
                } else if b[j] == b'"' {
                    break;
                } else {
                    if b[j] == b'\n' {
                        line += 1;
                        line_starts.push(j + 1);
                    }
                    j += 1;
                }
            }
            blank!(i + 1, j.min(b.len()));
            i = (j + 1).min(b.len());
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                // Escaped char literal: consume to closing quote. Valid
                // literals are single-line, but malformed input must not
                // corrupt line accounting.
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\'' {
                    if b[j] == b'\n' {
                        line += 1;
                        line_starts.push(j + 1);
                    }
                    j += 1;
                }
                blank!(i + 1, j.min(b.len()));
                i = (j + 1).min(b.len());
                continue;
            }
            // 'x' (any single non-quote byte then a quote) is a char
            // literal; anything else ('a in &'a str, '_, 'static) is a
            // lifetime and stays code.
            if i + 2 < b.len() && b[i + 1] != b'\'' && b[i + 2] == b'\'' {
                blank!(i + 1, i + 2);
                i += 3;
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }

    Scanned {
        masked: String::from_utf8(out).expect("masking only writes ASCII spaces"),
        comments,
        line_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_recorded() {
        let s = scan("let x = 1; // trailing HashMap\n// own line\nlet y = 2;\n");
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("let x = 1;"));
        assert_eq!(s.comments.len(), 2);
        assert!(!s.comments[0].own_line);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[1].own_line);
        assert_eq!(s.comments[1].line, 2);
        assert_eq!(s.comments[1].text, " own line");
    }

    #[test]
    fn doc_comment_markers_are_stripped_from_text() {
        let s = scan("/// doc text\n//! inner doc\nfn f() {}\n");
        assert_eq!(s.comments[0].text, " doc text");
        assert_eq!(s.comments[1].text, " inner doc");
        assert!(s.masked.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments_fully_blank() {
        let src = "a /* outer /* inner thread_rng */ still out */ b\n";
        let s = scan(src);
        assert!(!s.masked.contains("thread_rng"));
        assert!(!s.masked.contains("still out"));
        assert!(s.masked.starts_with('a'));
        assert!(s.masked.contains('b'));
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn multiline_block_comment_keeps_line_numbers() {
        let s = scan("a\n/* x\n y\n z */\nfn tail() {}\n");
        let off = s.masked.find("tail").unwrap();
        assert_eq!(s.line_col(off), (5, 4));
    }

    #[test]
    fn strings_blank_contents_keep_delimiters() {
        let s = scan(r#"let p = "std::collections::HashMap"; let q = 1;"#);
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains(r#"let p = ""#));
        assert!(s.masked.contains("let q = 1;"));
    }

    #[test]
    fn escaped_quote_does_not_terminate_string() {
        let s = scan(r#"let p = "a\"Instant::now\"b"; let ok = 2;"#);
        assert!(!s.masked.contains("Instant"));
        assert!(s.masked.contains("let ok = 2;"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = scan(r###"let a = r"thread_rng"; let b = r#"x "quoted" HashSet"#; done();"###);
        assert!(!s.masked.contains("thread_rng"));
        assert!(!s.masked.contains("HashSet"));
        assert!(s.masked.contains("done();"));
    }

    #[test]
    fn raw_string_embedded_hash_quote_needs_full_terminator() {
        let src = "let a = r##\"inner \"# not end HashMap\"##; after();";
        let s = scan(src);
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("after();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = scan(r##"let a = b"from_entropy"; let c = br#"rand::random"#; end();"##);
        assert!(!s.masked.contains("from_entropy"));
        assert!(!s.masked.contains("rand::random"));
        assert!(s.masked.contains("end();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let s = scan("let var_r = 1; let b = 2;\n");
        assert!(s.masked.contains("var_r = 1"));
        assert!(s.masked.contains("let b = 2;"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let s = scan("fn f<'a>(x: &'a str) -> char { let c = 'y'; let e = '\\n'; c }");
        assert!(s.masked.contains("<'a>"));
        assert!(s.masked.contains("&'a str"));
        assert!(!s.masked.contains("'y'"));
        assert!(s.masked.contains("let c = '"));
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let s = scan(r#"let url = "http://example.com"; let after = 1;"#);
        assert!(s.masked.contains("let after = 1;"));
        assert!(s.comments.is_empty());
    }

    #[test]
    fn string_inside_comment_is_not_a_string() {
        let s = scan("// \"unterminated\nlet live = 1;\n");
        assert!(s.masked.contains("let live = 1;"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "let s = \"first \\\n    second\";\nfn tail() {}\n";
        let s = scan(src);
        let off = s.masked.find("tail").unwrap();
        assert_eq!(s.line_col(off), (3, 4));
        assert!(!s.masked.contains("second"));
    }

    #[test]
    fn line_col_roundtrip() {
        let s = scan("ab\ncd\nef\n");
        let off = s.masked.find("ef").unwrap();
        assert_eq!(s.line_col(off), (3, 1));
        assert_eq!(s.line_col(off + 1), (3, 2));
        assert_eq!(s.line_text(2), "cd");
    }
}
