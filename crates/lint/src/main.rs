//! CI entry point: lint the workspace, print diagnostics, gate on errors,
//! ratchet regressions, schema drift, and the self-timing budget.
//!
//! ```text
//! cargo run -p taskdrop_lint --release [-- --json] [--update-ratchet] \
//!     [--update-schema] [--root <dir>] [--budget-ms <n>] [--rules]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` error findings, ratchet
//! regression or blown budget, `2` usage/I-O trouble (including a refused
//! `--update-schema`).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use taskdrop_lint::{run_workspace, FindingJson, Ratchet, Severity, RULES, SCHEMA_PATH};

/// `--json` payload: findings plus per-ratchet and schema status.
#[derive(Debug, Serialize)]
struct JsonReport {
    ok: bool,
    files_scanned: usize,
    elapsed_ms: u64,
    budget_ms: u64,
    findings: Vec<FindingJson>,
    ratchets: Vec<JsonRatchet>,
    schema: Option<JsonSchema>,
}

#[derive(Debug, Serialize)]
struct JsonRatchet {
    rule: String,
    krate: String,
    count: usize,
    baseline: Option<usize>,
    regressed: bool,
}

#[derive(Debug, Serialize)]
struct JsonSchema {
    checkpoint_version: u32,
    root_hash: String,
    types: usize,
    committed_matches: bool,
}

/// Default self-timing budget: the whole pass must finish inside the CI
/// allowance (DESIGN.md §17).
const DEFAULT_BUDGET_MS: u64 = 5000;

fn usage() -> ExitCode {
    eprintln!(
        "usage: taskdrop_lint [--json] [--update-ratchet] [--update-schema] \
         [--root <dir>] [--budget-ms <n>] [--rules]\n\
         Lints all taskdrop_* crates for determinism, concurrency-readiness\n\
         and structural hazards (DESIGN.md §14, §17). Exit 1 on error\n\
         findings, ratchet regression, or blown time budget."
    );
    ExitCode::from(2)
}

#[allow(clippy::too_many_lines)] // linear CLI flow; splitting would only scatter it
fn main() -> ExitCode {
    #[allow(clippy::disallowed_methods)]
    // lint:allow(wall-clock): CLI self-timing polices the <5 s CI budget; this never touches the sim path
    let started = Instant::now();
    let mut json = false;
    let mut update_ratchet = false;
    let mut update_schema = false;
    let mut budget_ms = DEFAULT_BUDGET_MS;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-ratchet" => update_ratchet = true,
            "--update-schema" => update_schema = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--budget-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => budget_ms = n,
                None => return usage(),
            },
            "--rules" => {
                for r in RULES {
                    println!("{:<20} {:<8} {}", r.id, r.severity.as_str(), r.summary);
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    // Default root: two levels up from this crate's manifest — the
    // workspace root — so `cargo run -p taskdrop_lint` works from anywhere.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let lint_dir = root.join("crates").join("lint");
    let ratchet_path = lint_dir.join("ratchet.json");
    let schema_path = lint_dir.join("schema.json");
    let baseline = match Ratchet::load(&ratchet_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("taskdrop_lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = match run_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("taskdrop_lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_ratchet {
        let counts: Vec<(&str, &str, usize)> =
            report.ratchets.iter().map(|r| (r.rule, r.krate.as_str(), r.count)).collect();
        if let Err(e) = Ratchet::from_counts(&counts).save(&ratchet_path) {
            eprintln!("taskdrop_lint: failed to write {}: {e}", ratchet_path.display());
            return ExitCode::from(2);
        }
        println!("ratchet updated: {}", ratchet_path.display());
    }

    if update_schema {
        let Some(current) = &report.schema_current else {
            eprintln!(
                "taskdrop_lint: --update-schema found no checkpoint root \
                 types in the tree; nothing to fingerprint"
            );
            return ExitCode::from(2);
        };
        // Refuse to launder drift: fingerprints may only be re-recorded
        // alongside a CHECKPOINT_VERSION bump (or when they are unchanged).
        if let Some(committed) = &report.schema_committed {
            if committed.checkpoint_version == current.checkpoint_version
                && committed.root_hash != current.root_hash
            {
                eprintln!(
                    "taskdrop_lint: --update-schema refused — the schema \
                     changed but CHECKPOINT_VERSION is still {}; bump the \
                     version first so old checkpoints stay parseable",
                    current.checkpoint_version
                );
                return ExitCode::from(2);
            }
        }
        if let Err(e) = current.save(&schema_path) {
            eprintln!("taskdrop_lint: failed to write {}: {e}", schema_path.display());
            return ExitCode::from(2);
        }
        println!("schema fingerprints updated: {}", schema_path.display());
        // The drift findings computed against the stale committed file no
        // longer apply (the refusal path above already screened them).
        report.findings.retain(|f| f.rule != "schema-drift");
        report.schema_committed = Some(current.clone());
    }

    let error_fail = report.findings.iter().any(|f| f.severity == Severity::Error);
    // --update-ratchet forgives ratchet drift (it just recorded the new
    // baseline) but never error-severity findings.
    let ratchet_fail =
        !update_ratchet && report.ratchets.iter().any(taskdrop_lint::RatchetStatus::regressed);
    #[allow(clippy::disallowed_methods)]
    let elapsed = started.elapsed();
    let elapsed_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
    let budget_fail = elapsed_ms > budget_ms;
    let failed = error_fail || ratchet_fail || budget_fail;

    if json {
        let payload = JsonReport {
            ok: !failed,
            files_scanned: report.files_scanned,
            elapsed_ms,
            budget_ms,
            findings: report.findings.iter().map(FindingJson::from).collect(),
            ratchets: report
                .ratchets
                .iter()
                .map(|r| JsonRatchet {
                    rule: r.rule.to_string(),
                    krate: r.krate.clone(),
                    count: r.count,
                    baseline: r.baseline,
                    regressed: r.regressed() && !update_ratchet,
                })
                .collect(),
            schema: report.schema_current.as_ref().map(|s| JsonSchema {
                checkpoint_version: s.checkpoint_version,
                root_hash: s.root_hash.clone(),
                types: s.types.len(),
                committed_matches: report
                    .schema_committed
                    .as_ref()
                    .is_some_and(|c| c.root_hash == s.root_hash),
            }),
        };
        match serde_json::to_string_pretty(&payload) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("taskdrop_lint: JSON encoding failed: {e:?}");
                return ExitCode::from(2);
            }
        }
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    let errors = report.findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warns = report.findings.len() - errors;
    for r in &report.ratchets {
        if r.regressed() && !update_ratchet {
            match r.baseline {
                Some(b) => println!(
                    "ratchet[{}/{}]: REGRESSED — {} sites vs committed baseline {}; \
                     fix the new sites or (after review) run --update-ratchet",
                    r.rule, r.krate, r.count, b
                ),
                None => println!(
                    "ratchet[{}/{}]: no committed baseline for {} sites; \
                     run --update-ratchet to record one",
                    r.rule, r.krate, r.count
                ),
            }
            for site in &r.sites {
                println!("{}", site.render());
            }
        } else if r.improvable() {
            println!(
                "ratchet[{}/{}]: improved — {} sites vs baseline {}; \
                 run --update-ratchet to lock the gain in",
                r.rule,
                r.krate,
                r.count,
                r.baseline.unwrap_or(0)
            );
        }
    }
    if let Some(s) = &report.schema_current {
        let status = match &report.schema_committed {
            Some(c) if c.root_hash == s.root_hash => "matches committed".to_string(),
            Some(_) => "DIFFERS from committed".to_string(),
            None => format!("no committed {SCHEMA_PATH}"),
        };
        println!(
            "schema: v{} — {} reachable types, root {} ({status})",
            s.checkpoint_version,
            s.types.len(),
            s.root_hash
        );
    }
    if budget_fail {
        println!("budget: BLOWN — {elapsed_ms} ms vs {budget_ms} ms allowance");
    }
    println!(
        "taskdrop_lint: {} files, {} errors, {} warnings in {elapsed_ms} ms — {}",
        report.files_scanned,
        errors,
        warns,
        if failed { "FAIL" } else { "ok" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
