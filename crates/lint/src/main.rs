//! CI entry point: lint the workspace, print diagnostics, gate on errors
//! and ratchet regressions.
//!
//! ```text
//! cargo run -p taskdrop_lint --release [-- --json] [--update-ratchet] [--root <dir>] [--rules]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` error findings or ratchet
//! regression, `2` usage/I-O trouble.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use taskdrop_lint::{run_workspace, FindingJson, Ratchet, Severity, RULES};

/// `--json` payload: findings plus per-ratchet status.
#[derive(Debug, Serialize)]
struct JsonReport {
    ok: bool,
    files_scanned: usize,
    findings: Vec<FindingJson>,
    ratchets: Vec<JsonRatchet>,
}

#[derive(Debug, Serialize)]
struct JsonRatchet {
    rule: String,
    count: usize,
    baseline: Option<usize>,
    regressed: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: taskdrop_lint [--json] [--update-ratchet] [--root <dir>] [--rules]\n\
         Lints all taskdrop_* crates for determinism & concurrency-readiness\n\
         hazards (DESIGN.md §14). Exit 1 on error findings or ratchet regression."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    #[allow(clippy::disallowed_methods)]
    // lint:allow(wall-clock): CLI self-timing polices the <5 s CI budget; this never touches the sim path
    let started = Instant::now();
    let mut json = false;
    let mut update_ratchet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-ratchet" => update_ratchet = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--rules" => {
                for r in RULES {
                    println!("{:<20} {:<8} {}", r.id, r.severity.as_str(), r.summary);
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    // Default root: two levels up from this crate's manifest — the
    // workspace root — so `cargo run -p taskdrop_lint` works from anywhere.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let ratchet_path = root.join("crates").join("lint").join("ratchet.json");
    let baseline = match Ratchet::load(&ratchet_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("taskdrop_lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match run_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("taskdrop_lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_ratchet {
        let counts: Vec<(&str, usize)> =
            report.ratchets.iter().map(|r| (r.rule, r.count)).collect();
        if let Err(e) = Ratchet::from_counts(&counts).save(&ratchet_path) {
            eprintln!("taskdrop_lint: failed to write {}: {e}", ratchet_path.display());
            return ExitCode::from(2);
        }
        println!("ratchet updated: {}", ratchet_path.display());
    }

    // --update-ratchet forgives ratchet drift (it just recorded the new
    // baseline) but never error-severity findings.
    let error_fail = report.findings.iter().any(|f| f.severity == Severity::Error);
    let ratchet_fail =
        !update_ratchet && report.ratchets.iter().any(taskdrop_lint::RatchetStatus::regressed);
    let failed = error_fail || ratchet_fail;

    if json {
        let payload = JsonReport {
            ok: !failed,
            files_scanned: report.files_scanned,
            findings: report.findings.iter().map(FindingJson::from).collect(),
            ratchets: report
                .ratchets
                .iter()
                .map(|r| JsonRatchet {
                    rule: r.rule.to_string(),
                    count: r.count,
                    baseline: r.baseline,
                    regressed: r.regressed() && !update_ratchet,
                })
                .collect(),
        };
        match serde_json::to_string_pretty(&payload) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("taskdrop_lint: JSON encoding failed: {e:?}");
                return ExitCode::from(2);
            }
        }
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    let errors = report.findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warns = report.findings.len() - errors;
    for r in &report.ratchets {
        if r.regressed() && !update_ratchet {
            match r.baseline {
                Some(b) => println!(
                    "ratchet[{}]: REGRESSED — {} sites vs committed baseline {}; \
                     fix the new sites or (after review) run --update-ratchet",
                    r.rule, r.count, b
                ),
                None => println!(
                    "ratchet[{}]: no committed baseline for {} sites; \
                     run --update-ratchet to record one",
                    r.rule, r.count
                ),
            }
            for site in &r.sites {
                println!("{}", site.render());
            }
        } else if r.improvable() {
            println!(
                "ratchet[{}]: improved — {} sites vs baseline {}; \
                 run --update-ratchet to lock the gain in",
                r.rule,
                r.count,
                r.baseline.unwrap_or(0)
            );
        } else {
            println!(
                "ratchet[{}]: {} sites (baseline {}) ok",
                r.rule,
                r.count,
                r.baseline.unwrap_or(0)
            );
        }
    }
    println!(
        "taskdrop_lint: {} files, {} errors, {} warnings in {:.2?} — {}",
        report.files_scanned,
        errors,
        warns,
        started.elapsed(),
        if failed { "FAIL" } else { "ok" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
