//! Crate-layering enforcement: the declared dependency DAG, checked
//! against both `Cargo.toml` edges and `use taskdrop_*` source edges.
//!
//! The workspace is layered so determinism hazards can't creep downward:
//! leaf math (`pmf`, `stats`) knows nothing of models, models know nothing
//! of schedulers, the engine (`sim`) knows nothing of serving, and only
//! the umbrella + `bench` see everything. The spec lives in
//! `crates/lint/layering.json` as explicit `{crate, layer}` entries; a
//! dependency edge `A → B` is legal only when `layer(A) > layer(B)`
//! *strictly* (same-layer crates are siblings and must not depend on each
//! other). Dev-dependencies are exempt — test scaffolding may reach
//! upward (e.g. `model` test-depends on `core`).
//!
//! Two enforcement surfaces, because they fail at different times:
//! manifest edges catch a `Cargo.toml` line before anything is imported,
//! and source edges (`source_hits`) catch a `use taskdrop_serve::…`
//! smuggled into an engine crate even if someone also edits the manifest.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::diag::{Finding, Severity};
use crate::rules::RawHit;

/// One `{crate, layer}` assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerEntry {
    /// Short crate name (`pmf`, `sim`, `taskdrop` for the umbrella).
    pub krate: String,
    /// Layer number; dependencies must point strictly downward.
    pub layer: u32,
}

/// The committed layering spec (`crates/lint/layering.json`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LayeringSpec {
    /// All assignments, sorted by layer then crate for a stable file.
    pub layers: Vec<LayerEntry>,
}

impl LayeringSpec {
    /// Layer of `krate`, if declared.
    #[must_use]
    pub fn get(&self, krate: &str) -> Option<u32> {
        self.layers.iter().find(|e| e.krate == krate).map(|e| e.layer)
    }

    /// Load from `path`; `Ok(None)` when the file doesn't exist (layering
    /// enforcement is then skipped — synthetic test trees don't carry a
    /// spec).
    ///
    /// # Errors
    /// I/O failures other than not-found, and malformed JSON.
    pub fn load(path: &Path) -> std::io::Result<Option<Self>> {
        match std::fs::read_to_string(path) {
            Ok(text) => serde_json::from_str(&text).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed layering spec {}: {e:?}", path.display()),
                )
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// One `taskdrop_* = …` dependency line in a member manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEdge {
    /// Short name of the depending crate.
    pub from: String,
    /// Short name of the dependency.
    pub to: String,
    /// `true` for `[dev-dependencies]` (exempt from layering).
    pub dev: bool,
    /// Workspace-relative manifest path.
    pub manifest: String,
    /// 1-based line of the dependency entry.
    pub line: usize,
    /// The entry line, trimmed.
    pub excerpt: String,
}

fn short_name(full: &str) -> String {
    full.strip_prefix("taskdrop_").unwrap_or(full).to_string()
}

/// Parse the `taskdrop_*` dependency edges out of one manifest text.
fn edges_of(from: &str, manifest: &str, text: &str) -> Vec<ManifestEdge> {
    let mut edges = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        // Only plain dependency tables count; `[workspace.dependencies]`
        // is the version catalogue, not an edge.
        let dev = match section.as_str() {
            "[dependencies]" | "[build-dependencies]" => false,
            "[dev-dependencies]" => true,
            _ => continue,
        };
        if !line.starts_with("taskdrop_") {
            continue;
        }
        let dep: String = line
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
            .map(char::from)
            .collect();
        edges.push(ManifestEdge {
            from: from.to_string(),
            to: short_name(&dep),
            dev,
            manifest: manifest.to_string(),
            line: idx + 1,
            excerpt: line.to_string(),
        });
    }
    edges
}

/// All `taskdrop_*` edges declared by the workspace manifests: the root
/// `Cargo.toml` (the umbrella crate, `from = "taskdrop"`) plus every
/// `crates/*/Cargo.toml`.
///
/// # Errors
/// Propagates I/O failures reading manifests.
pub fn manifest_edges(root: &Path) -> std::io::Result<Vec<ManifestEdge>> {
    let mut edges = Vec::new();
    let root_toml = root.join("Cargo.toml");
    if root_toml.is_file() {
        let text = std::fs::read_to_string(&root_toml)?;
        edges.extend(edges_of("taskdrop", "Cargo.toml", &text));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates_dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        members.sort();
        for member in members {
            let toml = member.join("Cargo.toml");
            if !toml.is_file() {
                continue;
            }
            let name = member.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            let text = std::fs::read_to_string(&toml)?;
            edges.extend(edges_of(&name, &format!("crates/{name}/Cargo.toml"), &text));
        }
    }
    Ok(edges)
}

/// Short names of all `crates/*` members (directories holding a
/// `Cargo.toml`).
///
/// # Errors
/// Propagates I/O failures listing `crates/`.
pub fn member_crates(root: &Path) -> std::io::Result<Vec<String>> {
    let crates_dir = root.join("crates");
    let mut names = Vec::new();
    if crates_dir.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates_dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        members.sort();
        for member in members {
            if member.join("Cargo.toml").is_file() {
                if let Some(name) = member.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_string());
                }
            }
        }
    }
    Ok(names)
}

const SPEC_PATH: &str = "crates/lint/layering.json";

fn spec_finding(message: String) -> Finding {
    Finding {
        rule: "crate-layering",
        severity: Severity::Error,
        path: SPEC_PATH.to_string(),
        line: 1,
        col: 1,
        message,
        excerpt: String::new(),
        item: None,
    }
}

/// Check manifest edges and spec coverage against the declared layering.
#[must_use]
pub fn check_manifests(
    spec: &LayeringSpec,
    edges: &[ManifestEdge],
    members: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Coverage: every member (plus the umbrella) must be assigned a layer,
    // and every assignment must name a real crate — a stale entry would
    // silently stop constraining anything.
    for member in members.iter().map(String::as_str).chain(std::iter::once("taskdrop")) {
        if spec.get(member).is_none() {
            findings.push(spec_finding(format!(
                "crate `{member}` has no layer assignment in {SPEC_PATH}; \
                 every workspace member must be placed in the layering DAG"
            )));
        }
    }
    for entry in &spec.layers {
        if entry.krate != "taskdrop" && !members.contains(&entry.krate) {
            findings.push(spec_finding(format!(
                "stale layering entry: `{}` is not a workspace member",
                entry.krate
            )));
        }
    }

    for edge in edges.iter().filter(|e| !e.dev) {
        let (Some(from), Some(to)) = (spec.get(&edge.from), spec.get(&edge.to)) else {
            continue; // missing assignments already reported above
        };
        if from <= to {
            findings.push(Finding {
                rule: "crate-layering",
                severity: Severity::Error,
                path: edge.manifest.clone(),
                line: edge.line,
                col: 1,
                message: format!(
                    "layering violation: `{}` (layer {from}) depends on \
                     `{}` (layer {to}); dependencies must point strictly \
                     downward in the DAG — see DESIGN.md §17",
                    edge.from, edge.to
                ),
                excerpt: edge.excerpt.clone(),
                item: None,
            });
        }
    }

    findings
}

/// Source-level edges: every `taskdrop_<crate>` identifier in `masked`
/// that points at a same-or-higher layer from `self_krate` becomes a raw
/// hit (flowing through the engine's normal scope/test/pragma pipeline).
#[must_use]
pub(crate) fn source_hits(masked: &str, self_krate: &str, spec: &LayeringSpec) -> Vec<RawHit> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    for (offset, _) in masked.match_indices("taskdrop_") {
        if offset > 0 && (bytes[offset - 1].is_ascii_alphanumeric() || bytes[offset - 1] == b'_') {
            continue; // mid-identifier
        }
        let ident: String = masked[offset..]
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
            .map(char::from)
            .collect();
        let target = short_name(&ident);
        if target == self_krate || target.is_empty() {
            continue;
        }
        let Some(from) = spec.get(self_krate) else {
            continue; // unassigned crates are reported at the manifest level
        };
        let Some(to) = spec.get(&target) else {
            hits.push(RawHit {
                rule: "crate-layering",
                offset,
                message: format!(
                    "`{ident}` is not in the layering DAG; assign it a layer \
                     in {SPEC_PATH} before depending on it"
                ),
            });
            continue;
        };
        if from <= to {
            hits.push(RawHit {
                rule: "crate-layering",
                offset,
                message: format!(
                    "layering violation: `{self_krate}` (layer {from}) \
                     references `{ident}` (layer {to}); dependencies must \
                     point strictly downward in the DAG — see DESIGN.md §17"
                ),
            });
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LayeringSpec {
        LayeringSpec {
            layers: [("pmf", 0), ("core", 2), ("sim", 4), ("serve", 6), ("taskdrop", 9)]
                .iter()
                .map(|&(k, l)| LayerEntry { krate: k.to_string(), layer: l })
                .collect(),
        }
    }

    #[test]
    fn manifest_edge_parsing_sections() {
        let toml = "[package]\nname = \"taskdrop_sim\"\n\n\
                    [dependencies]\ntaskdrop_core = { path = \"../core\" }\n\
                    serde = { path = \"../../vendor/serde\" }\n\n\
                    [dev-dependencies]\ntaskdrop_serve = { path = \"../serve\" }\n";
        let edges = edges_of("sim", "crates/sim/Cargo.toml", toml);
        assert_eq!(edges.len(), 2);
        assert_eq!((edges[0].to.as_str(), edges[0].dev), ("core", false));
        assert_eq!((edges[1].to.as_str(), edges[1].dev), ("serve", true));
        assert_eq!(edges[0].line, 5);
    }

    #[test]
    fn workspace_dependency_catalogue_is_not_an_edge() {
        let toml = "[workspace.dependencies]\ntaskdrop_core = { path = \"crates/core\" }\n\
                    [dependencies]\ntaskdrop_pmf = { path = \"crates/pmf\" }\n";
        let edges = edges_of("taskdrop", "Cargo.toml", toml);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].to, "pmf");
    }

    #[test]
    fn upward_manifest_edge_fails_downward_passes() {
        let up = ManifestEdge {
            from: "sim".into(),
            to: "serve".into(),
            dev: false,
            manifest: "crates/sim/Cargo.toml".into(),
            line: 7,
            excerpt: "taskdrop_serve = ..".into(),
        };
        let down = ManifestEdge { from: "serve".into(), to: "sim".into(), line: 3, ..up.clone() };
        let members: Vec<String> =
            ["pmf", "core", "sim", "serve"].iter().map(|s| (*s).to_string()).collect();
        let f = check_manifests(&spec(), &[up.clone(), down], &members);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("layering violation"));
        assert_eq!(f[0].line, 7);

        // Dev-dependencies may reach upward.
        let dev = ManifestEdge { dev: true, ..up };
        assert!(check_manifests(&spec(), &[dev], &members).is_empty());
    }

    #[test]
    fn unassigned_member_is_reported() {
        let members: Vec<String> = vec!["pmf".to_string(), "newcrate".to_string()];
        let f = check_manifests(&spec(), &[], &members);
        let missing: Vec<&Finding> =
            f.iter().filter(|x| x.message.contains("no layer assignment")).collect();
        assert_eq!(missing.len(), 1, "{f:?}");
        assert!(missing[0].message.contains("newcrate"));
    }

    #[test]
    fn stale_spec_entry_is_reported() {
        let members: Vec<String> = vec!["pmf".to_string(), "core".to_string()];
        let f = check_manifests(&spec(), &[], &members);
        // sim/serve are stale (not members in this synthetic workspace).
        assert!(f.iter().any(|x| x.message.contains("stale layering entry")), "{f:?}");
    }

    #[test]
    fn source_edges_respect_direction() {
        let s = spec();
        // Downward: serve (6) → core (2) is fine.
        assert!(source_hits("use taskdrop_core::Tick;", "serve", &s).is_empty());
        // Upward: core (2) → serve (6) fires.
        let hits = source_hits("use taskdrop_serve::Shard;", "core", &s);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("layering violation"));
        // Self-references never fire.
        assert!(source_hits("use taskdrop_core::Tick;", "core", &s).is_empty());
        // Unknown target crate fires a coverage hit.
        let hits = source_hits("use taskdrop_mystery::X;", "core", &s);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("not in the layering DAG"));
    }
}
