//! `taskdrop_lint` — the workspace's determinism & concurrency-readiness
//! static-analysis pass.
//!
//! Every claim this reproduction makes — the paper's robustness numbers,
//! the fused-evaluator perf wins, checkpoint kill/restore — rests on
//! bit-identical determinism, and the upcoming threaded `ServiceDriver`
//! raises the stakes: one stray `HashMap` iteration or entropy-seeded RNG
//! silently breaks the "byte-identical at any thread count" invariant that
//! the differential suites can only catch after the fact. This crate is
//! the layer that *prevents* those hazards from entering the tree.
//!
//! It is deliberately humble machinery, layered: a hand-rolled comment/
//! string/raw-string-aware scanner ([`lexer`]) masks every non-code byte;
//! a token-tree pass ([`ttree`]) recovers the balanced `{}/()/[]`
//! delimiter structure of the masked text; an item segmenter ([`items`])
//! turns that into `use`/`fn`/`struct`/`impl`/`mod` items with attribute,
//! `#[cfg(test)]`, `#[derive(...)]` and `macro_rules!`-body awareness.
//! On top, the rule engine ([`engine`]) runs the catalogued pattern rules
//! ([`rules`]) with per-crate scoping, plus two structural passes: the
//! crate-layering DAG ([`layering`]) and checkpoint-schema fingerprinting
//! ([`schema`]). A `// lint:allow(<rule>): <reason>` pragma grants
//! scoped, *explained* exemptions (a bare allow is itself a violation),
//! and count-gated rules compare per crate against a committed
//! [`ratchet`] baseline that may only go down.
//!
//! `cargo run -p taskdrop_lint` is the CI entry point; see DESIGN.md §14
//! and §17 for the rule catalogue and the policy behind it.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod items;
pub mod layering;
pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod schema;
pub mod ttree;

pub use diag::{Finding, FindingJson, Severity};
pub use engine::{
    check_source, check_source_in, classify, run_workspace, FileClass, FileReport, Report, Section,
};
pub use items::{segment, Item, ItemIndex, ItemKind};
pub use layering::{LayerEntry, LayeringSpec, ManifestEdge};
pub use lexer::{scan, LineComment, Scanned};
pub use ratchet::{Ratchet, RatchetEntry, RatchetStatus};
pub use rules::{rule, Rule, Scope, RULES};
pub use schema::{SchemaSnapshot, TypeFingerprint, SCHEMA_PATH, SCHEMA_ROOTS};
pub use ttree::{Delim, Pair, TokenTree};
