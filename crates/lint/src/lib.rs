//! `taskdrop_lint` — the workspace's determinism & concurrency-readiness
//! static-analysis pass.
//!
//! Every claim this reproduction makes — the paper's robustness numbers,
//! the fused-evaluator perf wins, checkpoint kill/restore — rests on
//! bit-identical determinism, and the upcoming threaded `ServiceDriver`
//! raises the stakes: one stray `HashMap` iteration or entropy-seeded RNG
//! silently breaks the "byte-identical at any thread count" invariant that
//! the differential suites can only catch after the fact. This crate is
//! the layer that *prevents* those hazards from entering the tree.
//!
//! It is deliberately humble machinery: a hand-rolled comment/string/
//! raw-string-aware scanner ([`lexer`]) masks every non-code byte, a rule
//! engine ([`engine`]) runs ~8 catalogued pattern rules ([`rules`]) over
//! the masked text with per-crate scoping and `#[cfg(test)]` awareness,
//! a `// lint:allow(<rule>): <reason>` pragma grants scoped, *explained*
//! exemptions (a bare allow is itself a violation), and count-gated rules
//! compare against a committed [`ratchet`] baseline that may only go down.
//!
//! `cargo run -p taskdrop_lint` is the CI entry point; see DESIGN.md §14
//! for the rule catalogue and the policy behind it.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod ratchet;
pub mod rules;

pub use diag::{Finding, FindingJson, Severity};
pub use engine::{check_source, classify, run_workspace, FileClass, FileReport, Report, Section};
pub use lexer::{scan, LineComment, Scanned};
pub use ratchet::{Ratchet, RatchetEntry, RatchetStatus};
pub use rules::{rule, Rule, Scope, RULES};
