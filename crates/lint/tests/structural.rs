//! Integration tests for the two structural passes: the crate-layering
//! DAG (checked against the real workspace's manifests) and the
//! checkpoint-schema fingerprint gate (driven end-to-end through
//! `run_workspace` on synthetic trees).

use std::path::{Path, PathBuf};

use taskdrop_lint::layering::{check_manifests, manifest_edges, member_crates};
use taskdrop_lint::{run_workspace, LayeringSpec, Ratchet, Severity, TokenTree};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

// --- crate layering against the real workspace ----------------------------

#[test]
fn layering_matrix_matches_cargo_metadata() {
    // The committed layering.json must agree with what the Cargo.tomls
    // actually declare: every member assigned, no stale entries, every
    // non-dev edge pointing strictly downward.
    let root = repo_root();
    let spec = LayeringSpec::load(&root.join("crates/lint/layering.json"))
        .expect("readable layering spec")
        .expect("layering.json is committed");
    let edges = manifest_edges(&root).expect("manifests readable");
    let members = member_crates(&root).expect("crates/ listable");
    assert!(!edges.is_empty(), "no taskdrop_* manifest edges found — parser broken?");
    assert!(members.len() >= 10, "workspace members missing: {members:?}");

    let findings = check_manifests(&spec, &edges, &members);
    assert!(
        findings.is_empty(),
        "layering spec disagrees with Cargo metadata:\n{}",
        findings.iter().map(taskdrop_lint::Finding::render).collect::<Vec<_>>().join("\n")
    );

    // Spot-check the intended shape: leaf math below the engine, engine
    // below serving, umbrella on top.
    let layer = |k: &str| spec.get(k).unwrap_or_else(|| panic!("`{k}` missing from spec"));
    assert!(layer("pmf") < layer("model"));
    assert!(layer("model") < layer("sim"));
    assert!(layer("sim") < layer("serve"));
    assert!(layer("serve") < layer("taskdrop"));
    assert!(layer("dag") < layer("taskdrop"));
}

#[test]
fn the_whole_tree_is_delimiter_balanced() {
    // The token-tree layer must parse every real source file without
    // recovery — if this fails, either a file is genuinely malformed or
    // the lexer/ttree stack has a masking hole.
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for path in entries.filter_map(Result::ok).map(|e| e.path()) {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && name != "fixtures" && name != "vendor" {
                    walk(&path, out);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    walk(&repo_root().join("crates"), &mut files);
    walk(&repo_root().join("src"), &mut files);
    assert!(files.len() > 30, "walk looks broken: {} files", files.len());
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let tree = TokenTree::build(&taskdrop_lint::scan(&src).masked);
        assert!(tree.balanced, "unbalanced delimiters (or masking hole) in {}", path.display());
    }
}

// --- synthetic trees ------------------------------------------------------

fn synth_tree(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("taskdrop-structural-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, content).unwrap();
    }
    root
}

fn error_renders(report: &taskdrop_lint::Report) -> Vec<String> {
    report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(taskdrop_lint::Finding::render)
        .collect()
}

#[test]
fn upward_edges_fail_in_manifests_and_source() {
    let spec = r#"{"layers": [
        {"krate": "core", "layer": 0},
        {"krate": "serve", "layer": 1},
        {"krate": "taskdrop", "layer": 2}
    ]}"#;
    let core_toml = "[package]\nname = \"taskdrop_core\"\n\n\
                     [dependencies]\ntaskdrop_serve = { path = \"../serve\" }\n";
    let root = synth_tree(
        "layering",
        &[
            ("crates/lint/layering.json", spec),
            ("crates/core/Cargo.toml", core_toml),
            ("crates/core/src/lib.rs", "use taskdrop_serve::Shard;\npub fn f() {}\n"),
            ("crates/serve/Cargo.toml", "[package]\nname = \"taskdrop_serve\"\n"),
            ("crates/serve/src/lib.rs", "pub struct Shard;\n"),
        ],
    );
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(report.failed());
    let layering: Vec<_> = report.findings.iter().filter(|f| f.rule == "crate-layering").collect();
    // One manifest edge + one source edge, both upward.
    assert!(
        layering.iter().any(|f| f.path == "crates/core/Cargo.toml"),
        "manifest edge not flagged: {layering:?}"
    );
    assert!(
        layering.iter().any(|f| f.path == "crates/core/src/lib.rs"),
        "source edge not flagged: {layering:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

const CHECKPOINT_SRC: &str = "\
pub const CHECKPOINT_VERSION: u32 = 1;\n\
#[derive(Serialize, Deserialize)]\n\
pub struct Checkpoint {\n\
    pub version: u32,\n\
    pub tick: u64,\n\
}\n";

#[test]
fn schema_gate_blocks_drift_without_a_version_bump() {
    let root = synth_tree("schema", &[("crates/sim/src/checkpoint.rs", CHECKPOINT_SRC)]);
    let schema_path = root.join("crates/lint/schema.json");
    std::fs::create_dir_all(schema_path.parent().unwrap()).unwrap();

    // 1. No committed fingerprints yet: the gate demands --update-schema.
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(report.failed());
    assert!(
        report.findings.iter().any(|f| f.rule == "schema-drift" && f.message.contains("missing")),
        "{:?}",
        report.findings
    );

    // 2. Commit the fingerprints (what --update-schema does): clean run.
    report.schema_current.as_ref().expect("roots found").save(&schema_path).unwrap();
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(!report.failed(), "{:?}", error_renders(&report));

    // 3. Mutate a checkpoint field without bumping the version: the gate
    //    fails, naming the drifted type.
    std::fs::write(
        root.join("crates/sim/src/checkpoint.rs"),
        CHECKPOINT_SRC.replace("pub tick: u64", "pub tick: u32"),
    )
    .unwrap();
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(report.failed());
    assert!(
        report.findings.iter().any(|f| {
            f.rule == "schema-drift"
                && f.path == "crates/sim/src/checkpoint.rs"
                && f.message.contains("Checkpoint")
        }),
        "{:?}",
        report.findings
    );

    // 4. Bump CHECKPOINT_VERSION alongside the change: one finding, which
    //    asks for --update-schema rather than flagging per-type drift.
    std::fs::write(
        root.join("crates/sim/src/checkpoint.rs"),
        CHECKPOINT_SRC
            .replace("pub tick: u64", "pub tick: u32")
            .replace("CHECKPOINT_VERSION: u32 = 1", "CHECKPOINT_VERSION: u32 = 2"),
    )
    .unwrap();
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    let schema: Vec<_> = report.findings.iter().filter(|f| f.rule == "schema-drift").collect();
    assert_eq!(schema.len(), 1, "{schema:?}");
    assert!(schema[0].message.contains("--update-schema"));

    // 5. Refresh the committed file at the new version: clean again.
    report.schema_current.as_ref().unwrap().save(&schema_path).unwrap();
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(!report.failed(), "{:?}", error_renders(&report));

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn conflicting_version_consts_are_an_error() {
    let root = synth_tree(
        "schema-conflict",
        &[
            ("crates/sim/src/checkpoint.rs", CHECKPOINT_SRC),
            ("crates/serve/src/lib.rs", "pub const CHECKPOINT_VERSION: u32 = 7;\n"),
        ],
    );
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "schema-drift" && f.message.contains("conflicting")),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn trees_without_checkpoint_roots_skip_the_schema_pass() {
    let root = synth_tree(
        "schema-none",
        &[("crates/pmf/src/lib.rs", "pub fn mass(x: u64) -> u64 { x + 1 }\n")],
    );
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(report.schema_current.is_none());
    assert!(!report.failed(), "{:?}", error_renders(&report));
    std::fs::remove_dir_all(&root).ok();
}
