// Fixture: D5 must fire on environment reads/writes in sim-path crates.
fn tune() -> usize {
    std::env::set_var("TASKDROP_DEPTH", "4");
    std::env::var("TASKDROP_DEPTH").map_or(6, |v| v.parse().unwrap_or(6))
}
