// Fixture: D2 must fire on wall-clock reads outside crates/bench.
use std::time::{Instant, SystemTime};

fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
