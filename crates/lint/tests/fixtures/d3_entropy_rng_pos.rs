// Fixture: D3 must fire on every entropy-seeded RNG entry point.
fn draws() {
    let mut r = rand::thread_rng();
    let s = SmallRng::from_entropy();
    let x: f64 = rand::random();
    let _ = (r, s, x);
}
