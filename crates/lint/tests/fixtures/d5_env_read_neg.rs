// Fixture: CLI argument parsing and typed config are the sanctioned path.
fn parse() -> Vec<String> {
    std::env::args().skip(1).collect()
}
