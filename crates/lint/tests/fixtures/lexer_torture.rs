// Fixture: every banned pattern below is inside a masked region — except
// the single real finding on the last line.
/* block comment: Instant::now() thread_rng() HashMap
   /* nested: SystemTime::now() env::var */
   still comment: rand::random */
fn strings<'a>(tag: &'a str) -> String {
    let plain = "use std::collections::HashMap; thread_rng();";
    let escaped = "quote \" then Instant::now()";
    let raw = r#"env::var("X") and "from_entropy""#;
    let deep = r##"hash-quote "# inside: std::sync::Mutex"##;
    let byte = b"rand::random";
    let rawbyte = br#"SystemTime::now()"#;
    let ch = '"';
    let nl = '\n';
    format!("{tag}{plain}{escaped}{raw}{deep}{ch}{nl}{:?}{:?}", byte, rawbyte)
}

fn the_real_finding() {
    let _ = std::time::Instant::now();
}
