// Fixture: the generalized panic ratchet counts panic-family macros,
// slice indexing and unwrap/expect in production code, per rule.
fn fates(states: &[u8], i: usize) -> u8 {
    match states[i] {
        0 => panic!("no fate recorded"),
        1 => todo!(),
        2 => states[i.wrapping_sub(1)],
        _ => unreachable!("fates are 0..=2"),
    }
}

fn head(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

fn safe(v: &[u8]) -> Option<u8> {
    // .get() is the sanctioned form; patterns and types don't count.
    let [_a, _b] = [0u8; 2];
    v.get(3).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_free() {
        let v = [1u8, 2];
        assert_eq!(v[0], 1);
        let _ = super::safe(&v).unwrap();
    }
}
