// Fixture: an allow naming an unknown rule is a violation.
fn a() {
    // lint:allow(made-up-rule): this rule does not exist
    let _x = 1;
}
