// Fixture: a reasoned allow suppresses exactly its target line.
fn pool_size() -> usize {
    // lint:allow(thread-primitives): sizes a worker pool; results are thread-count-invariant
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn stamp() {
    let _t = std::time::Instant::now(); // lint:allow(wall-clock): trailing-form demo of the pragma
}
