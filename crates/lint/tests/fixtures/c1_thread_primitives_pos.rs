// Fixture: C1 must fire on ad-hoc std threading in the simulation core.
use std::sync::{Arc, Mutex};

fn race() {
    let slot = Arc::new(Mutex::new(0u64));
    let h = std::thread::spawn(move || *slot.lock().unwrap());
    let _ = h.join();
    let _rw: std::sync::RwLock<u8> = std::sync::RwLock::new(0);
}
