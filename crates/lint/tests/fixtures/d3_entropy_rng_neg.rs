// Fixture: seed-keyed draws are the sanctioned path.
fn draws(exec_seed: u64) -> u64 {
    let mut r = new_rng(derive_seed(exec_seed, 7));
    r.next_u64()
}
