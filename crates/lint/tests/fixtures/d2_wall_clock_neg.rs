// Fixture: virtual time, masked mentions and test-scoped reads are fine.
fn tick(now: u64) -> u64 {
    // Instant::now() would be a hazard here, says this comment.
    let _pattern = "Instant::now";
    now + 1
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_tests_may_use_the_wall_clock() {
        let _t = Instant::now();
    }
}
