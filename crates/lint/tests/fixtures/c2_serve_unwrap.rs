// Fixture: C2 counts production .unwrap()/.expect() method calls only.
fn three(a: Option<u8>, b: Option<u8>, c: Option<u8>) -> u8 {
    let x = a.unwrap();
    let y = b.expect("b is set");
    let z = c
        .unwrap();
    x + y + z
}

fn not_counted(d: Option<u8>) -> u8 {
    d.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwraps_are_free() {
        assert_eq!(super::three(Some(1), Some(2), Some(3)).unwrap_or(6), 6);
        let v: Option<u8> = Some(4);
        let _ = v.unwrap();
    }
}
