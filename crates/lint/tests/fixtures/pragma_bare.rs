// Fixture: allows without a reason are themselves violations.
fn a() {
    // lint:allow(wall-clock)
    let _x = 1;
}

fn b() {
    // lint:allow(wall-clock):
    let _x = 1;
}
