// Fixture: ordered/keyed alternatives and masked mentions must not fire.
use std::collections::{BTreeMap, BTreeSet};

/// Docs may say HashMap freely; comments too: HashMap HashSet.
fn build() -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    let _names = ["HashMap", "HashSet"];
    let _s: BTreeSet<u64> = [1].into_iter().collect();
    let _custom = FxHashMap::default();
    m
}
