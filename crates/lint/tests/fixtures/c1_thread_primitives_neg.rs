// Fixture: the vendored crossbeam/parking_lot layer is the sanctioned path.
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn fan_out() {
    let slot = Arc::new(Mutex::new(0u64));
    let n = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        s.spawn(|_| n.fetch_add(*slot.lock(), Ordering::SeqCst));
    })
    .unwrap();
}
