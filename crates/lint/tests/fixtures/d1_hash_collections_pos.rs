// Fixture: D1 must fire on std unordered collections in sim-path code.
use std::collections::HashMap;

fn build() -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}

fn dedupe(xs: &[u64]) -> usize {
    let s: std::collections::HashSet<u64> = xs.iter().copied().collect();
    s.len()
}
