// Fixture: D4 must fire on NaN-lossy comparators.
fn sort_keys(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

fn sort_expect(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs
}
