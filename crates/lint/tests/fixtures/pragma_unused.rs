// Fixture: a reasoned allow with nothing to suppress is flagged (warn).
fn clean() {
    // lint:allow(wall-clock): nothing on the next line actually reads the clock
    let _x = 1;
}
