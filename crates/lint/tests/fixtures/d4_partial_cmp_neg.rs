// Fixture: total_cmp and non-unwrapped partial_cmp are fine.
use std::cmp::Ordering;

fn sort_keys(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(f64::total_cmp);
    xs
}

fn tolerant(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}
