//! Fixture-driven tests for the lint engine: every rule proves it detects
//! its hazard, pragmas and the ratchet behave, scoping works, and — the
//! gate the whole crate exists for — a seeded violation fails a workspace
//! run while the repo itself stays clean.

use std::path::{Path, PathBuf};

use taskdrop_lint::{check_source, run_workspace, Ratchet, RatchetStatus, Severity, RULES};

/// Lint a fixture as if it lived at `rel_path` in the workspace.
fn lint_at(rel_path: &str, fixture: &str) -> taskdrop_lint::FileReport {
    check_source(rel_path, fixture)
}

fn rules_fired(report: &taskdrop_lint::FileReport) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// --- one firing positive + one silent negative per rule -------------------

#[test]
fn d1_hash_collections_fires_and_clears() {
    let pos = lint_at("crates/sim/src/x.rs", include_str!("fixtures/d1_hash_collections_pos.rs"));
    assert_eq!(rules_fired(&pos), ["hash-collections"]);
    assert!(pos.findings.len() >= 3, "use + 2 sites: {:?}", pos.findings);
    assert!(pos.findings.iter().all(|f| f.severity == Severity::Error));

    let neg = lint_at("crates/sim/src/x.rs", include_str!("fixtures/d1_hash_collections_neg.rs"));
    assert!(neg.findings.is_empty(), "{:?}", neg.findings);
}

#[test]
fn d2_wall_clock_fires_and_clears() {
    let pos = lint_at("crates/model/src/x.rs", include_str!("fixtures/d2_wall_clock_pos.rs"));
    assert_eq!(rules_fired(&pos), ["wall-clock"]);
    assert_eq!(pos.findings.len(), 2, "{:?}", pos.findings);

    let neg = lint_at("crates/model/src/x.rs", include_str!("fixtures/d2_wall_clock_neg.rs"));
    assert!(neg.findings.is_empty(), "{:?}", neg.findings);
}

#[test]
fn d3_entropy_rng_fires_and_clears() {
    let pos = lint_at("crates/stats/src/x.rs", include_str!("fixtures/d3_entropy_rng_pos.rs"));
    assert_eq!(rules_fired(&pos), ["entropy-rng"]);
    assert_eq!(pos.findings.len(), 3, "{:?}", pos.findings);

    let neg = lint_at("crates/stats/src/x.rs", include_str!("fixtures/d3_entropy_rng_neg.rs"));
    assert!(neg.findings.is_empty(), "{:?}", neg.findings);
}

#[test]
fn d4_partial_cmp_fires_and_clears() {
    let pos = lint_at("crates/pmf/src/x.rs", include_str!("fixtures/d4_partial_cmp_pos.rs"));
    assert_eq!(rules_fired(&pos), ["partial-cmp-unwrap"]);
    assert_eq!(pos.findings.len(), 2, "{:?}", pos.findings);

    let neg = lint_at("crates/pmf/src/x.rs", include_str!("fixtures/d4_partial_cmp_neg.rs"));
    assert!(neg.findings.is_empty(), "{:?}", neg.findings);
}

#[test]
fn d5_env_read_fires_and_clears() {
    let pos = lint_at("crates/workload/src/x.rs", include_str!("fixtures/d5_env_read_pos.rs"));
    assert_eq!(rules_fired(&pos), ["env-read"]);
    assert_eq!(pos.findings.len(), 2, "set_var + var: {:?}", pos.findings);

    let neg = lint_at("crates/workload/src/x.rs", include_str!("fixtures/d5_env_read_neg.rs"));
    assert!(neg.findings.is_empty(), "env::args is fine: {:?}", neg.findings);
}

#[test]
fn c1_thread_primitives_fires_and_clears() {
    let pos = lint_at("crates/core/src/x.rs", include_str!("fixtures/c1_thread_primitives_pos.rs"));
    assert_eq!(rules_fired(&pos), ["thread-primitives"]);
    assert!(pos.findings.len() >= 3, "import + spawn + RwLock: {:?}", pos.findings);

    let neg = lint_at("crates/core/src/x.rs", include_str!("fixtures/c1_thread_primitives_neg.rs"));
    assert!(neg.findings.is_empty(), "crossbeam/parking_lot are sanctioned: {:?}", neg.findings);
}

#[test]
fn c2_panic_unwrap_counts_production_sites_only() {
    let r = lint_at("crates/serve/src/x.rs", include_str!("fixtures/c2_serve_unwrap.rs"));
    assert!(r.findings.is_empty(), "ratchet sites are not error findings: {:?}", r.findings);
    let unwraps: Vec<_> = r.ratchet_sites.iter().filter(|f| f.rule == "panic-unwrap").collect();
    assert_eq!(unwraps.len(), 3, "{:?}", r.ratchet_sites);
    assert!(r.ratchet_sites.iter().all(|f| f.severity == Severity::Ratchet));
}

#[test]
fn c2_panic_surface_fixture_counts_all_three_rules() {
    let r = lint_at("crates/dag/src/x.rs", include_str!("fixtures/c2_panic_surface.rs"));
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    let count = |rule: &str| r.ratchet_sites.iter().filter(|f| f.rule == rule).count();
    assert_eq!(count("panic-macro"), 3, "panic! + unreachable! + todo!: {:?}", r.ratchet_sites);
    assert_eq!(count("slice-index"), 2, "{:?}", r.ratchet_sites);
    assert_eq!(count("panic-unwrap"), 1, "{:?}", r.ratchet_sites);
}

#[test]
fn bare_allow_fires_on_reasonless_and_unknown_pragmas() {
    let bare = lint_at("crates/sim/src/x.rs", include_str!("fixtures/pragma_bare.rs"));
    assert_eq!(rules_fired(&bare), ["bare-allow"]);
    assert_eq!(bare.findings.len(), 2, "{:?}", bare.findings);
    assert!(bare.findings.iter().all(|f| f.severity == Severity::Error));

    let unknown = lint_at("crates/sim/src/x.rs", include_str!("fixtures/pragma_unknown.rs"));
    assert_eq!(unknown.findings.len(), 1);
    assert_eq!(unknown.findings[0].rule, "bare-allow");
    assert!(unknown.findings[0].message.contains("unknown rule"));
}

// --- pragma semantics -----------------------------------------------------

#[test]
fn reasoned_pragmas_suppress_own_line_and_next_line_forms() {
    let r = lint_at("crates/sim/src/x.rs", include_str!("fixtures/pragma_good.rs"));
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn unused_pragma_is_reported_as_warning() {
    let r = lint_at("crates/sim/src/x.rs", include_str!("fixtures/pragma_unused.rs"));
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "bare-allow");
    assert_eq!(r.findings[0].severity, Severity::Warn);
    assert!(r.findings[0].message.contains("unused"));
}

// --- scoping --------------------------------------------------------------

#[test]
fn scope_exempts_bench_from_wall_clock_and_everyone_from_nothing() {
    let wall = include_str!("fixtures/d2_wall_clock_pos.rs");
    assert!(lint_at("crates/bench/src/x.rs", wall).findings.is_empty());
    assert!(!lint_at("crates/lint/src/x.rs", wall).findings.is_empty());

    // D3 fires even in bench and in test sections.
    let rng = include_str!("fixtures/d3_entropy_rng_pos.rs");
    assert!(!lint_at("crates/bench/src/x.rs", rng).findings.is_empty());
    assert!(!lint_at("crates/bench/benches/x.rs", rng).findings.is_empty());
}

#[test]
fn scope_confines_d1_to_sim_path_and_c1_to_the_core() {
    let hash = include_str!("fixtures/d1_hash_collections_pos.rs");
    assert!(lint_at("crates/bench/src/x.rs", hash).findings.is_empty());
    assert!(lint_at("crates/sim/tests/x.rs", hash).findings.is_empty(), "test code exempt");
    assert!(!lint_at("src/x.rs", hash).findings.is_empty(), "umbrella is sim-path");

    let threads = include_str!("fixtures/c1_thread_primitives_pos.rs");
    // serve joined the concurrency core with the fleet driver: bare thread
    // primitives are errors there too, and only reasoned pragmas (the
    // driver's worker-pool sizing) are let through.
    assert!(!lint_at("crates/serve/src/x.rs", threads).findings.is_empty(), "serve is core");
    assert!(lint_at("crates/stats/src/x.rs", threads).findings.is_empty(), "stats may thread");
    assert!(!lint_at("crates/pmf/src/x.rs", threads).findings.is_empty());
}

#[test]
fn lexer_torture_yields_exactly_the_one_real_finding() {
    let r = lint_at("crates/sim/src/x.rs", include_str!("fixtures/lexer_torture.rs"));
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "wall-clock");
    assert!(r.findings[0].excerpt.contains("std::time::Instant::now()"));
}

// --- ratchet behaviour ----------------------------------------------------

#[test]
fn ratchet_gates_on_increase_only() {
    let mk = |count, baseline| RatchetStatus {
        rule: "panic-unwrap",
        krate: "serve".to_string(),
        count,
        baseline,
        sites: vec![],
    };
    assert!(mk(4, Some(3)).regressed(), "one new unwrap fails CI");
    assert!(!mk(3, Some(3)).regressed(), "standing debt passes");
    assert!(!mk(2, Some(3)).regressed(), "paying debt passes");
    assert!(mk(2, Some(3)).improvable(), "...and is advertised as tightenable");
    assert!(!mk(0, None).regressed(), "a debt-free crate needs no baseline");
    assert!(mk(1, None).regressed(), "unrecorded debt fails until --update-ratchet");
}

#[test]
fn ratchet_file_roundtrips_and_missing_file_is_empty() {
    let dir = std::env::temp_dir().join(format!("taskdrop-lint-ratchet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ratchet.json");

    let missing = Ratchet::load(&path).unwrap();
    assert!(missing.entries.is_empty());
    assert_eq!(missing.get("panic-unwrap", "serve"), None);

    Ratchet::from_counts(&[("panic-unwrap", "serve", 3), ("slice-index", "pmf", 1)])
        .save(&path)
        .unwrap();
    let loaded = Ratchet::load(&path).unwrap();
    assert_eq!(loaded.get("panic-unwrap", "serve"), Some(3));
    assert_eq!(loaded.get("slice-index", "pmf"), Some(1));
    assert_eq!(loaded.get("panic-unwrap", "pmf"), None, "counts are per crate");

    let malformed = dir.join("bad.json");
    std::fs::write(&malformed, "{not json").unwrap();
    assert!(Ratchet::load(&malformed).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

// --- workspace runs: the CI gate itself -----------------------------------

/// Build a minimal synthetic workspace in a temp dir.
fn synth_tree(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("taskdrop-lint-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, content).unwrap();
    }
    root
}

#[test]
fn seeded_violation_fails_a_workspace_run() {
    // The fixture test standing in for "CI fails on a seeded violation":
    // a tree with one entropy-seeded RNG draw must produce a failing report.
    let root = synth_tree(
        "seeded",
        &[
            ("crates/sim/src/good.rs", "fn ok(seed: u64) -> u64 { seed.wrapping_mul(3) }\n"),
            ("crates/sim/src/bad.rs", "fn draw() -> u64 { rand::thread_rng().next_u64() }\n"),
        ],
    );
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(report.failed(), "seeded thread_rng must fail the gate");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "entropy-rng");
    assert_eq!(report.findings[0].path, "crates/sim/src/bad.rs");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn ratchet_regression_fails_a_workspace_run() {
    let two_unwraps = "fn f(a: Option<u8>, b: Option<u8>) -> u8 { a.unwrap() + b.unwrap() }\n";
    let root = synth_tree("ratchet", &[("crates/serve/src/x.rs", two_unwraps)]);

    // Baseline 2: standing debt, passes.
    let ok = run_workspace(&root, &Ratchet::from_counts(&[("panic-unwrap", "serve", 2)])).unwrap();
    assert!(!ok.failed(), "{:?}", ok.ratchets);

    // Baseline 1: one new unwrap, fails, and the sites are named.
    let bad = run_workspace(&root, &Ratchet::from_counts(&[("panic-unwrap", "serve", 1)])).unwrap();
    assert!(bad.failed());
    assert_eq!(bad.ratchets.len(), 1);
    assert_eq!(bad.ratchets[0].krate, "serve");
    assert_eq!(bad.ratchets[0].count, 2);
    assert_eq!(bad.ratchets[0].sites.len(), 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn fixtures_directory_is_exempt_from_workspace_runs() {
    let root = synth_tree(
        "fixture-skip",
        &[("crates/lint/tests/fixtures/bad.rs", "fn f() { rand::thread_rng(); }\n")],
    );
    let report = run_workspace(&root, &Ratchet::default()).unwrap();
    assert!(!report.failed(), "{:?}", report.findings);
    assert!(report.findings.is_empty());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn the_repo_itself_is_clean() {
    // The same invariant CI enforces, without leaving `cargo test`: the
    // workspace at HEAD has zero error findings and no ratchet regression.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let baseline = Ratchet::load(&root.join("crates/lint/ratchet.json")).unwrap();
    let report = run_workspace(&root, &baseline).unwrap();
    let errors: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(taskdrop_lint::Finding::render)
        .collect();
    assert!(errors.is_empty(), "lint errors in the tree:\n{}", errors.join("\n"));
    for r in &report.ratchets {
        assert!(!r.regressed(), "ratchet {} regressed: {} vs {:?}", r.rule, r.count, r.baseline);
    }
    assert!(report.files_scanned > 50, "walk looks broken: {} files", report.files_scanned);
}

#[test]
fn every_catalogued_rule_has_a_firing_fixture() {
    // Meta-test: keep the fixture set honest as rules are added. The two
    // structural rules are exercised by `tests/structural.rs` (layering +
    // schema drift against synthetic trees); the rest fire in this file.
    let fired: Vec<&str> = vec![
        "hash-collections",
        "wall-clock",
        "entropy-rng",
        "partial-cmp-unwrap",
        "env-read",
        "thread-primitives",
        "panic-unwrap",
        "panic-macro",
        "slice-index",
        "crate-layering", // tests/structural.rs
        "schema-drift",   // tests/structural.rs
        "bare-allow",
    ];
    for rule in RULES {
        assert!(fired.contains(&rule.id), "rule {} has no fixture coverage", rule.id);
    }
}
