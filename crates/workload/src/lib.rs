//! Workload generation for the `taskdrop` experiments.
//!
//! Reproduces the paper's two evaluation set-ups plus the homogeneous
//! variant, all from seeds:
//!
//! * [`Scenario::specint`] — 12 task types × 8 heterogeneous machines.
//!   The paper seeds Gamma distributions with SPECint measurements on eight
//!   physical machines; those measurements are not redistributable, so the
//!   mean-execution-time table here is synthetic but preserves the two
//!   properties the experiment depends on (see DESIGN.md): *inconsistent*
//!   heterogeneity, and per-type means spanning the stated 50–200 ms range.
//! * [`Scenario::transcode`] — 4 video-transcoding task types × 4 cloud VM
//!   types (two machines each), high execution-time variation across types,
//!   used by the paper for validation (Figure 10).
//! * [`Scenario::homogeneous`] — 8 identical machines (Figure 7b).
//!
//! A [`Scenario`] couples the **truth** model (per-cell Gamma samplers the
//! simulator draws actual execution times from) with the **learned** PET
//! matrix (500 samples per cell, histogram-discretised — the scheduler's
//! imperfect knowledge). [`Workload::generate`] then produces a task stream:
//! Poisson arrivals at a chosen [`OversubscriptionLevel`], uniformly random
//! task types, and deadlines per the paper's formula
//! `δᵢ = arrᵢ + avgᵢ + γ·avg_all`.
//!
//! For the online serving layer, the [`streaming`] module adds open-ended
//! arrival generators — diurnal sinusoidal, Markov-modulated bursty, and
//! recorded-trace replay ([`TrafficSource`]) — whose entire state is a few
//! serializable integer cursors, so a checkpointed stream resumes
//! byte-identically.
//!
//! For dependency-aware workloads, the [`graphgen`] module generates task
//! graph *blueprints* — serverless function chains, scatter/gather fans,
//! random layered DAGs — that `taskdrop_dag` validates and coordinates.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod arrival;
pub mod graphgen;
mod scenario;
mod specint;
pub mod streaming;
mod transcode;
mod workload;

pub use arrival::{OversubscriptionLevel, SPECINT_WINDOW, TRANSCODE_WINDOW};
pub use graphgen::{BlueprintNode, GraphBlueprint};
pub use scenario::{ExecTruth, Scenario, ScenarioBuilder};
pub use specint::specint_mean_table;
pub use streaming::{BurstySource, DiurnalSource, OfferedTask, TraceSource, TrafficSource};
pub use transcode::transcode_mean_table;
pub use workload::Workload;
