//! Scenario = machines + task types + truth model + learned PET matrix.

use crate::specint::{specint_mean_table, SPECINT_BENCHMARKS, SPECINT_MACHINES};
use crate::transcode::{
    transcode_mean_table, TRANSCODE_MACHINES_PER_TYPE, TRANSCODE_TASK_TYPES, TRANSCODE_VM_TYPES,
};
use rand::Rng;
use taskdrop_model::{
    Machine, MachineId, MachineType, MachineTypeId, PetMatrix, TaskType, TaskTypeId,
};
use taskdrop_pmf::{Pmf, Tick};
use taskdrop_stats::{derive_seed, new_rng, GammaSampler, Histogram, Rng64};

/// The *true* execution-time model: one Gamma distribution per
/// (task type, machine type) cell. The simulator draws actual execution
/// times from this; the scheduler only ever sees the learned [`PetMatrix`].
#[derive(Debug, Clone)]
pub struct ExecTruth {
    machine_types: usize,
    cells: Vec<GammaSampler>,
}

impl ExecTruth {
    /// The true distribution for a cell.
    #[must_use]
    pub fn sampler(&self, t: TaskTypeId, m: MachineTypeId) -> &GammaSampler {
        &self.cells[t.index() * self.machine_types + m.index()]
    }

    /// Draws an actual execution time in ticks (at least 1).
    pub fn sample(&self, t: TaskTypeId, m: MachineTypeId, rng: &mut Rng64) -> Tick {
        (self.sampler(t, m).sample(rng).round() as Tick).max(1)
    }

    /// The true mean of a cell, in ticks.
    #[must_use]
    pub fn mean(&self, t: TaskTypeId, m: MachineTypeId) -> f64 {
        self.sampler(t, m).mean()
    }
}

/// A fully-specified experimental environment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Task types, in PET row order. `mean_exec` holds *true* means.
    pub task_types: Vec<TaskType>,
    /// Machine types, in PET column order.
    pub machine_types: Vec<MachineType>,
    /// Machine instances (possibly several per type).
    pub machines: Vec<Machine>,
    /// The true execution-time model.
    pub truth: ExecTruth,
    /// The learned PET matrix (what the scheduler believes).
    pub pet: PetMatrix,
    /// Seed the scenario was built from.
    pub seed: u64,
}

impl Scenario {
    /// The paper's main scenario: 12 SPECint task types on 8 heterogeneous
    /// machines (one per machine type).
    #[must_use]
    pub fn specint(seed: u64) -> Self {
        ScenarioBuilder::new("specint")
            .task_type_names(SPECINT_BENCHMARKS.iter().map(|s| s.to_string()))
            .machine_types(SPECINT_MACHINES.iter().map(|&(n, _, p)| (n.to_string(), p)))
            .mean_table(specint_mean_table())
            .seed(seed)
            .build()
    }

    /// The validation scenario: 4 video-transcoding task types on 4 VM
    /// types, two machines each (Figure 10).
    #[must_use]
    pub fn transcode(seed: u64) -> Self {
        ScenarioBuilder::new("transcode")
            .task_type_names(TRANSCODE_TASK_TYPES.iter().map(|s| s.to_string()))
            .machine_types(TRANSCODE_VM_TYPES.iter().map(|&(n, p)| (n.to_string(), p)))
            .mean_table(transcode_mean_table())
            .machines_per_type(TRANSCODE_MACHINES_PER_TYPE)
            .seed(seed)
            .build()
    }

    /// The homogeneous control: the 12 SPECint task types on 8 *identical*
    /// machines (Figure 7b). Per-type means match the heterogeneous
    /// scenario's row means, so workloads are comparable.
    #[must_use]
    pub fn homogeneous(seed: u64) -> Self {
        let het = specint_mean_table();
        let column: Vec<Vec<f64>> =
            het.iter().map(|row| vec![row.iter().sum::<f64>() / row.len() as f64]).collect();
        ScenarioBuilder::new("homogeneous")
            .task_type_names(SPECINT_BENCHMARKS.iter().map(|s| s.to_string()))
            .machine_types([("uniform-node".to_string(), 0.45)])
            .mean_table(column)
            .machines_per_type(8)
            .seed(seed)
            .build()
    }

    /// Number of task types.
    #[must_use]
    pub fn task_type_count(&self) -> usize {
        self.task_types.len()
    }

    /// Number of machine instances.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Total machine-queue capacity at a given per-machine queue size.
    #[must_use]
    pub fn capacity(&self, queue_size: usize) -> usize {
        self.machine_count() * queue_size
    }

    /// Hourly price of a machine (via its type).
    #[must_use]
    pub fn price_per_hour(&self, machine: MachineId) -> f64 {
        let mt = self.machines[machine.index()].type_id;
        self.machine_types[mt.index()].price_per_hour
    }
}

/// Builder for custom scenarios (the built-ins above are thin wrappers).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    type_names: Vec<String>,
    machine_types: Vec<(String, f64)>,
    machines_per_type: usize,
    mean_table: Vec<Vec<f64>>,
    scale_range: (f64, f64),
    pet_samples: usize,
    pet_bins: usize,
    seed: u64,
}

impl ScenarioBuilder {
    /// Starts a builder; defaults follow the paper: Gamma scale uniform in
    /// `[1, 20]`, 500 samples per PET cell, one machine per machine type.
    #[must_use]
    pub fn new(name: &str) -> Self {
        ScenarioBuilder {
            name: name.to_string(),
            type_names: Vec::new(),
            machine_types: Vec::new(),
            machines_per_type: 1,
            mean_table: Vec::new(),
            scale_range: (1.0, 20.0),
            pet_samples: 500,
            pet_bins: 24,
            seed: 0,
        }
    }

    /// Sets task-type names (defines the PET row count).
    #[must_use]
    pub fn task_type_names<I: IntoIterator<Item = String>>(mut self, names: I) -> Self {
        self.type_names = names.into_iter().collect();
        self
    }

    /// Sets machine types as `(name, hourly price)` pairs (PET columns).
    #[must_use]
    pub fn machine_types<I: IntoIterator<Item = (String, f64)>>(mut self, types: I) -> Self {
        self.machine_types = types.into_iter().collect();
        self
    }

    /// Sets how many machine instances each machine type gets.
    #[must_use]
    pub fn machines_per_type(mut self, n: usize) -> Self {
        self.machines_per_type = n;
        self
    }

    /// Sets the true mean execution-time table (rows = task types).
    #[must_use]
    pub fn mean_table(mut self, table: Vec<Vec<f64>>) -> Self {
        self.mean_table = table;
        self
    }

    /// Overrides the Gamma scale-parameter range (paper: `[1, 20]`).
    #[must_use]
    pub fn scale_range(mut self, lo: f64, hi: f64) -> Self {
        self.scale_range = (lo, hi);
        self
    }

    /// Overrides the PET learning sample count (paper: 500).
    #[must_use]
    pub fn pet_samples(mut self, n: usize) -> Self {
        self.pet_samples = n;
        self
    }

    /// Overrides the PET histogram bin count.
    #[must_use]
    pub fn pet_bins(mut self, n: usize) -> Self {
        self.pet_bins = n;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the scenario: draws per-cell Gamma scales, learns the PET
    /// matrix from `pet_samples` histogram-discretised samples per cell.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or empty, or if
    /// `machines_per_type == 0`.
    #[must_use]
    pub fn build(self) -> Scenario {
        let t = self.type_names.len();
        let m = self.machine_types.len();
        assert!(t > 0 && m > 0, "scenario needs task types and machine types");
        assert!(self.machines_per_type > 0, "need at least one machine per type");
        assert_eq!(self.mean_table.len(), t, "mean table rows must match task types");
        for row in &self.mean_table {
            assert_eq!(row.len(), m, "mean table columns must match machine types");
        }

        // Per-cell Gamma scale parameters (paper: uniform in [1, 20]).
        let mut scale_rng = new_rng(derive_seed(self.seed, 0x5CA1E));
        let mut truth_cells = Vec::with_capacity(t * m);
        for row in &self.mean_table {
            for &mean in row {
                let scale = scale_rng.gen_range(self.scale_range.0..=self.scale_range.1);
                truth_cells.push(GammaSampler::from_mean_scale(mean, scale));
            }
        }
        let truth = ExecTruth { machine_types: m, cells: truth_cells };

        // Learn the PET: 500 samples per cell, histogram-discretised.
        let mut pet_cells = Vec::with_capacity(t * m);
        for (idx, sampler) in truth.cells.iter().enumerate() {
            let mut rng = new_rng(derive_seed(self.seed, 0x9E7 + idx as u64));
            let samples = sampler.sample_n(&mut rng, self.pet_samples);
            let hist = Histogram::from_samples(&samples, self.pet_bins);
            let pmf =
                Pmf::from_weights(hist.to_mass_pairs(1)).expect("histogram masses are positive");
            pet_cells.push(pmf);
        }
        let pet = PetMatrix::new(t, m, pet_cells);

        let task_types: Vec<TaskType> = self
            .type_names
            .iter()
            .enumerate()
            .map(|(i, name)| TaskType {
                id: TaskTypeId(i as u16),
                name: name.clone(),
                mean_exec: self.mean_table[i].iter().sum::<f64>() / m as f64,
            })
            .collect();
        let machine_types: Vec<MachineType> = self
            .machine_types
            .iter()
            .enumerate()
            .map(|(j, (name, price))| MachineType {
                id: MachineTypeId(j as u16),
                name: name.clone(),
                price_per_hour: *price,
            })
            .collect();
        let machines: Vec<Machine> = (0..m)
            .flat_map(|j| (0..self.machines_per_type).map(move |k| (j, k)))
            .enumerate()
            .map(|(id, (j, _))| Machine::new(MachineId(id as u16), MachineTypeId(j as u16)))
            .collect();

        Scenario {
            name: self.name,
            task_types,
            machine_types,
            machines,
            truth,
            pet,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specint_dimensions() {
        let s = Scenario::specint(42);
        assert_eq!(s.task_type_count(), 12);
        assert_eq!(s.machine_types.len(), 8);
        assert_eq!(s.machine_count(), 8);
        assert_eq!(s.pet.task_types(), 12);
        assert_eq!(s.pet.machine_types(), 8);
    }

    #[test]
    fn transcode_dimensions() {
        let s = Scenario::transcode(42);
        assert_eq!(s.task_type_count(), 4);
        assert_eq!(s.machine_types.len(), 4);
        assert_eq!(s.machine_count(), 8); // two per type
                                          // Machines 0,1 share type 0; 2,3 share type 1; etc.
        assert_eq!(s.machines[0].type_id, s.machines[1].type_id);
        assert_ne!(s.machines[1].type_id, s.machines[2].type_id);
    }

    #[test]
    fn homogeneous_is_single_type() {
        let s = Scenario::homogeneous(42);
        assert_eq!(s.machine_types.len(), 1);
        assert_eq!(s.machine_count(), 8);
        assert_eq!(s.pet.machine_types(), 1);
        assert_eq!(s.pet.inconsistency(), 0.0);
    }

    #[test]
    fn specint_pet_is_inconsistent() {
        let s = Scenario::specint(7);
        assert!(
            s.pet.inconsistency() > 0.15,
            "learned PET lost inconsistency: {}",
            s.pet.inconsistency()
        );
    }

    #[test]
    fn learned_means_track_truth() {
        let s = Scenario::specint(123);
        for t in 0..12u16 {
            for m in 0..8u16 {
                let truth = s.truth.mean(TaskTypeId(t), MachineTypeId(m));
                let learned = s.pet.mean_exec(TaskTypeId(t), MachineTypeId(m));
                let rel = (truth - learned).abs() / truth;
                assert!(rel < 0.15, "cell ({t},{m}): truth {truth:.1} learned {learned:.1}");
            }
        }
    }

    #[test]
    fn scenario_deterministic_under_seed() {
        let a = Scenario::specint(99);
        let b = Scenario::specint(99);
        assert_eq!(a.pet, b.pet);
        let c = Scenario::specint(100);
        assert_ne!(a.pet, c.pet);
    }

    #[test]
    fn truth_sampling_positive_and_deterministic() {
        let s = Scenario::transcode(5);
        let mut r1 = new_rng(1);
        let mut r2 = new_rng(1);
        for t in 0..4u16 {
            for m in 0..4u16 {
                let x = s.truth.sample(TaskTypeId(t), MachineTypeId(m), &mut r1);
                let y = s.truth.sample(TaskTypeId(t), MachineTypeId(m), &mut r2);
                assert_eq!(x, y);
                assert!(x >= 1);
            }
        }
    }

    #[test]
    fn price_lookup_via_type() {
        let s = Scenario::transcode(5);
        // Machines 6,7 are the GPU pair (last type), price 1.14.
        assert!((s.price_per_hour(MachineId(6)) - 1.14).abs() < 1e-12);
        assert!((s.price_per_hour(MachineId(0)) - 0.33).abs() < 1e-12);
    }
}
