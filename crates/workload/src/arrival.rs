//! Oversubscription levels: how many tasks arrive over which window.
//!
//! The paper evaluates three *workload intensity* levels — 20k, 30k and 40k
//! tasks — arriving over the same wall-clock window, so a higher level means
//! a higher arrival rate and deeper oversubscription. [`OversubscriptionLevel`]
//! captures `(label, tasks, window)`; [`OversubscriptionLevel::scaled`]
//! shrinks tasks and window *together*, preserving the arrival rate (and
//! therefore the oversubscription behaviour) while letting experiments run
//! at laptop scale. EXPERIMENTS.md records the scale used for every figure.

use serde::{Deserialize, Serialize};
use taskdrop_pmf::Tick;

/// The arrival window the paper-scale SPECint levels use, in ticks.
///
/// Calibrated (see `taskdrop-bench/src/bin/calibrate.rs`) so the three
/// levels land in the robustness bands of the paper's Figure 5: mapping
/// heuristics exploit the inconsistent PET matrix, giving an *effective*
/// service capacity of ~90 tasks/s on the 8 machines; 20k tasks over 108 s
/// (~185/s) is a ~2× overload yielding ≈49 % robustness under
/// PAM+Heuristic, 30k ≈36 %, 40k ≈29 % — the paper reports ≈48/35/27 %.
pub const SPECINT_WINDOW: Tick = 108_000;

/// Arrival window for the transcode scenario: the paper notes its traces
/// "have a lower arrival rate and the system is moderately oversubscribed",
/// and Figure 10 sits in a visibly higher robustness band than Figure 7a.
pub const TRANSCODE_WINDOW: Tick = 240_000;

/// A workload intensity level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OversubscriptionLevel {
    /// Paper-facing label (e.g. `"20k"`), kept even when scaled.
    pub label: String,
    /// Number of tasks that arrive.
    pub tasks: usize,
    /// Window (ticks) over which they arrive.
    pub window: Tick,
}

impl OversubscriptionLevel {
    /// Creates a level.
    ///
    /// # Panics
    ///
    /// Panics if `tasks == 0` or `window == 0`.
    #[must_use]
    pub fn new(label: impl Into<String>, tasks: usize, window: Tick) -> Self {
        assert!(tasks > 0, "level needs at least one task");
        assert!(window > 0, "window must be positive");
        OversubscriptionLevel { label: label.into(), tasks, window }
    }

    /// The paper's three levels for a given window.
    #[must_use]
    pub fn paper_levels(window: Tick) -> [OversubscriptionLevel; 3] {
        [
            OversubscriptionLevel::new("20k", 20_000, window),
            OversubscriptionLevel::new("30k", 30_000, window),
            OversubscriptionLevel::new("40k", 40_000, window),
        ]
    }

    /// Scales tasks and window together (rate-preserving). `factor` in
    /// `(0, 1]` shrinks, `> 1` grows. The label is retained.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be > 0");
        OversubscriptionLevel {
            label: self.label.clone(),
            tasks: ((self.tasks as f64 * factor).round() as usize).max(1),
            window: ((self.window as f64 * factor).round() as Tick).max(1),
        }
    }

    /// Arrival rate in tasks per tick.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.tasks as f64 / self.window as f64
    }
}

impl std::fmt::Display for OversubscriptionLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} tasks / {} ticks)", self.label, self.tasks, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_levels_share_window() {
        let levels = OversubscriptionLevel::paper_levels(SPECINT_WINDOW);
        assert_eq!(levels[0].tasks, 20_000);
        assert_eq!(levels[2].tasks, 40_000);
        assert!(levels.iter().all(|l| l.window == SPECINT_WINDOW));
        // Rates strictly increase with the level.
        assert!(levels[0].rate() < levels[1].rate());
        assert!(levels[1].rate() < levels[2].rate());
    }

    #[test]
    fn scaling_preserves_rate() {
        let l = OversubscriptionLevel::new("30k", 30_000, SPECINT_WINDOW);
        let s = l.scaled(0.2);
        assert_eq!(s.tasks, 6_000);
        assert_eq!(s.label, "30k");
        assert!((s.rate() - l.rate()).abs() / l.rate() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn rejects_zero_factor() {
        let _ = OversubscriptionLevel::new("x", 10, 10).scaled(0.0);
    }
}
