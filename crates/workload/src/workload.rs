//! Workload trials: the task streams fed to the simulator.

use crate::{OversubscriptionLevel, Scenario};
use rand::Rng;
use serde::{Deserialize, Serialize};
use taskdrop_model::{Task, TaskId, TaskTypeId};
use taskdrop_pmf::Tick;
use taskdrop_stats::{derive_seed, new_rng, PoissonProcess};

/// One workload trial: tasks in arrival order.
///
/// Construction follows the paper's Section V-A: Poisson arrivals at the
/// level's rate, uniformly random task types, and deadlines
/// `δᵢ = arrᵢ + avgᵢ + γ·avg_all` where `avgᵢ` is the task type's true mean
/// execution time across machines, `avg_all` the mean over all types, and
/// `γ` the slack coefficient. Every task is individually feasible (its
/// deadline leaves room for an average execution), yet the aggregate rate
/// oversubscribes the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Level label this trial was generated for (e.g. `"30k"`).
    pub label: String,
    /// Deadline slack coefficient γ.
    pub gamma_x1000: u64,
    /// Seed the trial was generated from.
    pub seed: u64,
    /// Tasks sorted by arrival tick.
    pub tasks: Vec<Task>,
}

impl Workload {
    /// Generates a trial.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative or not finite.
    #[must_use]
    pub fn generate(
        scenario: &Scenario,
        level: &OversubscriptionLevel,
        gamma: f64,
        seed: u64,
    ) -> Self {
        assert!(gamma.is_finite() && gamma >= 0.0, "gamma must be finite and >= 0");
        let mut rng = new_rng(derive_seed(seed, 0xA331));
        let arrivals = PoissonProcess::new(level.rate()).arrival_ticks(&mut rng, level.tasks);
        let avg_all: f64 = scenario.task_types.iter().map(|t| t.mean_exec).sum::<f64>()
            / scenario.task_type_count() as f64;
        let tasks: Vec<Task> = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let type_id = TaskTypeId(rng.gen_range(0..scenario.task_type_count()) as u16);
                let avg_i = scenario.task_types[type_id.index()].mean_exec;
                let slack = ((avg_i + gamma * avg_all).round() as Tick).max(1);
                Task::new(TaskId(i as u64), type_id, arrival, arrival + slack)
            })
            .collect();
        Workload {
            label: level.label.clone(),
            gamma_x1000: (gamma * 1000.0).round() as u64,
            seed,
            tasks,
        }
    }

    /// The slack coefficient γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma_x1000 as f64 / 1000.0
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the trial is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The last arrival tick (0 for an empty workload).
    #[must_use]
    pub fn horizon(&self) -> Tick {
        self.tasks.last().map_or(0, |t| t.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> OversubscriptionLevel {
        OversubscriptionLevel::new("20k", 2_000, 27_000)
    }

    #[test]
    fn generates_requested_count_in_order() {
        let s = Scenario::specint(1);
        let w = Workload::generate(&s, &level(), 3.0, 11);
        assert_eq!(w.len(), 2_000);
        assert!(w.tasks.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert!(w.tasks.windows(2).all(|p| p[0].id < p[1].id));
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Scenario::specint(1);
        let a = Workload::generate(&s, &level(), 3.0, 11);
        let b = Workload::generate(&s, &level(), 3.0, 11);
        let c = Workload::generate(&s, &level(), 3.0, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_rate_close_to_level() {
        let s = Scenario::specint(1);
        let w = Workload::generate(&s, &level(), 3.0, 5);
        let measured = w.len() as f64 / w.horizon() as f64;
        let target = level().rate();
        assert!((measured - target).abs() / target < 0.08, "rate {measured} vs {target}");
    }

    #[test]
    fn deadline_formula_matches_paper() {
        let s = Scenario::specint(1);
        let gamma = 2.5;
        let w = Workload::generate(&s, &level(), gamma, 5);
        let avg_all: f64 =
            s.task_types.iter().map(|t| t.mean_exec).sum::<f64>() / s.task_type_count() as f64;
        for t in w.tasks.iter().take(50) {
            let avg_i = s.task_types[t.type_id.index()].mean_exec;
            let expect = t.arrival + ((avg_i + gamma * avg_all).round() as Tick).max(1);
            assert_eq!(t.deadline, expect);
        }
    }

    #[test]
    fn all_types_appear() {
        let s = Scenario::specint(1);
        let w = Workload::generate(&s, &level(), 3.0, 5);
        let mut seen = vec![false; s.task_type_count()];
        for t in &w.tasks {
            seen[t.type_id.index()] = true;
        }
        assert!(seen.iter().all(|&b| b), "not all task types present");
    }

    #[test]
    fn serde_roundtrip() {
        let s = Scenario::transcode(1);
        let small = OversubscriptionLevel::new("20k", 50, 5_000);
        let w = Workload::generate(&s, &small, 3.0, 5);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn zero_gamma_still_feasible() {
        let s = Scenario::specint(1);
        let w = Workload::generate(&s, &OversubscriptionLevel::new("x", 100, 1_000), 0.0, 5);
        for t in &w.tasks {
            assert!(t.deadline > t.arrival);
        }
    }
}
