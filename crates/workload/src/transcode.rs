//! The video-transcoding validation scenario (paper Section V-H, Figure 10).
//!
//! Four transcoding task types on four heterogeneous cloud VM types, two
//! machine instances per type. The paper describes the traces only
//! qualitatively: *"Execution time variation across different task types is
//! high (i.e., certain task type takes significantly shorter time to execute
//! than the others across all machine types)"*, with a lower arrival rate
//! and moderate oversubscription. The synthetic table below encodes exactly
//! that: type means spanning 40–320 ms (8×), and VM-type affinities (the GPU
//! VM excels at codec changes, the CPU-optimised VM at resolution scaling).

/// The four transcoding operations of the paper's motivating system.
pub const TRANSCODE_TASK_TYPES: [&str; 4] =
    ["change-resolution", "change-bitrate", "change-framerate", "change-codec"];

/// The four VM types (name, hourly price). Prices follow EC2's ordering:
/// GPU > CPU-optimised > memory-optimised > general-purpose.
pub const TRANSCODE_VM_TYPES: [(&str, f64); 4] =
    [("general-purpose", 0.33), ("cpu-optimized", 0.60), ("mem-optimized", 0.50), ("gpu", 1.14)];

/// Machines per VM type (the paper: "two machines for each type").
pub const TRANSCODE_MACHINES_PER_TYPE: usize = 2;

/// Mean execution-time table (ticks), rows = task types, columns = VM types.
///
/// High cross-type variation (row means ≈ 42, 95, 170, 310) and inconsistent
/// VM affinities within each row.
#[must_use]
pub fn transcode_mean_table() -> Vec<Vec<f64>> {
    vec![
        // change-resolution: cheap everywhere, CPU-optimised shines.
        vec![48.0, 30.0, 45.0, 44.0],
        // change-bitrate: memory-bound.
        vec![105.0, 98.0, 62.0, 115.0],
        // change-framerate: moderately heavy, GPU helps some.
        vec![195.0, 170.0, 185.0, 130.0],
        // change-codec: heavyweight; GPU dominates, general-purpose crawls.
        vec![420.0, 330.0, 360.0, 130.0],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_variation_across_types() {
        let t = transcode_mean_table();
        let row_mean = |r: &Vec<f64>| -> f64 { r.iter().sum::<f64>() / r.len() as f64 };
        let fastest = row_mean(&t[0]);
        let slowest = row_mean(&t[3]);
        assert!(
            slowest / fastest > 5.0,
            "paper requires high cross-type variation; got {:.1}x",
            slowest / fastest
        );
    }

    #[test]
    fn inconsistent_vm_affinity() {
        let t = transcode_mean_table();
        // GPU is best for codec but not for resolution.
        let argmin =
            |r: &Vec<f64>| r.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(argmin(&t[3]), 3, "GPU must win codec changes");
        assert_ne!(argmin(&t[0]), 3, "GPU must not win resolution scaling");
    }

    #[test]
    fn dimensions_match_constants() {
        let t = transcode_mean_table();
        assert_eq!(t.len(), TRANSCODE_TASK_TYPES.len());
        for row in &t {
            assert_eq!(row.len(), TRANSCODE_VM_TYPES.len());
        }
    }
}
