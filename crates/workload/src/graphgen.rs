//! Dependency-graph workload generators for the `taskdrop_dag` layer.
//!
//! Every generator here produces a [`GraphBlueprint`]: the *untyped* half
//! of a task graph — node task types, per-node slack, and directed edges —
//! that `taskdrop_dag::TaskGraph::from_blueprint` validates into a real
//! graph (this crate sits below the graph crate in the dependency order,
//! so the blueprint is deliberately a plain data bag with no topology
//! guarantees of its own; the constructors below only ever emit acyclic
//! shapes, which validation then certifies).
//!
//! Three shapes cover the scenarios the ROADMAP names:
//!
//! * [`linear_chain`] — a serverless function chain: `n₀ → n₁ → … → nₖ`;
//! * [`fan_out_fan_in`] — a scatter/gather: one source, `width` parallel
//!   workers, one sink;
//! * [`random_layered`] — a layered random DAG (each node draws its
//!   predecessors from the previous layer), the standard synthetic-DAG
//!   shape of the scheduling literature.
//!
//! Determinism is the same contract as the rest of this crate: all draws
//! come from a fresh RNG keyed off the caller's seed
//! ([`derive_seed`]), so a given seed always
//! yields the same blueprint, independent of call order or platform.

use rand::Rng;
use serde::{Deserialize, Serialize};
use taskdrop_model::TaskTypeId;
use taskdrop_pmf::Tick;
use taskdrop_stats::{derive_seed, new_rng};

/// One node of a [`GraphBlueprint`]: what to run and how much time the
/// node gets once its predecessors have delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlueprintNode {
    /// Task type to execute (indexes the scenario's PET matrix).
    pub type_id: TaskTypeId,
    /// Relative deadline: ticks from the node's *release* (all
    /// predecessors complete) to its hard deadline. Must be positive.
    pub slack: Tick,
}

/// An unvalidated task graph: nodes plus `(predecessor, successor)` edges
/// over node indices. Produced by the generators in this module, consumed
/// by `taskdrop_dag::TaskGraph::from_blueprint` (which checks index
/// bounds, duplicate edges, and acyclicity).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphBlueprint {
    /// Tick at which the graph's root nodes become eligible for release.
    pub arrival: Tick,
    /// Node specifications; a node's index is its identity.
    pub nodes: Vec<BlueprintNode>,
    /// Directed dependency edges `(pred, succ)` by node index.
    pub edges: Vec<(u32, u32)>,
}

/// Uniform task type in `0..task_types`.
fn draw_type(rng: &mut taskdrop_stats::Rng64, task_types: u16) -> TaskTypeId {
    TaskTypeId(rng.gen_range(0..task_types as usize) as u16)
}

/// A serverless function chain of `len` nodes: `n₀ → n₁ → … → n_{len-1}`,
/// each node a uniformly random type in `0..task_types` with `slack` ticks
/// from release to deadline.
///
/// # Panics
///
/// Panics if `len` or `task_types` is zero, or `slack` is zero.
#[must_use]
pub fn linear_chain(
    seed: u64,
    arrival: Tick,
    len: usize,
    task_types: u16,
    slack: Tick,
) -> GraphBlueprint {
    assert!(len > 0, "a chain needs at least one node");
    assert!(task_types > 0 && slack > 0, "degenerate chain parameters");
    let mut rng = new_rng(derive_seed(seed, 0xC4A1_0000));
    let nodes = (0..len)
        .map(|_| BlueprintNode { type_id: draw_type(&mut rng, task_types), slack })
        .collect();
    let edges = (1..len as u32).map(|i| (i - 1, i)).collect();
    GraphBlueprint { arrival, nodes, edges }
}

/// A scatter/gather graph: one source node fanning out to `width` parallel
/// workers fanning back into one sink (`width + 2` nodes total). Types are
/// uniformly random; every node gets `slack` ticks from release.
///
/// # Panics
///
/// Panics if `width` or `task_types` is zero, or `slack` is zero.
#[must_use]
pub fn fan_out_fan_in(
    seed: u64,
    arrival: Tick,
    width: usize,
    task_types: u16,
    slack: Tick,
) -> GraphBlueprint {
    assert!(width > 0, "fan-out needs at least one worker");
    assert!(task_types > 0 && slack > 0, "degenerate fan parameters");
    let mut rng = new_rng(derive_seed(seed, 0xFA40_0000));
    let n = width + 2;
    let nodes =
        (0..n).map(|_| BlueprintNode { type_id: draw_type(&mut rng, task_types), slack }).collect();
    let sink = (n - 1) as u32;
    let mut edges = Vec::with_capacity(2 * width);
    for w in 1..=width as u32 {
        edges.push((0, w));
        edges.push((w, sink));
    }
    GraphBlueprint { arrival, nodes, edges }
}

/// A random layered DAG: `layers` layers of 1..=`max_width` nodes each
/// (uniform), where every node in layer `k > 0` draws each node of layer
/// `k - 1` as a predecessor with probability `edge_prob` — and at least
/// one, so no interior node floats free of the layering. Per-node slack is
/// uniform in `slack.0..=slack.1`.
///
/// # Panics
///
/// Panics if `layers`, `max_width` or `task_types` is zero, `edge_prob`
/// is outside `[0, 1]`, or the slack range is empty or starts at zero.
#[must_use]
pub fn random_layered(
    seed: u64,
    arrival: Tick,
    layers: usize,
    max_width: usize,
    edge_prob: f64,
    task_types: u16,
    slack: (Tick, Tick),
) -> GraphBlueprint {
    assert!(layers > 0 && max_width > 0, "degenerate layer shape");
    assert!((0.0..=1.0).contains(&edge_prob), "edge probability must be in [0, 1]");
    assert!(task_types > 0, "need at least one task type");
    assert!(slack.0 > 0 && slack.0 <= slack.1, "slack range must be non-empty and positive");
    let mut rng = new_rng(derive_seed(seed, 0x1A7E_0000));
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut prev_layer: Vec<u32> = Vec::new();
    for _ in 0..layers {
        let width = rng.gen_range(1..=max_width);
        let layer: Vec<u32> = (0..width)
            .map(|_| {
                let id = nodes.len() as u32;
                let slack_ticks = rng.gen_range(slack.0 as usize..=slack.1 as usize) as Tick;
                nodes.push(BlueprintNode {
                    type_id: draw_type(&mut rng, task_types),
                    slack: slack_ticks,
                });
                id
            })
            .collect();
        if !prev_layer.is_empty() {
            for &succ in &layer {
                let mut wired = false;
                for &pred in &prev_layer {
                    if rng.gen::<f64>() < edge_prob {
                        edges.push((pred, succ));
                        wired = true;
                    }
                }
                if !wired {
                    // Keep the layering honest: every interior node depends
                    // on at least one node of the previous layer.
                    let pick = prev_layer[rng.gen_range(0..prev_layer.len())];
                    edges.push((pick, succ));
                }
            }
        }
        prev_layer = layer;
    }
    GraphBlueprint { arrival, nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_are_chains() {
        let bp = linear_chain(7, 100, 5, 12, 300);
        assert_eq!(bp.nodes.len(), 5);
        assert_eq!(bp.edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bp.arrival, 100);
        assert!(bp.nodes.iter().all(|n| n.slack == 300 && n.type_id.0 < 12));
    }

    #[test]
    fn fan_shape_has_one_source_and_one_sink() {
        let bp = fan_out_fan_in(7, 0, 4, 12, 200);
        assert_eq!(bp.nodes.len(), 6);
        assert_eq!(bp.edges.len(), 8);
        assert!(bp.edges.iter().all(|&(p, s)| p < s), "edges point forward");
        let sink = (bp.nodes.len() - 1) as u32;
        assert_eq!(bp.edges.iter().filter(|&&(p, _)| p == 0).count(), 4);
        assert_eq!(bp.edges.iter().filter(|&&(_, s)| s == sink).count(), 4);
    }

    #[test]
    fn layered_dags_are_forward_wired_and_deterministic() {
        let a = random_layered(42, 0, 5, 4, 0.5, 12, (200, 400));
        let b = random_layered(42, 0, 5, 4, 0.5, 12, (200, 400));
        assert_eq!(a, b, "same seed, same blueprint");
        let c = random_layered(43, 0, 5, 4, 0.5, 12, (200, 400));
        assert_ne!(a, c, "different seed, different blueprint");
        // Forward edges only (acyclic by construction) and every
        // non-root node has a predecessor.
        assert!(a.edges.iter().all(|&(p, s)| p < s));
        for &(_, s) in &a.edges {
            assert!((s as usize) < a.nodes.len());
        }
        assert!(a.nodes.iter().all(|n| (200..=400).contains(&n.slack)));
    }

    #[test]
    fn blueprints_roundtrip_through_serde() {
        let bp = random_layered(9, 50, 3, 3, 0.7, 4, (100, 100));
        let json = serde_json::to_string(&bp).unwrap();
        let back: GraphBlueprint = serde_json::from_str(&json).unwrap();
        assert_eq!(bp, back);
    }
}
