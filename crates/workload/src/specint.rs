//! The SPECint-like heterogeneous scenario table.
//!
//! The paper measures the 12 SPEC CINT2006 benchmarks on eight physical
//! machines and uses the measured means to seed Gamma execution-time
//! distributions. Those measurements are not available offline, so this
//! module synthesises a mean table with the same structure:
//!
//! * 12 task types named after the CINT2006 suite;
//! * 8 machines with distinct overall speed factors (named after the
//!   paper's footnote 1 machines);
//! * a deterministic *affinity* pattern that makes the heterogeneity
//!   **inconsistent** — machine A is faster than machine B for some types
//!   and slower for others — which is the property the paper's system model
//!   requires;
//! * per-type mean execution times (averaged over machines) spread evenly
//!   across the paper's stated 50–200 ms range.

/// The 12 SPEC CINT2006 benchmark names, used as task-type names.
pub const SPECINT_BENCHMARKS: [&str; 12] = [
    "perlbench",
    "bzip2",
    "gcc",
    "mcf",
    "gobmk",
    "hmmer",
    "sjeng",
    "libquantum",
    "h264ref",
    "omnetpp",
    "astar",
    "xalancbmk",
];

/// The eight machines of the paper's footnote 1, with synthetic relative
/// speed factors (smaller = faster) and AWS-flavoured hourly prices
/// (faster machines cost more, as in EC2's lineup).
pub const SPECINT_MACHINES: [(&str, f64, f64); 8] = [
    ("dell-precision-380", 1.05, 0.34),
    ("apple-imac-core-duo", 1.30, 0.20),
    ("apple-xserve", 1.20, 0.27),
    ("ibm-x3455-opteron", 0.90, 0.50),
    ("shuttle-athlon-fx60", 1.00, 0.42),
    ("ibm-p570", 0.55, 0.98),
    ("sunfire-3800", 1.60, 0.17),
    ("ibm-hs21xm", 0.80, 0.61),
];

/// Affinity multipliers cycled over `(3·type + 5·machine) mod 7`; the cycle
/// is coprime with both dimensions, so every machine ordering inversion the
/// paper's "inconsistent heterogeneity" needs actually occurs (verified by
/// the `inconsistency` test below).
const AFFINITY: [f64; 7] = [0.62, 0.81, 0.95, 1.00, 1.12, 1.33, 1.55];

/// Target per-type mean execution times in ticks (ms): evenly spread over
/// the paper's 50–200 ms range.
fn target_type_mean(i: usize) -> f64 {
    50.0 + 150.0 * i as f64 / (SPECINT_BENCHMARKS.len() - 1) as f64
}

/// Builds the 12×8 mean execution-time table (row-major, ticks).
///
/// Row means are calibrated exactly to the internal per-type target-mean
/// schedule (50–200 ms, the paper's stated SPECint range); the raw cell
/// pattern `speed(machine) · affinity((3i+5j) mod 7)` provides the
/// inconsistency.
#[must_use]
pub fn specint_mean_table() -> Vec<Vec<f64>> {
    let types = SPECINT_BENCHMARKS.len();
    let machines = SPECINT_MACHINES.len();
    let mut table = Vec::with_capacity(types);
    for i in 0..types {
        let raw: Vec<f64> =
            (0..machines).map(|j| SPECINT_MACHINES[j].1 * AFFINITY[(3 * i + 5 * j) % 7]).collect();
        let raw_mean = raw.iter().sum::<f64>() / machines as f64;
        let scale = target_type_mean(i) / raw_mean;
        table.push(raw.iter().map(|r| r * scale).collect());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_means_span_paper_range() {
        let table = specint_mean_table();
        for (i, row) in table.iter().enumerate() {
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            assert!((mean - target_type_mean(i)).abs() < 1e-9, "row {i}");
        }
        let first = table[0].iter().sum::<f64>() / 8.0;
        let last = table[11].iter().sum::<f64>() / 8.0;
        assert!((first - 50.0).abs() < 1e-9);
        assert!((last - 200.0).abs() < 1e-9);
    }

    #[test]
    fn all_cells_positive_and_finite() {
        for row in specint_mean_table() {
            for cell in row {
                assert!(cell.is_finite() && cell > 0.0);
            }
        }
    }

    #[test]
    fn table_is_inconsistent() {
        // There must exist types (a, b) and machines (x, y) with a faster on
        // x but slower on y.
        let t = specint_mean_table();
        let mut found = false;
        'outer: for a in 0..12 {
            for b in 0..12 {
                for x in 0..8 {
                    for y in 0..8 {
                        if t[a][x] < t[b][x] && t[a][y] > t[b][y] {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(found, "mean table is consistent; inconsistency required");
    }

    #[test]
    fn machine_orderings_differ_across_types() {
        // Stronger inconsistency check: the argmin machine is not the same
        // for every task type.
        let t = specint_mean_table();
        let argmin =
            |row: &Vec<f64>| row.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let mins: Vec<usize> = t.iter().map(argmin).collect();
        let mut unique = mins.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 2, "every type prefers the same machine: {mins:?}");
    }
}
