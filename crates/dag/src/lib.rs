//! Dependency-aware execution over the open-world simulator core.
//!
//! The paper's system model is a stream of *independent* tasks; its
//! serverless companion work points at workloads where tasks form
//! **chains and DAGs** — a function's output feeds the next, a failed
//! link dooms everything downstream. This crate adds that layer without
//! touching engine semantics: the core still sees independent tasks
//! injected one at a time; all graph structure lives up here.
//!
//! * [`TaskGraph`] — a validated dependency graph over engine task types
//!   (deterministic dense node ids, acyclicity certified at
//!   construction), built from the neutral
//!   [`GraphBlueprint`](taskdrop_workload::GraphBlueprint)s the workload
//!   crate generates.
//! * [`DagCoordinator`] — holds not-yet-ready nodes outside the core,
//!   releases each through [`SimCore::inject`](taskdrop_sim::SimCore::inject)
//!   when its last predecessor completes, and **cascade-forfeits** all
//!   descendants the moment a node is dropped, killed, or lost
//!   ([`SimEvent::CascadeForfeited`](taskdrop_sim::SimEvent::CascadeForfeited)
//!   per node, conserved accounting in [`DagStats`]). Release-time
//!   options: [`PrunePolicy::PruneSubtree`] sheds chains whose
//!   critical-path chance (Eq 2 lifted to subtrees, [`subtree_chances`])
//!   is already below threshold; function-chain **merging** batches
//!   identical concurrent releases into one execution fanning out to all
//!   riders; chain-aware admission routes releases through
//!   [`AdmissionController::admit_now`](taskdrop_serve::AdmissionController::admit_now).
//! * [`DagTap`] — the observer handle feeding engine resolutions back to
//!   the coordinator.
//! * [`DagCheckpoint`] — coordinator + core state, serializable;
//!   kill-and-restore resumes byte-identically to an uninterrupted run.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod chance;
mod coordinator;
mod error;
mod graph;
mod stats;
mod tap;

pub use chance::{exhaustive_subtree_chance, subtree_chances};
pub use coordinator::{DagCheckpoint, DagCoordinator, NodeRef, NodeState, PrunePolicy};
pub use error::DagError;
pub use graph::{NodeSpec, TaskGraph};
pub use stats::DagStats;
pub use tap::DagTap;
