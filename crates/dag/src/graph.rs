//! Validated task graphs.
//!
//! A [`TaskGraph`] is a [`GraphBlueprint`] that survived validation:
//! every edge endpoint in range, no self-loops or duplicate edges, and —
//! certified by a Kahn peel whose order the graph keeps — acyclic. Node
//! identity is the blueprint index; adjacency is stored both ways (the
//! coordinator walks successors to release and cascade, the chance
//! estimator walks the topological order backwards).

use crate::error::DagError;
use serde::{Deserialize, Serialize};
use taskdrop_model::TaskTypeId;
use taskdrop_pmf::Tick;
use taskdrop_workload::GraphBlueprint;

/// What one graph node runs and how much time it gets from release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Task type to execute.
    pub type_id: TaskTypeId,
    /// Ticks from the node's release (all predecessors complete) to its
    /// hard deadline. Always positive.
    pub slack: Tick,
}

/// A validated, immutable dependency graph over engine task types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraph {
    /// Tick at which the graph's roots become eligible for release.
    arrival: Tick,
    nodes: Vec<NodeSpec>,
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    /// A topological order of the node indices (Kahn), recorded at
    /// validation time so consumers never re-sort.
    topo: Vec<u32>,
}

impl TaskGraph {
    /// Validates a blueprint into a graph.
    ///
    /// # Errors
    ///
    /// [`DagError::EmptyGraph`], [`DagError::NodeOutOfRange`],
    /// [`DagError::SelfLoop`], [`DagError::DuplicateEdge`],
    /// [`DagError::ZeroSlack`], or [`DagError::Cycle`].
    pub fn from_blueprint(bp: &GraphBlueprint) -> Result<Self, DagError> {
        if bp.nodes.is_empty() {
            return Err(DagError::EmptyGraph);
        }
        let n = bp.nodes.len();
        for (i, node) in bp.nodes.iter().enumerate() {
            if node.slack == 0 {
                return Err(DagError::ZeroSlack { node: i as u32 });
            }
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut seen = std::collections::BTreeSet::new();
        for &(p, s) in &bp.edges {
            for end in [p, s] {
                if end as usize >= n {
                    return Err(DagError::NodeOutOfRange { node: end, nodes: n });
                }
            }
            if p == s {
                return Err(DagError::SelfLoop { node: p });
            }
            if !seen.insert((p, s)) {
                return Err(DagError::DuplicateEdge { pred: p, succ: s });
            }
            succs[p as usize].push(s);
            preds[s as usize].push(p);
        }
        // Kahn's peel: certifies acyclicity and yields the stored order.
        let mut unmet: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut frontier: Vec<u32> = (0..n as u32).filter(|&i| unmet[i as usize] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < frontier.len() {
            let node = frontier[cursor];
            cursor += 1;
            topo.push(node);
            for &s in &succs[node as usize] {
                unmet[s as usize] -= 1;
                if unmet[s as usize] == 0 {
                    frontier.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        let nodes =
            bp.nodes.iter().map(|b| NodeSpec { type_id: b.type_id, slack: b.slack }).collect();
        Ok(TaskGraph { arrival: bp.arrival, nodes, preds, succs, topo })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a validated graph;
    /// kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Tick at which the roots become eligible for release.
    #[must_use]
    pub fn arrival(&self) -> Tick {
        self.arrival
    }

    /// The spec of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node(&self, node: u32) -> NodeSpec {
        self.nodes[node as usize]
    }

    /// Direct predecessors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn preds(&self, node: u32) -> &[u32] {
        &self.preds[node as usize]
    }

    /// Direct successors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn succs(&self, node: u32) -> &[u32] {
        &self.succs[node as usize]
    }

    /// Nodes with no predecessors, in index order.
    #[must_use]
    pub fn roots(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32).filter(|&i| self.preds[i as usize].is_empty()).collect()
    }

    /// A topological order of the node indices.
    #[must_use]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// All proper descendants of `node` (successors, transitively), in
    /// BFS discovery order with no duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn descendants(&self, node: u32) -> Vec<u32> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: std::collections::VecDeque<u32> =
            self.succs[node as usize].iter().copied().collect();
        let mut out = Vec::new();
        while let Some(next) = queue.pop_front() {
            if seen[next as usize] {
                continue;
            }
            seen[next as usize] = true;
            out.push(next);
            queue.extend(self.succs[next as usize].iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_workload::BlueprintNode;

    fn bp(nodes: usize, edges: &[(u32, u32)]) -> GraphBlueprint {
        GraphBlueprint {
            arrival: 0,
            nodes: vec![BlueprintNode { type_id: TaskTypeId(0), slack: 100 }; nodes],
            edges: edges.to_vec(),
        }
    }

    #[test]
    fn diamond_validates_with_both_adjacencies() {
        let g = TaskGraph::from_blueprint(&bp(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])).unwrap();
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.preds(3), &[1, 2]);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.descendants(0), vec![1, 2, 3]);
        assert_eq!(g.descendants(3), Vec::<u32>::new());
        assert_eq!(g.topo().len(), 4);
        assert_eq!(g.topo()[0], 0);
        assert_eq!(g.topo()[3], 3);
    }

    #[test]
    fn rejects_malformed_blueprints() {
        assert_eq!(TaskGraph::from_blueprint(&bp(0, &[])).unwrap_err(), DagError::EmptyGraph);
        assert_eq!(
            TaskGraph::from_blueprint(&bp(2, &[(0, 5)])).unwrap_err(),
            DagError::NodeOutOfRange { node: 5, nodes: 2 }
        );
        assert_eq!(
            TaskGraph::from_blueprint(&bp(2, &[(1, 1)])).unwrap_err(),
            DagError::SelfLoop { node: 1 }
        );
        assert_eq!(
            TaskGraph::from_blueprint(&bp(2, &[(0, 1), (0, 1)])).unwrap_err(),
            DagError::DuplicateEdge { pred: 0, succ: 1 }
        );
        assert_eq!(
            TaskGraph::from_blueprint(&bp(3, &[(0, 1), (1, 2), (2, 0)])).unwrap_err(),
            DagError::Cycle
        );
        let mut zero = bp(1, &[]);
        zero.nodes[0].slack = 0;
        assert_eq!(TaskGraph::from_blueprint(&zero).unwrap_err(), DagError::ZeroSlack { node: 0 });
    }

    #[test]
    fn generated_blueprints_always_validate() {
        for seed in 0..20 {
            let bp = taskdrop_workload::graphgen::random_layered(seed, 0, 4, 4, 0.5, 8, (50, 200));
            let g = TaskGraph::from_blueprint(&bp).expect("generator emits valid shapes");
            assert_eq!(g.len(), bp.nodes.len());
        }
        let chain =
            TaskGraph::from_blueprint(&taskdrop_workload::graphgen::linear_chain(1, 0, 6, 4, 100))
                .unwrap();
        assert_eq!(chain.roots(), vec![0]);
        assert_eq!(chain.descendants(0).len(), 5);
    }

    #[test]
    fn graphs_roundtrip_through_serde() {
        let g = TaskGraph::from_blueprint(&bp(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
