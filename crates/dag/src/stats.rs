//! Graph-level accounting: the coordinator's conserved fate table.

use serde::{Deserialize, Serialize};

/// Cumulative node accounting across every graph a coordinator manages.
///
/// The conservation identity mirrors the engine's per-task one, lifted to
/// graph nodes: every node is at all times exactly one of *held* (waiting
/// on predecessors), *in flight* (injected, fate pending), or resolved
/// into exactly one of the terminal buckets below —
/// `nodes == held + in_flight + resolved()`, which
/// [`DagCoordinator::audit`](crate::DagCoordinator::audit) recounts from
/// the state tables on demand.
///
/// ```
/// use taskdrop_dag::DagStats;
///
/// // A drained coordinator: no node is held or in flight, so the
/// // conservation identity collapses to resolved() == nodes, with every
/// // terminal bucket — completions, drops, losses, and all three forfeit
/// // kinds — accounted exactly once.
/// let stats = DagStats {
///     graphs: 2,
///     nodes: 8,
///     injected: 5,
///     merged: 1,
///     on_time: 3,
///     on_time_approx: 1,
///     late: 1,
///     dropped: 1,
///     lost: 0,
///     forfeited_cascade: 1,
///     forfeited_pruned: 1,
///     forfeited_shed: 0,
/// };
/// assert_eq!(stats.resolved(), stats.nodes);
/// assert_eq!(stats.forfeited(), 2);
/// // Merged nodes ride an existing injection: engine work plus merges
/// // covers every node that ever reached the core.
/// assert_eq!(stats.injected + stats.merged, 6);
/// assert!((stats.on_time_fraction() - 0.375).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DagStats {
    /// Graphs registered.
    pub graphs: u64,
    /// Nodes registered (sum of graph sizes).
    pub nodes: u64,
    /// Engine injections performed (merged nodes share one injection).
    pub injected: u64,
    /// Nodes satisfied by riding an existing injection instead of their
    /// own (function-chain merging); always 0 with merging off.
    pub merged: u64,
    /// Nodes whose task completed strictly before its deadline.
    pub on_time: u64,
    /// Nodes whose task completed on time in approximate (degraded) mode.
    pub on_time_approx: u64,
    /// Nodes whose task ran to completion but finished late. Late output
    /// still *exists*, so successors were released, not forfeited.
    pub late: u64,
    /// Nodes whose task was dropped (reactively or proactively) or killed
    /// at its deadline.
    pub dropped: u64,
    /// Nodes whose task was lost to a machine failure.
    pub lost: u64,
    /// Nodes forfeited because a predecessor's task was dropped, killed,
    /// or lost.
    pub forfeited_cascade: u64,
    /// Nodes shed by [`PruneSubtree`](crate::PrunePolicy::PruneSubtree):
    /// their subtree's estimated chance fell below the threshold.
    pub forfeited_pruned: u64,
    /// Nodes turned away by chain-aware admission at release time (and
    /// their descendants, forfeited with them).
    pub forfeited_shed: u64,
}

impl DagStats {
    /// Nodes that reached a terminal state, across all buckets.
    #[must_use]
    pub fn resolved(&self) -> u64 {
        self.on_time + self.on_time_approx + self.late + self.dropped + self.lost + self.forfeited()
    }

    /// Nodes forfeited before injection, across all forfeit kinds.
    #[must_use]
    pub fn forfeited(&self) -> u64 {
        self.forfeited_cascade + self.forfeited_pruned + self.forfeited_shed
    }

    /// Nodes whose output was produced in time at full fidelity, as a
    /// fraction of all registered nodes (the graph-level robustness
    /// numerator; 0 for an empty coordinator).
    #[must_use]
    pub fn on_time_fraction(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.on_time as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_sums_every_terminal_bucket() {
        let s = DagStats {
            graphs: 2,
            nodes: 10,
            injected: 6,
            merged: 1,
            on_time: 3,
            on_time_approx: 1,
            late: 1,
            dropped: 1,
            lost: 1,
            forfeited_cascade: 2,
            forfeited_pruned: 0,
            forfeited_shed: 1,
        };
        assert_eq!(s.resolved(), 10);
        assert_eq!(s.forfeited(), 3);
        assert!((s.on_time_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(DagStats::default().on_time_fraction(), 0.0);
    }
}
