//! Subtree chance-of-success estimation (the paper's Eq 2, lifted to
//! graphs).
//!
//! A single task's chance of success is the mass of its completion PMF
//! before its deadline — the best machine's queue tail chained with the
//! task's execution PMF (Eq 1), evaluated through the serving layer's
//! [`QueueTails`] so the whole estimate reuses the core's persistent
//! PET×tail cache and fused chain evaluator. A graph *node*'s output is
//! only useful if its descendants deliver too, so the graph layer prices
//! the **subtree**:
//!
//! ```text
//! subtree(n) = own(n) × min over successors s of subtree(s)
//! ```
//!
//! the chance of the *critical path* — the weakest chain of nodes below
//! `n`. On a linear chain this is exactly the product of every node's own
//! chance (each min is over one successor). On branching graphs it is an
//! **upper bound** on the exhaustive all-descendants product: the min
//! keeps only the weakest branch and assumes the others deliver, trading
//! accuracy for independence from branch correlations (parallel branches
//! compete for the same queues, so multiplying them as if independent
//! *over*-penalises; see DESIGN.md §15 for the measured gap). Every
//! node's own chance is priced against the tails captured *now*, with its
//! slack as the deadline window — release times of deep descendants are
//! unknowable before their predecessors finish, so "could this node make
//! it if released into queues shaped like this?" is the honest question.

use crate::graph::TaskGraph;
use taskdrop_model::PetMatrix;
use taskdrop_pmf::Tick;
use taskdrop_serve::QueueTails;
use taskdrop_workload::OfferedTask;

/// Per-node critical-path subtree chances for the whole graph, indexed by
/// node: entry `n` is the chance that node `n` *and* its weakest
/// descendant chain all succeed, priced against `tails` at `now`.
#[must_use]
pub fn subtree_chances(
    graph: &TaskGraph,
    tails: &mut QueueTails,
    pet: &PetMatrix,
    now: Tick,
) -> Vec<f64> {
    let mut chance = vec![0.0f64; graph.len()];
    // Reverse topological order: successors are always priced first.
    for &node in graph.topo().iter().rev() {
        let spec = graph.node(node);
        let own = tails.best_chance(
            pet,
            now,
            &OfferedTask { type_id: spec.type_id, arrival: now, deadline: now + spec.slack },
        );
        let downstream =
            graph.succs(node).iter().map(|&s| chance[s as usize]).fold(1.0f64, f64::min);
        chance[node as usize] = own * downstream;
    }
    chance
}

/// The exhaustive counterpart of [`subtree_chances`] for one node: the
/// product of *every* subtree node's own chance (the node itself and all
/// its descendants), as if branches were independent. Exponentially
/// pessimistic on wide graphs and O(subtree) per node — kept for
/// small-graph error measurement (DESIGN.md §15), not for the release
/// path.
#[must_use]
pub fn exhaustive_subtree_chance(
    graph: &TaskGraph,
    node: u32,
    tails: &mut QueueTails,
    pet: &PetMatrix,
    now: Tick,
) -> f64 {
    let mut own = |n: u32| {
        let spec = graph.node(n);
        tails.best_chance(
            pet,
            now,
            &OfferedTask { type_id: spec.type_id, arrival: now, deadline: now + spec.slack },
        )
    };
    let mut product = own(node);
    for d in graph.descendants(node) {
        product *= own(d);
    }
    product
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_core::ReactiveOnly;
    use taskdrop_model::TaskTypeId;
    use taskdrop_sched::Pam;
    use taskdrop_sim::{SimConfig, SimCore};
    use taskdrop_workload::{BlueprintNode, GraphBlueprint, Scenario};

    // Slack tight enough that a single node's chance sits strictly inside
    // (0, 1) on an idle specint cluster — saturated chances would make the
    // product tests vacuous.
    fn graph(nodes: usize, edges: &[(u32, u32)]) -> TaskGraph {
        TaskGraph::from_blueprint(&GraphBlueprint {
            arrival: 0,
            nodes: vec![BlueprintNode { type_id: TaskTypeId(0), slack: 50 }; nodes],
            edges: edges.to_vec(),
        })
        .unwrap()
    }

    fn idle_tails(scenario: &Scenario) -> QueueTails {
        let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let mut core = SimCore::open(scenario, &Pam, &ReactiveOnly, config, 1).unwrap();
        QueueTails::capture(&mut core)
    }

    #[test]
    fn chain_chance_is_the_full_product() {
        let s = Scenario::specint(5);
        let mut tails = idle_tails(&s);
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let chances = subtree_chances(&g, &mut tails, &s.pet, 0);
        // All nodes share a type and slack, so own-chance is one number
        // and the root's subtree chance is own^4 — exactly the exhaustive
        // product on a linear chain.
        let own = chances[3];
        assert!(own > 0.05 && own < 0.999, "chance must not saturate: {own}");
        assert!((chances[0] - own.powi(4)).abs() < 1e-12);
        let exhaustive = exhaustive_subtree_chance(&g, 0, &mut tails, &s.pet, 0);
        assert!((chances[0] - exhaustive).abs() < 1e-12);
        // Monotone along the chain: each node is easier than its ancestor.
        assert!(chances[0] < chances[1] && chances[1] < chances[2] && chances[2] < chances[3]);
    }

    #[test]
    fn branching_critical_path_upper_bounds_the_exhaustive_product() {
        let s = Scenario::specint(5);
        let mut tails = idle_tails(&s);
        // A 1 → 4-wide → 1 fan: the min keeps one branch, the exhaustive
        // product multiplies all four.
        let g = graph(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (2, 5), (3, 5), (4, 5)]);
        let critical = subtree_chances(&g, &mut tails, &s.pet, 0)[0];
        let exhaustive = exhaustive_subtree_chance(&g, 0, &mut tails, &s.pet, 0);
        assert!(critical > exhaustive, "critical path ignores parallel branches");
        assert!(critical <= 1.0 && exhaustive > 0.0);
    }

    #[test]
    fn hopeless_descendant_poisons_the_root() {
        let s = Scenario::specint(5);
        let mut tails = idle_tails(&s);
        let mut bp = GraphBlueprint {
            arrival: 0,
            nodes: vec![BlueprintNode { type_id: TaskTypeId(0), slack: 400 }; 3],
            edges: vec![(0, 1), (1, 2)],
        };
        bp.nodes[2].slack = 1; // the sink can essentially never finish
        let g = TaskGraph::from_blueprint(&bp).unwrap();
        let chances = subtree_chances(&g, &mut tails, &s.pet, 0);
        assert!(chances[2] < 0.05);
        assert!(chances[0] < 0.05, "a doomed sink makes the whole chain not worth starting");
    }
}
