//! The dependency-aware execution coordinator.
//!
//! A [`DagCoordinator`] layers graph semantics on top of an open-world
//! [`SimCore`] without touching the engine: nodes whose predecessors have
//! not yet delivered are **held** outside the core; each time a node's
//! last predecessor completes, the node is *released* — optionally priced
//! by [`PrunePolicy::PruneSubtree`] and chain-aware admission, optionally
//! merged with an identical concurrent release — and injected through
//! [`SimCore::inject`] with its deadline anchored at the release instant.
//! Terminal engine events flow back through a [`DagTap`]; a failed node
//! (dropped, killed, or lost) **cascade-forfeits** every descendant on
//! the spot, each forfeit surfaced to the core's observers as
//! [`SimEvent::CascadeForfeited`] so stream-reconstructed accounting
//! (`MetricsObserver`) stays conserved.
//!
//! The whole coordinator is plain serializable data — graphs, node
//! states, in-flight fan-outs, merge index, admission controller,
//! counters — so [`DagCoordinator::snapshot`] plus the core's own
//! checkpoint captures a mid-flight graph workload wholesale, and
//! resuming from [`DagCheckpoint::restore`] is byte-identical to never
//! having stopped (the tap is derived state: attach a fresh one).

use crate::chance::subtree_chances;
use crate::error::DagError;
use crate::graph::TaskGraph;
use crate::stats::DagStats;
use crate::tap::DagTap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use taskdrop_core::DropPolicy;
use taskdrop_model::{TaskId, TaskTypeId};
use taskdrop_obs::{DagRecord, Telemetry};
use taskdrop_pmf::Tick;
use taskdrop_sched::MappingHeuristic;
use taskdrop_serve::{AdmissionController, QueueTails};
use taskdrop_sim::{Checkpoint, ForfeitKind, SimCore, SimEvent, TaskFate};
use taskdrop_workload::{OfferedTask, Scenario};

/// Whether whole subtrees are shed at release time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum PrunePolicy {
    /// Release every ready node unconditionally.
    #[default]
    Off,
    /// At release, estimate the node's critical-path subtree chance
    /// ([`subtree_chances`]) against freshly captured queue tails and
    /// forfeit the node *and its whole subtree* below `threshold` — the
    /// paper's probabilistic pruning lifted from tasks to chains: work
    /// whose weakest downstream link is already doomed never wastes a
    /// queue slot.
    PruneSubtree {
        /// Minimum acceptable subtree chance in `[0, 1]`.
        threshold: f64,
    },
}

/// A node address: which graph, which node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeRef {
    /// Index of the graph in its coordinator (from
    /// [`DagCoordinator::add_graph`]).
    pub graph: u32,
    /// Node index within the graph.
    pub node: u32,
}

/// Where one graph node currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Waiting for predecessors; the core has never seen this node.
    Held,
    /// Released and injected (or merged into) an engine task whose fate
    /// is still open.
    Injected(TaskId),
    /// Terminal. [`TaskFate::Forfeited`] means the node was never
    /// injected: a predecessor failed, its subtree was pruned, or
    /// admission shed it.
    Resolved(TaskFate),
}

/// One registered graph plus its mutable execution state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GraphRun {
    graph: TaskGraph,
    state: Vec<NodeState>,
    /// Per node: predecessors that have not yet delivered output.
    unmet: Vec<u32>,
}

/// The key two releases must share to ride one execution: same release
/// tick, same task type, same absolute deadline — an identical request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct MergeKey {
    arrival: Tick,
    type_id: TaskTypeId,
    deadline: Tick,
}

/// Coordinates any number of [`TaskGraph`]s over one open-world core.
/// See the module docs for the execution model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DagCoordinator {
    prune: PrunePolicy,
    merging: bool,
    admission: Option<AdmissionController>,
    graphs: Vec<GraphRun>,
    /// Open engine tasks → the node(s) riding them (more than one under
    /// merging). Kept sorted by task id: ids are handed out
    /// monotonically, so pushes append in order.
    in_flight: Vec<(TaskId, Vec<NodeRef>)>,
    /// Identical-request index for function-chain merging; stale keys
    /// (release tick already passed) are swept at each release.
    merge_index: Vec<(MergeKey, TaskId)>,
    stats: DagStats,
}

impl DagCoordinator {
    /// A coordinator with pruning off, merging off, no admission control.
    #[must_use]
    pub fn new() -> Self {
        DagCoordinator::default()
    }

    /// Enables subtree pruning at `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_pruning(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "prune threshold must be a probability");
        self.prune = PrunePolicy::PruneSubtree { threshold };
        self
    }

    /// Enables function-chain merging: releases that are identical
    /// requests (same tick, type, deadline) share one engine execution,
    /// its fate fanning out to every rider.
    #[must_use]
    pub fn with_merging(mut self) -> Self {
        self.merging = true;
        self
    }

    /// Routes every release through `controller`
    /// ([`AdmissionController::admit_now`]); a turned-away node forfeits
    /// its subtree as [`ForfeitKind::AdmissionShed`].
    #[must_use]
    pub fn with_admission(mut self, controller: AdmissionController) -> Self {
        self.admission = Some(controller);
        self
    }

    /// The accounting so far.
    #[must_use]
    pub fn stats(&self) -> DagStats {
        self.stats
    }

    /// Mirrors the coordinator's cumulative release/merge/forfeit rates
    /// into `telemetry` (counters under `scope`, plus one `dag` JSONL
    /// record stamped `now`). Read-only — call it at any cadence, e.g.
    /// after each [`DagCoordinator::advance`]; counters are monotone so
    /// re-recording the same state is a no-op.
    pub fn record_telemetry(&self, telemetry: &Telemetry, scope: &str, now: Tick) {
        telemetry.record_dag(&DagRecord {
            record: "dag".to_string(),
            scope: scope.to_string(),
            t: now,
            released: self.stats.injected,
            merged: self.stats.merged,
            forfeited_cascade: self.stats.forfeited_cascade,
            forfeited_pruned: self.stats.forfeited_pruned,
            forfeited_shed: self.stats.forfeited_shed,
        });
    }

    /// The admission controller, if one is configured.
    #[must_use]
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Graphs registered so far.
    #[must_use]
    pub fn graph_count(&self) -> usize {
        self.graphs.len()
    }

    /// The state of one node, or `None` for an unknown address.
    #[must_use]
    pub fn node_state(&self, node: NodeRef) -> Option<NodeState> {
        self.graphs.get(node.graph as usize)?.state.get(node.node as usize).copied()
    }

    /// Nodes still waiting on predecessors.
    #[must_use]
    pub fn held(&self) -> u64 {
        self.graphs
            .iter()
            .map(|run| run.state.iter().filter(|s| matches!(s, NodeState::Held)).count() as u64)
            .sum()
    }

    /// Nodes riding open engine tasks.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.in_flight.iter().map(|(_, refs)| refs.len() as u64).sum()
    }

    /// Whether every registered node has reached a terminal state.
    #[must_use]
    pub fn all_resolved(&self) -> bool {
        self.stats.resolved() == self.stats.nodes
    }

    /// Recounts the conservation identity from the state tables and
    /// checks it against the running [`DagStats`]: every node exactly one
    /// of held / in-flight / resolved, every terminal bucket matching,
    /// and the in-flight table consistent with the per-node states.
    /// Cheap enough for test assertions after every step.
    #[must_use]
    pub fn audit(&self) -> bool {
        let mut held = 0u64;
        let mut injected = 0u64;
        let mut recount = DagStats::default();
        let mut forfeited = 0u64;
        for run in &self.graphs {
            for s in &run.state {
                match *s {
                    NodeState::Held => held += 1,
                    NodeState::Injected(_) => injected += 1,
                    NodeState::Resolved(fate) => match fate {
                        TaskFate::OnTime => recount.on_time += 1,
                        TaskFate::OnTimeApprox => recount.on_time_approx += 1,
                        TaskFate::Late => recount.late += 1,
                        TaskFate::DroppedReactive | TaskFate::DroppedProactive => {
                            recount.dropped += 1;
                        }
                        TaskFate::LostToFailure => recount.lost += 1,
                        TaskFate::Forfeited => forfeited += 1,
                    },
                }
            }
        }
        let nodes: u64 = self.graphs.iter().map(|run| run.graph.len() as u64).sum();
        nodes == self.stats.nodes
            && self.graphs.len() as u64 == self.stats.graphs
            && held == self.held()
            && injected == self.in_flight()
            && held + injected + recount.resolved() + forfeited == nodes
            && recount.on_time == self.stats.on_time
            && recount.on_time_approx == self.stats.on_time_approx
            && recount.late == self.stats.late
            && recount.dropped == self.stats.dropped
            && recount.lost == self.stats.lost
            && forfeited == self.stats.forfeited()
    }

    /// Registers a graph and releases its roots at
    /// `max(graph.arrival(), core.now())` (roots may be injected with a
    /// future arrival; the engine holds them until their tick). Returns
    /// the graph's index, the `graph` half of every [`NodeRef`] into it.
    ///
    /// # Errors
    ///
    /// [`DagError::Sim`] if the engine refuses an injection (e.g. a node
    /// names a task type the scenario lacks); the coordinator is left
    /// consistent — the failing node and its subtree are *not* forfeited,
    /// the error is surfaced for the caller to decide.
    pub fn add_graph(&mut self, core: &mut SimCore<'_>, graph: TaskGraph) -> Result<u32, DagError> {
        let gid = self.graphs.len() as u32;
        let n = graph.len();
        let release = graph.arrival().max(core.now());
        let roots: Vec<NodeRef> =
            graph.roots().into_iter().map(|node| NodeRef { graph: gid, node }).collect();
        let unmet = (0..n as u32).map(|i| graph.preds(i).len() as u32).collect();
        self.graphs.push(GraphRun { graph, state: vec![NodeState::Held; n], unmet });
        self.stats.graphs += 1;
        self.stats.nodes += n as u64;
        self.release_batch(core, &roots, release)?;
        Ok(gid)
    }

    /// Drives the core through every event at or before `until`,
    /// processing resolutions and releasing newly-ready nodes as they
    /// appear. On return the tap is drained and every node whose
    /// predecessors delivered by `until` has been released (or
    /// forfeited), so this is the safe point to [`snapshot`].
    ///
    /// [`snapshot`]: DagCoordinator::snapshot
    ///
    /// # Errors
    ///
    /// [`DagError::Sim`] if a release fails to inject; see
    /// [`DagCoordinator::add_graph`].
    pub fn advance(
        &mut self,
        core: &mut SimCore<'_>,
        tap: &DagTap,
        until: Tick,
    ) -> Result<(), DagError> {
        loop {
            self.settle(core, tap)?;
            // A drained core refuses to consume events (machine-failure
            // timeline entries can outlive the last task), so stepping it
            // would spin forever. settle() runs first: releasing a ready
            // node un-drains the core before this check.
            if core.is_drained() {
                break;
            }
            match core.next_event_time() {
                Some(t) if t <= until => {
                    core.step();
                }
                _ => break,
            }
        }
        self.settle(core, tap)
    }

    /// [`DagCoordinator::advance`] with no horizon: runs until the core
    /// has no more events to process (all graph work resolved and the
    /// engine drained of graph tasks).
    ///
    /// # Errors
    ///
    /// [`DagError::Sim`] if a release fails to inject.
    pub fn run_to_drain(&mut self, core: &mut SimCore<'_>, tap: &DagTap) -> Result<(), DagError> {
        loop {
            self.settle(core, tap)?;
            if core.is_drained() || core.next_event_time().is_none() {
                break;
            }
            core.step();
        }
        self.settle(core, tap)
    }

    /// Serializes the coordinator together with the core's checkpoint.
    /// Call after [`DagCoordinator::advance`] returns (tap drained);
    /// restoring then resumes byte-identically.
    #[must_use]
    pub fn snapshot(&self, core: &SimCore<'_>) -> DagCheckpoint {
        DagCheckpoint { core: core.snapshot(), coordinator: self.clone() }
    }

    /// Drains the tap and processes every resolution (cascades included),
    /// then releases all nodes that became ready, at the current tick.
    fn settle(&mut self, core: &mut SimCore<'_>, tap: &DagTap) -> Result<(), DagError> {
        let mut ready = Vec::new();
        for (task, fate) in tap.drain() {
            self.on_resolved(core, task, fate, &mut ready);
        }
        self.release_batch(core, &ready, core.now())
    }

    /// Applies one engine resolution to every node riding the task:
    /// records the fate, and either unblocks successors (the task ran to
    /// completion, so its output exists — late output included) or
    /// cascade-forfeits all descendants (dropped / killed / lost: the
    /// output will never exist). Non-graph tasks are ignored.
    fn on_resolved(
        &mut self,
        core: &mut SimCore<'_>,
        task: TaskId,
        fate: TaskFate,
        ready: &mut Vec<NodeRef>,
    ) {
        let Some(pos) = self.in_flight.iter().position(|(t, _)| *t == task) else {
            return;
        };
        let (_, refs) = self.in_flight.remove(pos);
        let produced_output =
            matches!(fate, TaskFate::OnTime | TaskFate::OnTimeApprox | TaskFate::Late);
        for r in refs {
            let run = &mut self.graphs[r.graph as usize];
            debug_assert!(
                matches!(run.state[r.node as usize], NodeState::Injected(t) if t == task),
                "in-flight table out of sync with node state at {r:?}"
            );
            run.state[r.node as usize] = NodeState::Resolved(fate);
            match fate {
                TaskFate::OnTime => self.stats.on_time += 1,
                TaskFate::OnTimeApprox => self.stats.on_time_approx += 1,
                TaskFate::Late => self.stats.late += 1,
                TaskFate::DroppedReactive | TaskFate::DroppedProactive => self.stats.dropped += 1,
                TaskFate::LostToFailure => self.stats.lost += 1,
                // lint:allow(panic-macro): Forfeited is assigned by this coordinator, never by engine resolution; reaching here means the fate plumbing broke and must stop loudly
                TaskFate::Forfeited => unreachable!("the engine never assigns Forfeited"),
            }
            if produced_output {
                let run = &mut self.graphs[r.graph as usize];
                let GraphRun { graph, state, unmet } = run;
                for &s in graph.succs(r.node) {
                    if matches!(state[s as usize], NodeState::Held) {
                        unmet[s as usize] -= 1;
                        if unmet[s as usize] == 0 {
                            ready.push(NodeRef { graph: r.graph, node: s });
                        }
                    }
                }
            } else {
                self.forfeit_descendants(core, r, ForfeitKind::Cascade, Some(task));
            }
        }
    }

    /// Forfeits every still-held proper descendant of `node` (a node that
    /// is already injected or resolved is skipped — descendants can only
    /// be held while an ancestor is unresolved, but a diamond may have
    /// been forfeited through its other parent already).
    fn forfeit_descendants(
        &mut self,
        core: &mut SimCore<'_>,
        node: NodeRef,
        kind: ForfeitKind,
        cause: Option<TaskId>,
    ) {
        let descendants = self.graphs[node.graph as usize].graph.descendants(node.node);
        for d in descendants {
            self.forfeit_one(core, NodeRef { graph: node.graph, node: d }, kind, cause);
        }
    }

    /// Forfeits `node` itself and its whole subtree (pruning, admission
    /// shedding — decisions taken while the node is still held).
    fn forfeit_subtree(
        &mut self,
        core: &mut SimCore<'_>,
        node: NodeRef,
        kind: ForfeitKind,
        cause: Option<TaskId>,
    ) {
        self.forfeit_one(core, node, kind, cause);
        self.forfeit_descendants(core, node, kind, cause);
    }

    fn forfeit_one(
        &mut self,
        core: &mut SimCore<'_>,
        node: NodeRef,
        kind: ForfeitKind,
        cause: Option<TaskId>,
    ) {
        let run = &mut self.graphs[node.graph as usize];
        if !matches!(run.state[node.node as usize], NodeState::Held) {
            return;
        }
        run.state[node.node as usize] = NodeState::Resolved(TaskFate::Forfeited);
        match kind {
            ForfeitKind::Cascade => self.stats.forfeited_cascade += 1,
            ForfeitKind::Pruned => self.stats.forfeited_pruned += 1,
            ForfeitKind::AdmissionShed => self.stats.forfeited_shed += 1,
        }
        core.notify_observers(&SimEvent::CascadeForfeited {
            graph: node.graph as u64,
            node: node.node,
            cause,
            now: core.now(),
            kind,
        });
    }

    /// Releases a batch of ready nodes at tick `release`: prune, merge,
    /// admit, inject — in that order, in batch order.
    fn release_batch(
        &mut self,
        core: &mut SimCore<'_>,
        batch: &[NodeRef],
        release: Tick,
    ) -> Result<(), DagError> {
        if batch.is_empty() {
            return Ok(());
        }
        // Pruning prices every released node's subtree against one tail
        // capture (the paper's batch discipline: tails are a function of
        // the instant, not of the offer).
        let survivors: Vec<NodeRef> = match self.prune {
            PrunePolicy::Off => batch.to_vec(),
            PrunePolicy::PruneSubtree { threshold } => {
                let now = core.now();
                let mut tails = QueueTails::capture(core);
                let mut memo: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
                let mut survivors = Vec::with_capacity(batch.len());
                let mut pruned = Vec::new();
                for &r in batch {
                    let chances = memo.entry(r.graph).or_insert_with(|| {
                        subtree_chances(
                            &self.graphs[r.graph as usize].graph,
                            &mut tails,
                            &core.scenario().pet,
                            now,
                        )
                    });
                    if chances[r.node as usize] < threshold {
                        pruned.push(r);
                    } else {
                        survivors.push(r);
                    }
                }
                for r in pruned {
                    self.forfeit_subtree(core, r, ForfeitKind::Pruned, None);
                }
                survivors
            }
        };
        // Merge keys whose release tick has passed can never match again.
        self.merge_index.retain(|(key, _)| key.arrival >= release);
        for r in survivors {
            let spec = self.graphs[r.graph as usize].graph.node(r.node);
            let deadline = release + spec.slack;
            let key = MergeKey { arrival: release, type_id: spec.type_id, deadline };
            if self.merging {
                // An identical request already in flight? Ride it. (The
                // in-flight check matters: a same-tick twin could already
                // have been proactively dropped at its mapping round.)
                let rider = self
                    .merge_index
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|&(_, task)| task)
                    .and_then(|task| {
                        self.in_flight.iter_mut().find(|(t, _)| *t == task).map(|e| (task, e))
                    });
                if let Some((task, (_, refs))) = rider {
                    refs.push(r);
                    self.graphs[r.graph as usize].state[r.node as usize] =
                        NodeState::Injected(task);
                    self.stats.merged += 1;
                    continue;
                }
            }
            let offer = OfferedTask { type_id: spec.type_id, arrival: release, deadline };
            let injected = match &mut self.admission {
                Some(ctl) => ctl.admit_now(offer, core)?,
                None => Some(core.inject(spec.type_id, release, deadline)?),
            };
            match injected {
                Some(task) => {
                    self.graphs[r.graph as usize].state[r.node as usize] =
                        NodeState::Injected(task);
                    self.in_flight.push((task, vec![r]));
                    if self.merging {
                        self.merge_index.push((key, task));
                    }
                    self.stats.injected += 1;
                }
                None => self.forfeit_subtree(core, r, ForfeitKind::AdmissionShed, None),
            }
        }
        Ok(())
    }
}

/// A coordinator checkpoint: the core's [`Checkpoint`] plus the
/// coordinator's complete state. Everything needed to resume except the
/// deterministic context a core checkpoint only *names* (scenario and
/// policies) and the derived [`DagTap`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagCheckpoint {
    /// The engine's state.
    pub core: Checkpoint,
    /// The graph layer's state.
    pub coordinator: DagCoordinator,
}

impl DagCheckpoint {
    /// Rebuilds the core and coordinator; attach a fresh [`DagTap`]
    /// before stepping. Resuming is byte-identical to an uninterrupted
    /// run (asserted by this crate's property tests).
    ///
    /// # Errors
    ///
    /// Any [`SimError`](taskdrop_sim::SimError) from
    /// [`SimCore::restore`] (version or structural mismatch).
    pub fn restore<'a>(
        &self,
        scenario: &'a Scenario,
        mapper: &'a dyn MappingHeuristic,
        dropper: &'a dyn DropPolicy,
    ) -> Result<(SimCore<'a>, DagCoordinator), DagError> {
        let core = SimCore::restore(scenario, mapper, dropper, &self.core)?;
        Ok((core, self.coordinator.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use taskdrop_core::ReactiveOnly;
    use taskdrop_sched::Pam;
    use taskdrop_sim::{MetricsObserver, SimConfig};
    use taskdrop_workload::{BlueprintNode, GraphBlueprint};

    fn open_core(scenario: &Scenario) -> SimCore<'_> {
        let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        SimCore::open(scenario, &Pam, &ReactiveOnly, config, 7).unwrap()
    }

    fn graph(arrival: Tick, slacks: &[Tick], edges: &[(u32, u32)]) -> TaskGraph {
        TaskGraph::from_blueprint(&GraphBlueprint {
            arrival,
            nodes: slacks
                .iter()
                .map(|&slack| BlueprintNode { type_id: TaskTypeId(0), slack })
                .collect(),
            edges: edges.to_vec(),
        })
        .unwrap()
    }

    #[test]
    fn chain_runs_in_dependency_order_and_resolves_every_node() {
        let s = Scenario::specint(11);
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        let mut coord = DagCoordinator::new();
        coord.add_graph(&mut core, graph(0, &[2_000; 4], &[(0, 1), (1, 2), (2, 3)])).unwrap();
        assert_eq!(coord.held(), 3, "only the root is released up front");
        coord.run_to_drain(&mut core, &tap).unwrap();
        assert!(coord.all_resolved());
        assert!(coord.audit());
        let st = coord.stats();
        assert_eq!(st.injected, 4, "chain nodes are injected one by one");
        assert_eq!(st.on_time, 4, "an idle cluster with roomy slack completes everything");
        // Dependency order: each node was injected only after its
        // predecessor's completion tick.
        for node in 1..4u32 {
            let NodeState::Resolved(fate) = coord.node_state(NodeRef { graph: 0, node }).unwrap()
            else {
                panic!("unresolved node {node}");
            };
            assert_eq!(fate, TaskFate::OnTime);
        }
    }

    #[test]
    fn hopeless_node_cascades_to_all_descendants_conserved() {
        let s = Scenario::specint(11);
        // Declared before the core: the observer closure borrows it for
        // the core's lifetime.
        let events = std::cell::RefCell::new(Vec::new());
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        let mut coord = DagCoordinator::new();
        // Diamond whose left arm can never finish in time: 1 tick of
        // slack kills node 1 reactively, which must forfeit the sink —
        // but node 2's completion must NOT re-release it.
        core.attach(|ev: &SimEvent| {
            if let SimEvent::CascadeForfeited { node, kind, .. } = *ev {
                events.borrow_mut().push((node, kind));
            }
        });
        coord
            .add_graph(
                &mut core,
                graph(0, &[2_000, 1, 2_000, 2_000], &[(0, 1), (0, 2), (1, 3), (2, 3)]),
            )
            .unwrap();
        coord.run_to_drain(&mut core, &tap).unwrap();
        assert!(coord.all_resolved());
        assert!(coord.audit());
        let st = coord.stats();
        assert_eq!(st.dropped, 1, "the doomed arm is reactively dropped");
        assert_eq!(st.forfeited_cascade, 1, "the sink is forfeited exactly once");
        assert_eq!(st.injected, 3, "the sink was never injected");
        assert_eq!(
            coord.node_state(NodeRef { graph: 0, node: 3 }),
            Some(NodeState::Resolved(TaskFate::Forfeited))
        );
        assert_eq!(events.borrow().as_slice(), &[(3, ForfeitKind::Cascade)]);
    }

    #[test]
    fn merging_shares_one_execution_across_identical_roots() {
        let s = Scenario::specint(11);
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        let mut coord = DagCoordinator::new().with_merging();
        // Two identical chains arriving at the same tick: roots merge,
        // and because the merged root completes at one tick, the second
        // links merge too — 2 injections for 4 nodes.
        for _ in 0..2 {
            coord.add_graph(&mut core, graph(50, &[2_000; 2], &[(0, 1)])).unwrap();
        }
        coord.run_to_drain(&mut core, &tap).unwrap();
        assert!(coord.all_resolved() && coord.audit());
        let st = coord.stats();
        assert_eq!(st.nodes, 4);
        assert_eq!(st.injected, 2, "one execution per chain layer");
        assert_eq!(st.merged, 2, "the twin chain rides both layers");
        assert_eq!(st.on_time, 4, "every node still gets its own fate");
    }

    #[test]
    fn pruning_forfeits_doomed_subtrees_at_release() {
        let s = Scenario::specint(11);
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        // Chain with a hopeless sink (1 tick of slack): the subtree
        // chance of the *root* is already ~0, so the whole chain is shed
        // before a single injection.
        let mut coord = DagCoordinator::new().with_pruning(0.5);
        coord.add_graph(&mut core, graph(0, &[2_000, 2_000, 1], &[(0, 1), (1, 2)])).unwrap();
        coord.run_to_drain(&mut core, &tap).unwrap();
        assert!(coord.all_resolved() && coord.audit());
        let st = coord.stats();
        assert_eq!(st.injected, 0);
        assert_eq!(st.forfeited_pruned, 3, "root and both descendants shed together");
    }

    #[test]
    fn admission_shedding_forfeits_the_subtree_and_feeds_metrics() {
        use taskdrop_serve::BackpressurePolicy;
        use taskdrop_sim::SimObserver;
        let s = Scenario::specint(11);
        let metrics = std::cell::RefCell::new(MetricsObserver::new(
            &s,
            &SimConfig { exclude_boundary: 0, ..SimConfig::default() },
        ));
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        core.attach(|ev: &SimEvent| metrics.borrow_mut().on_event(ev));
        // The chain-aware gate refuses the hopeless root, forfeiting the
        // chain; the healthy chain passes.
        let ctl = AdmissionController::new(4, BackpressurePolicy::PreDrop { threshold: 0.25 });
        let mut coord = DagCoordinator::new().with_admission(ctl);
        coord.add_graph(&mut core, graph(0, &[1, 2_000], &[(0, 1)])).unwrap();
        coord.add_graph(&mut core, graph(0, &[2_000, 2_000], &[(0, 1)])).unwrap();
        coord.run_to_drain(&mut core, &tap).unwrap();
        assert!(coord.all_resolved() && coord.audit());
        let st = coord.stats();
        assert_eq!(st.forfeited_shed, 2, "hopeless root and its successor shed");
        assert_eq!(st.on_time, 2, "the healthy chain completes");
        assert_eq!(coord.admission().unwrap().stats().pre_dropped, 1);
        // The observer chain saw both forfeits and stays conserved.
        let result = metrics.borrow().result().unwrap();
        assert_eq!(result.forfeited, 2);
        assert!(result.is_conserved());
        assert_eq!(result.total_tasks, 2 + 2, "2 injected + 2 forfeited ride the totals");
    }

    #[test]
    fn checkpoint_restores_to_equal_coordinator() {
        let s = Scenario::specint(11);
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        let mut coord = DagCoordinator::new().with_merging();
        coord
            .add_graph(&mut core, graph(0, &[2_000; 4], &[(0, 1), (0, 2), (1, 3), (2, 3)]))
            .unwrap();
        coord.advance(&mut core, &tap, 40).unwrap();
        let cp = coord.snapshot(&core);
        let json = serde_json::to_string(&cp).unwrap();
        let back: DagCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(cp, back, "checkpoint roundtrips through serde");
        let (mut core2, mut coord2) = back.restore(&s, &Pam, &ReactiveOnly).unwrap();
        let tap2 = DagTap::new();
        tap2.attach(&mut core2);
        coord.run_to_drain(&mut core, &tap).unwrap();
        coord2.run_to_drain(&mut core2, &tap2).unwrap();
        assert_eq!(coord, coord2, "resumed run converges to the identical end state");
        assert_eq!(core.now(), core2.now());
    }

    #[test]
    fn record_telemetry_mirrors_stats_into_counters() {
        let s = Scenario::specint(11);
        let mut core = open_core(&s);
        let tap = DagTap::new();
        tap.attach(&mut core);
        let telemetry = Telemetry::new();
        telemetry.attach_counters(&mut core, "dag");
        let mut coord = DagCoordinator::new();
        // Diamond with a doomed left arm: exercises releases AND forfeits.
        coord
            .add_graph(
                &mut core,
                graph(0, &[2_000, 1, 2_000, 2_000], &[(0, 1), (0, 2), (1, 3), (2, 3)]),
            )
            .unwrap();
        coord.run_to_drain(&mut core, &tap).unwrap();
        coord.record_telemetry(&telemetry, "dag", core.now());
        let st = coord.stats();
        assert_eq!(telemetry.counter("dag_released_total", &[("scope", "dag")]), st.injected);
        assert_eq!(telemetry.counter("dag_merged_total", &[("scope", "dag")]), st.merged);
        // The forfeit counter is fed by the event stream itself, not the
        // record call — the two ledgers must agree.
        assert_eq!(
            telemetry.counter("dag_forfeited_total", &[("scope", "dag"), ("kind", "cascade")]),
            st.forfeited_cascade,
        );
        assert!(telemetry.jsonl().contains("\"record\":\"dag\""));
        // Monotone: re-recording identical cumulative state is a no-op.
        coord.record_telemetry(&telemetry, "dag", core.now());
        assert_eq!(telemetry.counter("dag_released_total", &[("scope", "dag")]), st.injected);
    }
}
