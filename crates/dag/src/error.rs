//! Typed errors of the graph layer.

use std::fmt;
use taskdrop_sim::SimError;

/// Why a blueprint was rejected or a coordinator operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The blueprint has no nodes.
    EmptyGraph,
    /// An edge endpoint is not a node index of the blueprint.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// Number of nodes in the blueprint.
        nodes: usize,
    },
    /// A node depends on itself.
    SelfLoop {
        /// The offending node.
        node: u32,
    },
    /// The same `(pred, succ)` edge appears twice.
    DuplicateEdge {
        /// Predecessor endpoint.
        pred: u32,
        /// Successor endpoint.
        succ: u32,
    },
    /// The dependency edges contain a cycle, so no execution order exists.
    Cycle,
    /// A node's slack is zero: it could never complete before its deadline.
    ZeroSlack {
        /// The offending node.
        node: u32,
    },
    /// The underlying engine refused an operation.
    Sim(SimError),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::EmptyGraph => write!(f, "task graph has no nodes"),
            DagError::NodeOutOfRange { node, nodes } => {
                write!(f, "edge endpoint n{node} out of range (graph has {nodes} nodes)")
            }
            DagError::SelfLoop { node } => write!(f, "node n{node} depends on itself"),
            DagError::DuplicateEdge { pred, succ } => {
                write!(f, "duplicate dependency edge n{pred} -> n{succ}")
            }
            DagError::Cycle => write!(f, "dependency edges contain a cycle"),
            DagError::ZeroSlack { node } => {
                write!(f, "node n{node} has zero slack: it can never finish on time")
            }
            DagError::Sim(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for DagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DagError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DagError {
    fn from(e: SimError) -> Self {
        DagError::Sim(e)
    }
}
