//! The coordinator's ear on the engine's event stream.
//!
//! [`SimCore`] observers are attached by value and owned by the core, so a
//! coordinator driving the core from outside cannot *be* an observer of
//! it (that would be a self-borrow). A [`DagTap`] splits the difference:
//! a cheaply cloneable handle around a shared queue — `Rc<RefCell<…>>`,
//! single-threaded like the core itself — whose clone rides inside the
//! core as a closure observer while the original stays with the
//! coordinator, which drains resolved `(task, fate)` pairs between steps.
//!
//! Taps are *derived* state: a checkpoint never contains one (observers
//! are not checkpointed), so restore attaches a fresh tap before
//! stepping. Nothing is lost as long as the previous tap was drained
//! before the snapshot — which [`DagCoordinator::advance`] guarantees by
//! draining before it returns.
//!
//! [`SimCore`]: taskdrop_sim::SimCore
//! [`DagCoordinator::advance`]: crate::DagCoordinator::advance

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use taskdrop_model::TaskId;
use taskdrop_sim::{SimCore, SimEvent, TaskFate};

/// A shared queue of terminal `(task, fate)` events; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct DagTap {
    inner: Rc<RefCell<VecDeque<(TaskId, TaskFate)>>>,
}

impl DagTap {
    /// An empty, unattached tap.
    #[must_use]
    pub fn new() -> Self {
        DagTap::default()
    }

    /// Attaches a clone of this tap to `core` as an observer: every
    /// subsequent terminal event is queued for [`DagTap::drain`]. Attach
    /// exactly one tap per core, before the first step after (re)creation.
    pub fn attach(&self, core: &mut SimCore<'_>) {
        let inner = Rc::clone(&self.inner);
        core.attach(move |ev: &SimEvent| {
            if let Some(resolved) = ev.resolved() {
                inner.borrow_mut().push_back(resolved);
            }
        });
    }

    /// Removes and returns all queued resolutions, in simulation order.
    #[must_use]
    pub fn drain(&self) -> Vec<(TaskId, TaskFate)> {
        self.inner.borrow_mut().drain(..).collect()
    }

    /// Resolutions queued and not yet drained.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_model::MachineId;
    use taskdrop_sim::SimObserver;

    #[test]
    fn tap_queues_only_terminal_events_and_drains_in_order() {
        let tap = DagTap::new();
        // Exercise the closure the same way the core would.
        let inner = Rc::clone(&tap.inner);
        let mut obs = move |ev: &SimEvent| {
            if let Some(resolved) = ev.resolved() {
                inner.borrow_mut().push_back(resolved);
            }
        };
        obs.on_event(&SimEvent::MappingRound { now: 5 });
        obs.on_event(&SimEvent::Killed { task: TaskId(3), machine: MachineId(0), now: 9 });
        obs.on_event(&SimEvent::Completed {
            task: TaskId(1),
            machine: MachineId(0),
            now: 11,
            on_time: true,
            degraded: false,
        });
        assert_eq!(tap.pending(), 2);
        assert_eq!(
            tap.drain(),
            vec![(TaskId(3), TaskFate::DroppedReactive), (TaskId(1), TaskFate::OnTime)]
        );
        assert_eq!(tap.pending(), 0);
    }
}
