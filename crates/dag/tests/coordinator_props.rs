//! Property tests of the coordinator's conservation and determinism
//! contracts, under randomly drawn layered DAGs, policies, failure
//! injection and feature toggles:
//!
//! * **No duplication, no loss**: after draining, every graph node has
//!   reached exactly one terminal state, the running [`DagStats`] match a
//!   recount from the state tables ([`DagCoordinator::audit`]), and the
//!   stream-reconstructed [`MetricsObserver`] accounting is conserved
//!   with forfeits included.
//! * **Progress**: every registered graph fully resolves — held nodes
//!   cannot outlive their ancestors' fates.
//! * **Checkpoint determinism**: interrupting at a random tick, JSON
//!   round-tripping the [`DagCheckpoint`], restoring and finishing is
//!   byte-identical to never having stopped (the graph-layer mirror of
//!   `tests/checkpoint_determinism.rs`).

use proptest::prelude::*;
use taskdrop_core::{DropPolicy, ProactiveDropper, ReactiveOnly};
use taskdrop_dag::{DagCheckpoint, DagCoordinator, DagTap, TaskGraph};
use taskdrop_sched::Pam;
use taskdrop_sim::{FailureSpec, MetricsObserver, SimConfig, SimCore, SimObserver};
use taskdrop_workload::{graphgen, Scenario};

/// Everything one random case needs to rebuild its world twice.
#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    graphs: usize,
    layers: usize,
    max_width: usize,
    edge_prob: f64,
    proactive: bool,
    failures: bool,
    merging: bool,
    prune: bool,
}

fn strategy() -> impl Strategy<Value = Case> {
    // Nested tuples: the vendored proptest implements tuple strategies
    // up to arity 5. The 4-bit draw covers the four independent toggles
    // (it also has no `any::<bool>()`).
    ((0u64..1_000, 1usize..4, 2usize..5), (1usize..4, 0.2f64..0.9, 0u8..16)).prop_map(
        |((seed, graphs, layers), (max_width, edge_prob, bits))| Case {
            seed,
            graphs,
            layers,
            max_width,
            edge_prob,
            proactive: bits & 1 != 0,
            failures: bits & 2 != 0,
            merging: bits & 4 != 0,
            prune: bits & 8 != 0,
        },
    )
}

fn config(case: &Case) -> SimConfig {
    SimConfig {
        exclude_boundary: 0,
        failures: case.failures.then_some(FailureSpec { mtbf: 700, mttr: 150 }),
        ..SimConfig::default()
    }
}

fn coordinator(case: &Case) -> DagCoordinator {
    let mut coord = DagCoordinator::new();
    if case.merging {
        coord = coord.with_merging();
    }
    if case.prune {
        coord = coord.with_pruning(0.25);
    }
    coord
}

fn graphs_of(case: &Case) -> Vec<TaskGraph> {
    (0..case.graphs)
        .map(|k| {
            // Slacks span hopeless to roomy, so drops, cascades and (with
            // pruning on) shed subtrees all occur naturally.
            let bp = graphgen::random_layered(
                case.seed ^ (k as u64).wrapping_mul(0x9E37_79B9),
                97 * k as u64,
                case.layers,
                case.max_width,
                case.edge_prob,
                12,
                (30, 400),
            );
            TaskGraph::from_blueprint(&bp).expect("generated blueprints validate")
        })
        .collect()
}

/// Runs a case to drain, asserting conservation along the way; returns
/// the final checkpoint JSON (the run's complete end state, canonical).
fn run_straight(case: &Case, interrupt_at: Option<u64>) -> String {
    let scenario = Scenario::specint(17);
    let metrics = std::cell::RefCell::new(MetricsObserver::new(&scenario, &config(case)));
    let dropper_h = ProactiveDropper::paper_default();
    let dropper: &dyn DropPolicy = if case.proactive { &dropper_h } else { &ReactiveOnly };
    let mut core = SimCore::open(&scenario, &Pam, dropper, config(case), case.seed ^ 0xDA6)
        .expect("valid core");
    let tap = DagTap::new();
    tap.attach(&mut core);
    core.attach(|ev: &taskdrop_sim::SimEvent| metrics.borrow_mut().on_event(ev));
    let mut coord = coordinator(case);
    for graph in graphs_of(case) {
        coord.add_graph(&mut core, graph).expect("graphs inject cleanly");
        assert!(coord.audit(), "stats drifted from state tables after add_graph");
    }

    let coord = if let Some(until) = interrupt_at {
        // Interrupt: advance to the tick, kill everything, resurrect from
        // the JSON checkpoint alone (fresh tap, fresh observers — the
        // metrics stream is not part of the determinism contract here,
        // only the end state is).
        coord.advance(&mut core, &tap, until).expect("advance");
        let json = serde_json::to_string(&coord.snapshot(&core)).expect("serialize");
        drop(core);
        let cp: DagCheckpoint = serde_json::from_str(&json).expect("parse");
        let (mut core2, mut coord2) =
            cp.restore(&scenario, &Pam, dropper).expect("restore checkpoint");
        let tap2 = DagTap::new();
        tap2.attach(&mut core2);
        coord2.run_to_drain(&mut core2, &tap2).expect("drain resumed");
        return serde_json::to_string(&coord2.snapshot(&core2)).expect("serialize end state");
    } else {
        coord.run_to_drain(&mut core, &tap).expect("drain straight");
        coord
    };

    // Progress: every node of every graph reached exactly one terminal
    // state, and the recount matches the running stats.
    assert!(coord.all_resolved(), "held nodes outlived their ancestors");
    assert!(coord.audit(), "stats drifted from state tables at drain");
    assert_eq!(coord.held(), 0);
    assert_eq!(coord.in_flight(), 0);
    let st = coord.stats();
    assert_eq!(st.injected + st.merged + st.forfeited(), st.nodes, "node accounting leak");

    // Stream-reconstructed accounting is conserved with forfeits, and
    // agrees with the coordinator's own forfeit tally.
    let result = metrics.borrow().result().expect("core drained");
    assert!(result.is_conserved(), "MetricsObserver lost a fate");
    assert_eq!(result.forfeited as u64, st.forfeited());
    assert_eq!(result.total_tasks as u64, st.injected + st.forfeited());

    serde_json::to_string(&coord.snapshot(&core)).expect("serialize end state")
}

proptest! {
    // Each case runs two full graph workloads (straight + interrupted);
    // graphs are small (≤ ~12 nodes each), so this stays in budget.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_dag_scripts_conserve_nodes_and_resume_byte_identically(
        case in strategy(),
        until in 0u64..2_000,
    ) {
        let straight = run_straight(&case, None);
        let resumed = run_straight(&case, Some(until));
        prop_assert_eq!(
            straight, resumed,
            "kill-and-restore at tick {} diverged from the uninterrupted run", until
        );
    }
}

/// A coordinator checkpoint is a value, not a consumable: restoring the
/// same mid-flight checkpoint twice yields two runs with identical end
/// states.
#[test]
fn a_dag_checkpoint_restores_any_number_of_times() {
    let case = Case {
        seed: 42,
        graphs: 2,
        layers: 3,
        max_width: 3,
        edge_prob: 0.6,
        proactive: true,
        failures: false,
        merging: true,
        prune: false,
    };
    let scenario = Scenario::specint(17);
    let dropper = ProactiveDropper::paper_default();
    let mut core =
        SimCore::open(&scenario, &Pam, &dropper, config(&case), 0xDA6).expect("valid core");
    let tap = DagTap::new();
    tap.attach(&mut core);
    let mut coord = coordinator(&case);
    for graph in graphs_of(&case) {
        coord.add_graph(&mut core, graph).unwrap();
    }
    coord.advance(&mut core, &tap, 120).unwrap();
    let cp = coord.snapshot(&core);

    let mut ends = Vec::new();
    for _ in 0..2 {
        let (mut c, mut k) = cp.restore(&scenario, &Pam, &dropper).unwrap();
        let t = DagTap::new();
        t.attach(&mut c);
        k.run_to_drain(&mut c, &t).unwrap();
        ends.push(serde_json::to_string(&k.snapshot(&c)).unwrap());
    }
    assert_eq!(ends[0], ends[1]);
}
