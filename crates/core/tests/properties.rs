//! Property-based tests for the dropping policies.
//!
//! The central invariants:
//!
//! 1. **Optimal is optimal**: the exhaustive DFS (with and without pruning)
//!    achieves exactly the oracle-best instantaneous robustness over all
//!    legal drop subsets.
//! 2. **Optimal ≥ Heuristic ≥ no-drop**: the paper's ordering of decision
//!    quality holds pointwise on every queue (heuristic drops are confirmed
//!    only when they improve the η-window, and with β = 1, η = full queue
//!    depth the heuristic's chain updates never decrease robustness...
//!    the *global* heuristic-vs-nodrop claim is only guaranteed for η
//!    covering the whole influence zone, so we assert it for that case).
//! 3. Drop indices are always strictly increasing, within bounds, and never
//!    include the last pending task for the Eq-8 policies.

use proptest::prelude::*;
use taskdrop_core::{DropPolicy, OptimalDropper, ProactiveDropper, ReactiveOnly, ThresholdDropper};
use taskdrop_model::queue::{chain_with_drops, instantaneous_robustness};
use taskdrop_model::view::{DropContext, PendingView, QueueView};
use taskdrop_model::{MachineId, MachineTypeId, PetMatrix, TaskId, TaskTypeId};
use taskdrop_pmf::{Compaction, Pmf};

/// A small PET with stochastic cells so chances are non-trivial.
fn pet() -> PetMatrix {
    PetMatrix::new(
        4,
        1,
        vec![
            Pmf::point(10),
            Pmf::point(60),
            Pmf::from_impulses(vec![(15, 0.5), (45, 0.5)]).unwrap(),
            Pmf::from_impulses(vec![(5, 0.25), (25, 0.5), (100, 0.25)]).unwrap(),
        ],
    )
}

fn queue_strategy() -> impl Strategy<Value = Vec<(u16, u64)>> {
    // (task type, deadline) pairs; queue length 0..=6 like the simulator.
    prop::collection::vec((0u16..4, 10u64..300), 0..=6)
}

fn build_queue<'a>(pet: &'a PetMatrix, spec: &[(u16, u64)]) -> QueueView<'a> {
    QueueView {
        machine: MachineId(0),
        machine_type: MachineTypeId(0),
        now: 0,
        running: None,
        pending: spec
            .iter()
            .enumerate()
            .map(|(i, &(tt, d))| PendingView {
                id: TaskId(i as u64),
                type_id: TaskTypeId(tt),
                deadline: d,
                degraded: false,
            })
            .collect(),
        pet,
        approx_pet: None,
    }
}

fn ctx() -> DropContext {
    DropContext::plain(Compaction::None)
}

fn robustness_with(queue: &QueueView<'_>, drops: &[usize]) -> f64 {
    let tasks = queue.chain_tasks();
    let mut mask = vec![false; tasks.len()];
    for &d in drops {
        mask[d] = true;
    }
    let links = chain_with_drops(&queue.base(), &tasks, &mask, Compaction::None);
    instantaneous_robustness(&links)
}

fn oracle_best(queue: &QueueView<'_>) -> f64 {
    let tasks = queue.chain_tasks();
    let n = tasks.len();
    let base = queue.base();
    let mut best = f64::NEG_INFINITY;
    for mask_bits in 0u32..(1u32 << n) {
        if n > 0 && mask_bits & (1 << (n - 1)) != 0 {
            continue; // last task not droppable
        }
        let mask: Vec<bool> = (0..n).map(|i| mask_bits & (1 << i) != 0).collect();
        let links = chain_with_drops(&base, &tasks, &mask, Compaction::None);
        best = best.max(instantaneous_robustness(&links));
    }
    if n == 0 {
        0.0
    } else {
        best
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimal_matches_oracle(spec in queue_strategy()) {
        let pet = pet();
        let q = build_queue(&pet, &spec);
        let d = OptimalDropper::new().select_drops_fresh(&q, &ctx());
        let achieved = robustness_with(&q, &d.drops);
        let best = oracle_best(&q);
        prop_assert!((achieved - best).abs() < 1e-9, "optimal {achieved} vs oracle {best}");
    }

    #[test]
    fn pruning_is_exact(spec in queue_strategy()) {
        let pet = pet();
        let q = build_queue(&pet, &spec);
        let with = OptimalDropper::new().select_drops_fresh(&q, &ctx());
        let without = OptimalDropper::without_pruning().select_drops_fresh(&q, &ctx());
        prop_assert_eq!(with, without);
    }

    #[test]
    fn optimal_at_least_heuristic_at_least_nodrop(spec in queue_strategy()) {
        let pet = pet();
        let q = build_queue(&pet, &spec);
        let r_opt = robustness_with(&q, &OptimalDropper::new().select_drops_fresh(&q, &ctx()).drops);
        let r_heu = robustness_with(
            &q,
            &ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx()).drops,
        );
        let r_none = robustness_with(&q, &[]);
        prop_assert!(r_opt + 1e-9 >= r_heu, "optimal {r_opt} < heuristic {r_heu}");
        // With beta=1 every confirmed drop strictly improves its eta-window;
        // eta=2 windows can in principle trade far-field chance, so compare
        // the *full-depth* heuristic against no-drop for the guarantee.
        let full = ProactiveDropper::new(1.0, 6);
        let r_full = robustness_with(&q, &full.select_drops_fresh(&q, &ctx()).drops);
        prop_assert!(r_full + 1e-9 >= r_none, "full-depth heuristic {r_full} < no-drop {r_none}");
    }

    #[test]
    fn drop_indices_well_formed(spec in queue_strategy()) {
        let pet = pet();
        let q = build_queue(&pet, &spec);
        let n = q.pending.len();
        let policies: Vec<Box<dyn DropPolicy>> = vec![
            Box::new(ReactiveOnly),
            Box::new(ProactiveDropper::paper_default()),
            Box::new(OptimalDropper::new()),
            Box::new(ThresholdDropper::paper_default()),
        ];
        for p in &policies {
            let d = p.select_drops_fresh(&q, &ctx());
            for w in d.drops.windows(2) {
                prop_assert!(w[0] < w[1], "{} indices not increasing", p.name());
            }
            for &i in &d.drops {
                prop_assert!(i < n, "{} index {i} out of bounds {n}", p.name());
            }
            if (p.name() == "Heuristic" || p.name() == "Optimal") && n > 0 {
                prop_assert!(!d.drops.contains(&(n - 1)), "{} dropped last", p.name());
            }
        }
    }

    #[test]
    fn policies_deterministic(spec in queue_strategy()) {
        let pet = pet();
        let q = build_queue(&pet, &spec);
        let h = ProactiveDropper::paper_default();
        prop_assert_eq!(h.select_drops_fresh(&q, &ctx()), h.select_drops_fresh(&q, &ctx()));
        let o = OptimalDropper::new();
        prop_assert_eq!(o.select_drops_fresh(&q, &ctx()), o.select_drops_fresh(&q, &ctx()));
    }
}
