//! The proactive task dropping **heuristic** (Section IV-E, Figure 4).
//!
//! A single head-to-tail pass over each machine queue. For each droppable
//! pending task *i* (not the running task; not the last pending task, whose
//! influence zone is empty) the heuristic compares two futures over the
//! *effective depth* η:
//!
//! * **keep**: chances of success `p_n` for `n ∈ {i, …, i+η}` with task *i*
//!   in place;
//! * **drop**: chances `p⁽ⁱ⁾_n` for `n ∈ {i+1, …, i+η}` with task *i*
//!   provisionally removed (Equations 4–6).
//!
//! Task *i* is dropped iff the drop-future strictly beats β times the
//! keep-future (Equation 8):
//!
//! ```text
//!   Σ_{n=i+1}^{i+η} p⁽ⁱ⁾_n  >  β · Σ_{n=i}^{i+η} p_n
//! ```
//!
//! β ≥ 1 is the *robustness improvement factor*: β → 1 drops on any
//! improvement, β → ∞ disables proactive dropping (Figure 6 of the paper
//! finds β = 1 best). One literal consequence of Eq 8: when the keep-future
//! has *zero* total chance, any positive gain exceeds `β · 0`, so a
//! chance-less blocker is dropped at every β — only windows with some
//! retained chance become conservative as β grows. η limits how far into
//! the influence zone gains may be
//! collected, preventing "misleading gains" amortised over many far-away
//! tasks (Figure 5 finds η = 2 best, η = 1 short-sighted).
//!
//! Confirmed drops take effect immediately within the pass: the chain
//! predecessor PMF simply skips dropped tasks, so later decisions see the
//! improved queue — `O(η·q)` convolutions per queue (Section IV-F).
//!
//! Implementation: two fused [`ChainEvaluator`]s (DESIGN.md §12). The
//! *baseline* evaluator extends the no-further-drops chain lazily, only as
//! far as the current keep-window needs — so a confirmed drop invalidates
//! and re-chains at most the next window instead of the whole `O(q)`
//! suffix (prefix reuse: candidate *i+1* starts from the surviving prefix
//! already evaluated for candidate *i*). The *probe* evaluator prices the
//! η-deep drop-window of Eq 8. Decisions are bit-identical to the naive
//! formulation; only allocation and re-chaining are removed.

use crate::{DropDecision, DropPolicy};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::view::{DropContext, QueueView};

/// The autonomous proactive dropping heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProactiveDropper {
    beta: f64,
    eta: usize,
}

impl ProactiveDropper {
    /// Creates the heuristic with robustness improvement factor `beta` and
    /// effective depth `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1` (Eq 8 requires β ≥ 1) or `eta == 0` (a zero
    /// depth can never observe a gain, so every comparison degenerates).
    #[must_use]
    pub fn new(beta: f64, eta: usize) -> Self {
        assert!(beta.is_finite() && beta >= 1.0, "beta must be >= 1");
        assert!(eta >= 1, "effective depth must be >= 1");
        ProactiveDropper { beta, eta }
    }

    /// The configuration the paper converges on: β = 1, η = 2.
    #[must_use]
    pub fn paper_default() -> Self {
        ProactiveDropper::new(1.0, 2)
    }

    /// The robustness improvement factor β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The effective depth η.
    #[must_use]
    pub fn eta(&self) -> usize {
        self.eta
    }
}

impl Default for ProactiveDropper {
    fn default() -> Self {
        ProactiveDropper::paper_default()
    }
}

impl DropPolicy for ProactiveDropper {
    fn name(&self) -> &'static str {
        "Heuristic"
    }

    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision {
        let tasks = queue.chain_tasks();
        let n = tasks.len();
        if n < 2 {
            // A single pending task is the last task: influence zone empty.
            return DropDecision::none();
        }
        let base = queue.base();
        let mut drops = Vec::new();
        // Baseline chain (no further drops): the keep-future of position i
        // reads straight from it, so each position costs η extra
        // convolutions (the drop-branch) instead of 2η+2 — the O(η·q)
        // bound of Section IV-F. `LazyChain` extends it only as far as the
        // current keep-window needs, so a confirmed drop re-chains at most
        // one window instead of the whole suffix. Both evaluators come from
        // the persistent context: the buffers are warm from previous calls,
        // the arithmetic is untouched.
        let PolicyCtx { baseline, probe, .. } = scratch;
        baseline.reset(&base);
        // Completion PMF of the latest surviving predecessor.
        let mut prev = base;
        for i in 0..n - 1 {
            let window_end = (i + 1 + self.eta).min(n);
            baseline.ensure(&tasks, window_end, ctx.compaction);
            // Keep-future: chances of i and up to η successors, from the
            // baseline chain.
            let keep: f64 = baseline.links()[i..window_end].iter().map(|l| l.chance).sum();
            // Drop-future: chances of up to η successors with i removed.
            let drop = probe.chance_sum(&prev, &tasks[i + 1..], self.eta, ctx.compaction);
            if drop > self.beta * keep + f64::EPSILON {
                drops.push(i);
                // prev unchanged: the chain now skips task i; positions
                // past it re-chain from prev on demand (links[i] now dead,
                // never read again).
                baseline.rewind(&prev, i + 1);
            } else {
                prev = baseline.links()[i].completion.clone();
            }
        }
        DropDecision::drops(drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_queue, idle_queue, pending, pet};
    use taskdrop_pmf::Compaction;

    fn ctx() -> DropContext {
        DropContext::plain(Compaction::None)
    }

    #[test]
    fn empty_queue_no_drops() {
        let pet = pet();
        let q = idle_queue(&pet, 0, vec![]);
        assert!(ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx()).is_empty());
    }

    #[test]
    fn single_task_never_dropped() {
        let pet = pet();
        // Hopeless deadline, but it is the last task: influence zone empty.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 5)]);
        assert!(ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx()).is_empty());
    }

    #[test]
    fn drops_doomed_blocker() {
        let pet = pet();
        // Task 1 (type 1, exec 50) has deadline 20: chance 0. Behind it,
        // task 2 (type 0, exec 10) with deadline 30: blocked it completes at
        // 60 (chance 0); alone it completes at 10 (chance 1). Dropping the
        // blocker gains 1.0 > beta * 0.0.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 30)]);
        let d = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx());
        assert_eq!(d.drops, vec![0]);
    }

    #[test]
    fn keeps_viable_blocker() {
        let pet = pet();
        // Task 1 (exec 50, deadline 60): chance 1. Task 2 (exec 10,
        // deadline 70): completes at 60 < 70, chance 1. Nothing to gain.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 60), pending(2, 0, 70)]);
        assert!(ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx()).is_empty());
    }

    #[test]
    fn beta_infinite_disables_dropping() {
        let pet = pet();
        // Blocker of type 2 ({20: .5, 80: .5}) with deadline 45: chance 0.5.
        // Follower (exec 10) with deadline 35: blocked chance = P(done<35)
        // = P(exec branch 20) * P(10 after) = 30 < 35 -> 0.5; alone chance 1.
        // Gain 0.5 vs loss 0.5: beta=1 is indifferent (strict >), huge beta
        // certainly keeps it.
        let q = idle_queue(&pet, 0, vec![pending(1, 2, 45), pending(2, 0, 35)]);
        let conservative = ProactiveDropper::new(1e12, 2);
        assert!(conservative.select_drops_fresh(&q, &ctx()).is_empty());
        // With beta = 1 and a slightly *bigger* gain (tighten the follower
        // deadline to 31 so the blocked chance drops to 0.5 while... keep
        // the construction simple: widen gain by making the blocker's own
        // chance smaller via deadline 25 -> blocker chance 0.5 (20 < 25),
        // hmm same. Direct check: beta=1 drops when gain exceeds loss.)
        let q2 = idle_queue(&pet, 0, vec![pending(1, 2, 85), pending(2, 0, 35)]);
        // Blocker chance: 20<85 and 80<85 -> 1.0; follower blocked: done at
        // 30 (.5) or 90 (.5) -> 0.5; alone -> 1.0. Gain 0.5 < loss 1.0+0.5:
        // no drop at any beta >= 1. Sanity only.
        assert!(ProactiveDropper::new(1.0, 2).select_drops_fresh(&q2, &ctx()).is_empty());
    }

    #[test]
    fn zero_keep_chance_blocker_dropped_at_any_beta() {
        let pet = pet();
        // Literal Eq 8: keep-future chance 0 means any gain wins at any beta.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 30)]);
        let conservative = ProactiveDropper::new(1e12, 2);
        assert_eq!(conservative.select_drops_fresh(&q, &ctx()).drops, vec![0]);
    }

    #[test]
    fn does_not_drop_for_zero_sum_gain() {
        let pet = pet();
        // Both tasks hopeless: dropping the first gains nothing (0 > 0 is
        // false), so Eq 8 keeps it; the engine's reactive dropping will
        // handle them as their deadlines pass.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 10), pending(2, 1, 10)]);
        assert!(ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx()).is_empty());
    }

    #[test]
    fn eta_one_misses_far_gain() {
        let pet = pet();
        // Queue: A (type 1, exec 50, deadline 55, chance 1 alone),
        //        B (type 0, exec 10, deadline 70): behind A completes at 60,
        //          chance 1? 60 < 70 yes. Make B's deadline 58: 60 >= 58 ->
        //          chance 0; dropped-A chance: completes at 10 < 58 -> 1.
        //        C (type 0, exec 10, deadline 75): behind A+B completes at 70
        //          (or 60 if B reactively dropped...) — construct so that the
        //          gain for dropping A shows only at depth 2.
        // A: chance 1 (50 < 55). Dropping A loses 1.0.
        // eta=1 sees only B: gain = p(B|drop A) - p(B|keep A) = 1 - 0 = 1.
        //   Eq 8: 1 > 1*(p_A + p_B) = 1*(1+0) = 1 -> false, keep A.
        // eta=2 adds C: keep-chain: A done 50, B ran (started 50<58) done 60,
        //   C starts 60, done 70 < 75 -> p_C = 1. keep sum = 1+0+1 = 2.
        //   drop-chain: B done 10, C done 20 -> both 1. drop sum = 2.
        //   2 > 2 false -> keep A. Good: both depths keep A here.
        // Now tighten A's deadline to 45 so p_A = 0 (50 >= 45 means A cannot
        // even start? A starts at 0 < 45, completes 50 >= 45: ran but late:
        // p_A = 0, and it still blocks).
        //   eta=1: drop-sum = p(B) = 1; keep-sum = p_A + p_B = 0 + 0 = 0.
        //     1 > 0 -> drop A. Hmm, also drops. Distinguish eta=1 miss: need
        //     p_B unaffected but p_C affected.
        // Make B tiny with a very loose deadline (succeeds either way), C
        // tight (only succeeds if A dropped):
        //   A: type 1 (exec 50), deadline 45 -> p_A = 0 (runs, finishes late).
        //   B: type 0 (exec 10), deadline 1000 -> p_B = 1 either way.
        //   C: type 0 (exec 10), deadline 25: keep-A -> starts 60, late (0);
        //      drop-A -> B done 10, C done 20 < 25 (1).
        // eta=1: drop-sum = p(B|dropA) = 1; keep-sum = p_A + p_B = 0 + 1 = 1.
        //   1 > 1 false -> A kept (misses C's gain).
        // eta=2: drop-sum = 1 + 1 = 2; keep-sum = 0 + 1 + 0 = 1. 2 > 1 -> drop A.
        let mk = |pet| {
            idle_queue(pet, 0, vec![pending(1, 1, 45), pending(2, 0, 1000), pending(3, 0, 25)])
        };
        let q = mk(&pet);
        let shallow = ProactiveDropper::new(1.0, 1);
        assert!(shallow.select_drops_fresh(&q, &ctx()).is_empty(), "eta=1 misses the depth-2 gain");
        let deep = ProactiveDropper::new(1.0, 2);
        assert_eq!(deep.select_drops_fresh(&q, &ctx()).drops, vec![0], "eta=2 sees it");
    }

    #[test]
    fn last_task_never_dropped() {
        let pet = pet();
        // Three tasks; make the last hopeless. It must survive (its
        // influence zone is empty).
        let q =
            idle_queue(&pet, 0, vec![pending(1, 0, 1000), pending(2, 0, 1000), pending(3, 1, 5)]);
        let d = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx());
        assert!(!d.drops.contains(&2));
    }

    #[test]
    fn confirmed_drop_updates_chain_for_later_decisions() {
        let pet = pet();
        // A doomed huge task followed by two viable ones; after dropping the
        // blocker the survivors are fine and must not be dropped.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 40), pending(3, 0, 40)]);
        let d = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx());
        assert_eq!(d.drops, vec![0]);
    }

    #[test]
    fn works_behind_running_task() {
        let pet = pet();
        // Machine busy until 100. Pending: X (type 0, deadline 50: doomed,
        // cannot start before 50), Y (type 0, deadline 115: behind X the
        // reactive pass-through means X's slot costs nothing... X passes
        // through (never starts), so Y completes at 110 < 115 either way;
        // no gain, no drop.)
        let q = busy_queue(&pet, 0, 100, 1000, vec![pending(1, 0, 50), pending(2, 0, 115)]);
        let d = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx());
        assert!(d.is_empty(), "pass-through already neutralises the doomed task");
        // But with a *stochastic* runner the doomed task can hurt: runner
        // finishes at 40 w.p. 0.5 (X starts, occupying until 50) or at 100.
        // Y deadline 115: keep -> Y completion = 60 w.p. .5 / 110 w.p. .5,
        // all < 115: chance 1 anyway. Tighten Y deadline to 105:
        //   keep: 60 (ok) / 110 (late) -> 0.5. drop X: 50/110 -> 0.5. equal.
        // Tighten to 111: keep: 60 ok, 110 ok -> 1.0; equal again. The case
        // that matters: X *starts* at 40 and runs 10 -> occupies 40..50, Y
        // starts at 50 vs 40. Y deadline 51 (exec 10): keep -> done 60 w.p.
        // .5 (late) or pass-through... runner at 100 >= X deadline 50: X
        // passes; Y starts at 100: late. chance = 0. drop X: Y starts 40,
        // done 50 < 51 w.p. 0.5 -> chance 0.5 > 0. Drop!
        use taskdrop_model::view::RunningView;
        use taskdrop_model::{TaskId, TaskTypeId};
        use taskdrop_pmf::Pmf;
        let q = taskdrop_model::view::QueueView {
            running: Some(RunningView {
                id: TaskId(9),
                type_id: TaskTypeId(0),
                deadline: 1000,
                completion: Pmf::from_impulses(vec![(40, 0.5), (100, 0.5)]).unwrap(),
            }),
            ..q
        };
        let q = taskdrop_model::view::QueueView {
            pending: vec![pending(1, 0, 50), pending(2, 0, 51)],
            ..q
        };
        let d = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx());
        assert_eq!(d.drops, vec![0]);
    }

    #[test]
    #[should_panic(expected = "beta must be >= 1")]
    fn rejects_beta_below_one() {
        let _ = ProactiveDropper::new(0.5, 2);
    }

    #[test]
    #[should_panic(expected = "effective depth")]
    fn rejects_zero_eta() {
        let _ = ProactiveDropper::new(1.0, 0);
    }
}
