//! The prior-work baseline: probabilistic **threshold** dropping
//! ("PAM+Threshold" in the paper's Figures 8 and 9), reconstructing the
//! pruning mechanism of Gentry et al. [2] / Denninnart et al. [17].
//!
//! A pending task is dropped when its chance of success falls below a
//! threshold. The threshold is *user-provided* — exactly the drawback the
//! paper's autonomous mechanism removes — and, following the paper's
//! description of [2] ("the predetermined threshold is adjusted at each
//! mapping event"), it is mildly adapted to the observed oversubscription:
//!
//! ```text
//!   effective = clamp(base · (1 + adapt_rate · pressure), 0, max)
//! ```
//!
//! where `pressure` is the ratio of unmapped batch-queue tasks to total
//! machine-queue capacity (0 when the system keeps up). A more oversubscribed
//! system prunes more aggressively. The exact adaptive rule of [2] is not
//! restated in the reproduced paper; this reconstruction preserves its
//! interface (a base threshold the operator must pick) and its qualitative
//! behaviour (see DESIGN.md, substitutions table).
//!
//! Like the heuristic, the pass is head-to-tail with confirmed drops taking
//! effect immediately; chances are computed with the paper's Eq (1) chain.
//! The last pending task *is* droppable here — threshold pruning judges each
//! task on its own chance, not on its influence zone.

use crate::{DropDecision, DropPolicy};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::queue::ChainTask;
use taskdrop_model::view::{DropContext, QueueView};

/// Threshold-based probabilistic dropping (the PAM+Threshold baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDropper {
    base: f64,
    adapt_rate: f64,
    max: f64,
}

impl ThresholdDropper {
    /// Creates a threshold dropper with the given base threshold in `[0, 1]`
    /// and the default adaptation (rate 0.25, cap 0.8).
    ///
    /// # Panics
    ///
    /// Panics if `base` is outside `[0, 1]`.
    #[must_use]
    pub fn new(base: f64) -> Self {
        Self::with_adaptation(base, 0.25, 0.8)
    }

    /// Full-control constructor.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `max` is outside `[0, 1]`, or `adapt_rate < 0`.
    #[must_use]
    pub fn with_adaptation(base: f64, adapt_rate: f64, max: f64) -> Self {
        assert!((0.0..=1.0).contains(&base), "base threshold must be in [0, 1]");
        assert!((0.0..=1.0).contains(&max), "max threshold must be in [0, 1]");
        assert!(adapt_rate >= 0.0, "adapt rate must be >= 0");
        ThresholdDropper { base, adapt_rate, max }
    }

    /// The threshold the paper's comparison uses (25 %).
    #[must_use]
    pub fn paper_default() -> Self {
        ThresholdDropper::new(0.25)
    }

    /// The effective threshold at the given oversubscription pressure.
    #[must_use]
    pub fn effective_threshold(&self, pressure: f64) -> f64 {
        (self.base * (1.0 + self.adapt_rate * pressure.max(0.0))).clamp(0.0, self.max)
    }
}

impl Default for ThresholdDropper {
    fn default() -> Self {
        ThresholdDropper::paper_default()
    }
}

impl DropPolicy for ThresholdDropper {
    fn name(&self) -> &'static str {
        "Threshold"
    }

    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision {
        let tasks: Vec<ChainTask<'_>> = queue.chain_tasks();
        let threshold = self.effective_threshold(ctx.pressure);
        let mut drops = Vec::new();
        let eval = &mut scratch.eval;
        let mut prev = queue.base();
        for (i, &t) in tasks.iter().enumerate() {
            let (chance, completion) = eval.step_from(&prev, t, ctx.compaction);
            if chance < threshold {
                drops.push(i);
                // prev unchanged: the chain skips the dropped task.
            } else {
                prev = completion;
            }
        }
        DropDecision::drops(drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{idle_queue, pending, pet};
    use taskdrop_pmf::Compaction;

    fn ctx(pressure: f64) -> DropContext {
        DropContext { compaction: Compaction::None, pressure, approx: None }
    }

    #[test]
    fn drops_below_threshold_only() {
        let pet = pet();
        // Task 1: type 2 ({20: .5, 80: .5}), deadline 50 -> chance 0.5.
        // Task 2 (behind 1): type 0 (exec 10), deadline 95:
        //   completion = 30 w.p. .5 / 90 w.p. .5 -> chance 1.0.
        let q = idle_queue(&pet, 0, vec![pending(1, 2, 50), pending(2, 0, 95)]);
        let lenient = ThresholdDropper::with_adaptation(0.3, 0.0, 0.8);
        assert!(lenient.select_drops_fresh(&q, &ctx(0.0)).is_empty());
        let strict = ThresholdDropper::with_adaptation(0.6, 0.0, 0.8);
        assert_eq!(strict.select_drops_fresh(&q, &ctx(0.0)).drops, vec![0]);
    }

    #[test]
    fn zero_threshold_never_drops() {
        let pet = pet();
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 30)]);
        let off = ThresholdDropper::with_adaptation(0.0, 0.0, 0.8);
        assert!(off.select_drops_fresh(&q, &ctx(5.0)).is_empty());
    }

    #[test]
    fn may_drop_last_task() {
        let pet = pet();
        // Unlike Eq-8 droppers, threshold pruning discards a hopeless tail.
        let q = idle_queue(&pet, 0, vec![pending(1, 0, 1000), pending(2, 1, 5)]);
        let d = ThresholdDropper::paper_default().select_drops_fresh(&q, &ctx(0.0));
        assert_eq!(d.drops, vec![1]);
    }

    #[test]
    fn dropping_improves_follower_chance_within_pass() {
        let pet = pet();
        // Doomed 50-tick blocker (chance 0 < 0.25) then a task that is only
        // viable once the blocker is gone.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 15)]);
        let d = ThresholdDropper::paper_default().select_drops_fresh(&q, &ctx(0.0));
        // Blocker dropped; follower then completes at 10 < 15 (chance 1).
        assert_eq!(d.drops, vec![0]);
    }

    #[test]
    fn threshold_adapts_to_pressure() {
        let t = ThresholdDropper::with_adaptation(0.2, 0.5, 0.8);
        assert!((t.effective_threshold(0.0) - 0.2).abs() < 1e-12);
        assert!((t.effective_threshold(2.0) - 0.4).abs() < 1e-12);
        // Caps at max.
        assert!((t.effective_threshold(100.0) - 0.8).abs() < 1e-12);
        // Negative pressure treated as zero.
        assert!((t.effective_threshold(-3.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pressure_changes_decisions() {
        let pet = pet();
        // Chance 0.5 task: kept at base 0.4, dropped once pressure raises
        // the effective threshold above 0.5.
        let q = idle_queue(&pet, 0, vec![pending(1, 2, 50), pending(2, 0, 1000)]);
        let t = ThresholdDropper::with_adaptation(0.4, 0.5, 0.9);
        assert!(t.select_drops_fresh(&q, &ctx(0.0)).is_empty());
        assert_eq!(t.select_drops_fresh(&q, &ctx(1.0)).drops, vec![0]);
    }

    #[test]
    #[should_panic(expected = "base threshold")]
    fn rejects_out_of_range_base() {
        let _ = ThresholdDropper::new(1.5);
    }
}
