//! The no-proactive-dropping baseline ("+ReactDrop" in the paper's figures).
//!
//! Reactive dropping — discarding tasks whose deadlines have already passed —
//! is performed by the simulation engine itself at every mapping event (step
//! 2 of the paper's Figure 4 algorithm) regardless of policy, so this policy
//! simply never volunteers additional drops.

use crate::{DropDecision, DropPolicy};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::view::{DropContext, QueueView};

/// Dropping policy that performs no proactive drops.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactiveOnly;

impl DropPolicy for ReactiveOnly {
    fn name(&self) -> &'static str {
        "ReactDrop"
    }

    fn select_drops(
        &self,
        _queue: &QueueView<'_>,
        _ctx: &DropContext,
        _scratch: &mut PolicyCtx,
    ) -> DropDecision {
        DropDecision::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{idle_queue, pending, pet};
    use taskdrop_pmf::Compaction;

    #[test]
    fn never_drops() {
        let pet = pet();
        // Even a hopeless queue yields no proactive drops.
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 12), pending(2, 0, 15)]);
        let ctx = DropContext { compaction: Compaction::None, pressure: 10.0, approx: None };
        assert!(ReactiveOnly.select_drops_fresh(&q, &ctx).is_empty());
    }
}
