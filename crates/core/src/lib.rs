//! The paper's primary contribution: **autonomous proactive task dropping**.
//!
//! Dropping a task is a double-edged sword (Section IV-A): the dropped task's
//! own chance of success is forfeited, but every task in its *influence zone*
//! (the tasks queued behind it) starts earlier and gains chance. A dropping
//! policy decides, at every mapping event and for every machine queue, which
//! pending tasks to discard so that the queue's *instantaneous robustness* —
//! the sum of the chances of success of its tasks (Eq 3) — is maximised.
//!
//! Three policies are provided, plus the no-op baseline:
//!
//! * [`ProactiveDropper`] — the paper's heuristic (Section IV-E): one pass
//!   per queue, dropping task *i* iff the chance gained within the
//!   *effective depth* η behind it outweighs β times the chance kept
//!   (Equation 8). Autonomous: no user-tuned threshold.
//! * [`OptimalDropper`] — the paper's optimal model (Section IV-D):
//!   exhaustive search over the `2^(q-1)` drop subsets of each queue,
//!   implemented as a shared-prefix DFS so common chain prefixes are
//!   convolved once, with an optional admissible-bound pruning extension.
//! * [`ThresholdDropper`] — the prior-work baseline (Gentry et al. \[2\],
//!   "PAM+Threshold"): drop a task when its chance of success falls below a
//!   user-provided threshold, mildly adapted to the observed
//!   oversubscription pressure at each mapping event.
//! * [`ReactiveOnly`] — no proactive drops at all; only the engine's
//!   reactive dropping (tasks that already missed their deadlines) applies.
//!
//! Policies never see the simulator: they receive a read-only
//! [`QueueView`] per machine queue and
//! return the pending positions to drop. The *running* task is never
//! droppable (the system model forbids preemption), and the *last* pending
//! task is excluded because its influence zone is empty (Section IV-D).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod approx_policy;
mod heuristic;
mod optimal;
mod reactive;
mod threshold;

pub use approx_policy::ApproxDropper;
pub use heuristic::ProactiveDropper;
pub use optimal::OptimalDropper;
pub use reactive::ReactiveOnly;
pub use threshold::ThresholdDropper;

use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::view::{DropContext, QueueView};

/// Outcome of a dropping decision for one machine queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropDecision {
    /// Indices into `QueueView::pending` to drop, strictly increasing.
    pub drops: Vec<usize>,
    /// Indices into `QueueView::pending` to *degrade* to their approximate
    /// variants (the future-work extension; see [`ApproxDropper`]), strictly
    /// increasing and disjoint from `drops`. Empty for the paper's policies.
    pub degrades: Vec<usize>,
}

impl DropDecision {
    /// The no-drop decision.
    #[must_use]
    pub fn none() -> Self {
        DropDecision::default()
    }

    /// A drop-only decision.
    #[must_use]
    pub fn drops(drops: Vec<usize>) -> Self {
        DropDecision { drops, degrades: Vec::new() }
    }

    /// Whether the decision changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty() && self.degrades.is_empty()
    }
}

/// A proactive dropping policy, invoked per machine queue at every mapping
/// event (after the engine's reactive dropping, before mapping).
///
/// Policies are stateless values (`&self`): all mutable working state lives
/// in the caller-owned [`PolicyCtx`], which the engine constructs once and
/// threads through every call so scratch buffers stay warm across mapping
/// events. Decisions must not depend on what a previous call left in the
/// context — the differential suite in
/// `crates/model/tests/evaluator_equivalence.rs` pins persistent-context
/// decisions bit-identical to fresh-context ones.
pub trait DropPolicy: Send + Sync {
    /// Stable identifier used in reports and configs (e.g. `"Heuristic"`).
    fn name(&self) -> &'static str;

    /// Selects pending positions to drop from one machine queue, using
    /// `scratch` for all chain evaluation.
    ///
    /// Returned indices must be strictly increasing and reference
    /// `queue.pending`; the engine validates this.
    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision;

    /// One-shot convenience: [`DropPolicy::select_drops`] against a fresh
    /// [`PolicyCtx`]. This is the reference path the differential tests
    /// compare the persistent path against; production drivers should
    /// reuse one context instead.
    fn select_drops_fresh(&self, queue: &QueueView<'_>, ctx: &DropContext) -> DropDecision {
        self.select_drops(queue, ctx, &mut PolicyCtx::new())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use taskdrop_model::view::{PendingView, QueueView, RunningView};
    use taskdrop_model::{MachineId, MachineTypeId, PetMatrix, TaskId, TaskTypeId};
    use taskdrop_pmf::{Pmf, Tick};

    /// A 3-type x 1-machine PET: type 0 = 10 ticks, type 1 = 50 ticks,
    /// type 2 = {20 w.p. 0.5, 80 w.p. 0.5}.
    pub fn pet() -> PetMatrix {
        PetMatrix::new(
            3,
            1,
            vec![
                Pmf::point(10),
                Pmf::point(50),
                Pmf::from_impulses(vec![(20, 0.5), (80, 0.5)]).unwrap(),
            ],
        )
    }

    pub fn pending(id: u64, ttype: u16, deadline: Tick) -> PendingView {
        PendingView::full(TaskId(id), TaskTypeId(ttype), deadline)
    }

    /// Queue on an idle machine at `now`.
    pub fn idle_queue<'a>(
        pet: &'a PetMatrix,
        now: Tick,
        pending: Vec<PendingView>,
    ) -> QueueView<'a> {
        QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now,
            running: None,
            pending,
            pet,
            approx_pet: None,
        }
    }

    /// Queue with a running task completing deterministically at `done_at`.
    pub fn busy_queue<'a>(
        pet: &'a PetMatrix,
        now: Tick,
        done_at: Tick,
        deadline: Tick,
        pending: Vec<PendingView>,
    ) -> QueueView<'a> {
        QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now,
            running: Some(RunningView {
                id: TaskId(999),
                type_id: TaskTypeId(0),
                deadline,
                completion: Pmf::point(done_at),
            }),
            pending,
            pet,
            approx_pet: None,
        }
    }
}
