//! **Optimal** proactive dropping (Section IV-D).
//!
//! For a queue of `q` pending tasks the optimal decision examines every
//! subset of droppable positions — all pending tasks except the last (its
//! influence zone is empty) — and keeps the subset whose surviving chain
//! maximises the instantaneous robustness (Eq 3). That is `2^(q-1)` subsets,
//! each requiring up to `q` deadline-convolutions: `O(q·2^(q-1))`
//! convolutions per queue (the paper's complexity analysis).
//!
//! Implementation: depth-first search over positions sharing chain prefixes,
//! so the keep/drop decision at position `i` reuses the predecessor
//! completion PMF computed for positions `0..i`. The total number of
//! convolutions equals the number of *keep* edges in the decision tree
//! (`≲ 2^q`), substantially below the naive per-subset recomputation.
//!
//! An optional **bound pruning** extension (not in the paper; see DESIGN.md)
//! cuts subtrees that provably cannot beat the incumbent: the chance of any
//! position is at most its chance when *everything* droppable ahead of it is
//! dropped, which is precomputed once per queue. With pruning the search is
//! exact — identical decisions, fewer convolutions — as verified by tests
//! and ablated in the benchmarks.

use crate::{DropDecision, DropPolicy};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::queue::{ChainEvaluator, ChainTask};
use taskdrop_model::view::{DropContext, QueueView};
use taskdrop_pmf::{Compaction, Pmf};

/// Exhaustive optimal proactive dropping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalDropper {
    /// Hard cap on droppable positions; beyond this the enumeration would
    /// explode (the guard trips on misconfigured queue sizes, not in the
    /// paper's regime of q ≤ 6).
    max_droppable: usize,
    /// Enable the admissible-bound pruning extension.
    prune: bool,
}

impl OptimalDropper {
    /// Creates the exhaustive search (pruning enabled).
    #[must_use]
    pub fn new() -> Self {
        OptimalDropper { max_droppable: 24, prune: true }
    }

    /// Plain enumeration without bound pruning (for ablation).
    #[must_use]
    pub fn without_pruning() -> Self {
        OptimalDropper { max_droppable: 24, prune: false }
    }

    /// Whether bound pruning is enabled.
    #[must_use]
    pub fn prunes(&self) -> bool {
        self.prune
    }
}

impl Default for OptimalDropper {
    fn default() -> Self {
        OptimalDropper::new()
    }
}

/// DFS state shared across the recursion.
struct Search<'a> {
    tasks: &'a [ChainTask<'a>],
    compaction: Compaction,
    prune: bool,
    /// Fused per-step evaluator borrowed from the persistent context: one
    /// completion materialisation per keep edge instead of a raw PMF plus
    /// a compacted clone, with buffers warm across mapping events.
    eval: &'a mut ChainEvaluator,
    /// Upper bound on the chance of position `i`: its chance when chained
    /// directly after the queue base (all predecessors dropped), plus the
    /// best-case chances of all later positions. `bound[i]` = max possible
    /// robustness contribution of positions `i..`.
    bound_tail: Vec<f64>,
    /// Incumbent: (robustness, drop count, drops).
    best_r: f64,
    best_drops: Vec<usize>,
    current: Vec<usize>,
}

impl Search<'_> {
    fn dfs(&mut self, pos: usize, prev: &Pmf, acc: f64) {
        if self.prune && acc + self.bound_tail[pos] <= self.best_r + 1e-12 {
            // Even with every remaining task at its best-case chance this
            // branch cannot strictly beat the incumbent.
            return;
        }
        if pos == self.tasks.len() {
            // Strict improvement required: prefers fewer drops (the keep
            // branch is explored first) and lexicographically smaller sets.
            if acc > self.best_r + 1e-12 {
                self.best_r = acc;
                self.best_drops = self.current.clone();
            }
            return;
        }
        let t = self.tasks[pos];
        // Keep branch first: the empty drop set is the first leaf visited.
        let (chance, completion) = self.eval.step_from(prev, t, self.compaction);
        self.dfs(pos + 1, &completion, acc + chance);
        // Drop branch (not allowed for the last position).
        if pos + 1 < self.tasks.len() {
            self.current.push(pos);
            self.dfs(pos + 1, prev, acc);
            self.current.pop();
        }
    }
}

impl DropPolicy for OptimalDropper {
    fn name(&self) -> &'static str {
        "Optimal"
    }

    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision {
        let tasks = queue.chain_tasks();
        let n = tasks.len();
        if n < 2 {
            return DropDecision::none();
        }
        assert!(
            n - 1 <= self.max_droppable,
            "optimal dropping over {} droppable positions would enumerate 2^{} subsets",
            n - 1,
            n - 1
        );
        let base = queue.base();
        let eval = &mut scratch.eval;

        // Per-position best-case chance: chained directly after the base.
        // Admissible: any surviving predecessor chain is stochastically
        // later than the bare base, and Eq (1) chances are monotone in the
        // predecessor (see `completion_dominates_predecessor` property).
        let mut bound_tail = vec![0.0; n + 1];
        for i in (0..n).rev() {
            bound_tail[i] = bound_tail[i + 1] + eval.chance_from(&base, tasks[i]);
        }

        // Seed the incumbent with the no-drop chain so pruning has a bar,
        // then search all alternatives.
        let seed_r = eval.chance_sum(&base, &tasks, n, ctx.compaction);
        let mut search = Search {
            tasks: &tasks,
            compaction: ctx.compaction,
            prune: self.prune,
            eval,
            bound_tail,
            best_r: seed_r,
            best_drops: Vec::new(),
            current: Vec::new(),
        };
        search.dfs(0, &base, 0.0);
        DropDecision::drops(search.best_drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{idle_queue, pending, pet};
    use crate::ProactiveDropper;
    use taskdrop_model::queue::{chain_with_drops, instantaneous_robustness};

    fn ctx() -> DropContext {
        DropContext::plain(Compaction::None)
    }

    /// Oracle: enumerate all masks with `chain_with_drops` and return the
    /// best robustness value.
    fn oracle_best(queue: &QueueView<'_>) -> f64 {
        let tasks = queue.chain_tasks();
        let base = queue.base();
        let n = tasks.len();
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            // Last task not droppable.
            if n > 0 && mask & (1 << (n - 1)) != 0 {
                continue;
            }
            let dropped: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let links = chain_with_drops(&base, &tasks, &dropped, Compaction::None);
            best = best.max(instantaneous_robustness(&links));
        }
        best
    }

    fn achieved(queue: &QueueView<'_>, drops: &[usize]) -> f64 {
        let tasks = queue.chain_tasks();
        let mut mask = vec![false; tasks.len()];
        for &d in drops {
            mask[d] = true;
        }
        let links = chain_with_drops(&queue.base(), &tasks, &mask, Compaction::None);
        instantaneous_robustness(&links)
    }

    #[test]
    fn empty_and_singleton_queues() {
        let pet = pet();
        let q = idle_queue(&pet, 0, vec![]);
        assert!(OptimalDropper::new().select_drops_fresh(&q, &ctx()).is_empty());
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 5)]);
        assert!(OptimalDropper::new().select_drops_fresh(&q, &ctx()).is_empty());
    }

    #[test]
    fn matches_oracle_on_doomed_blocker() {
        let pet = pet();
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 30)]);
        let d = OptimalDropper::new().select_drops_fresh(&q, &ctx());
        assert_eq!(d.drops, vec![0]);
        assert!((achieved(&q, &d.drops) - oracle_best(&q)).abs() < 1e-9);
    }

    #[test]
    fn no_drop_when_nothing_gained() {
        let pet = pet();
        let q = idle_queue(&pet, 0, vec![pending(1, 1, 60), pending(2, 0, 70)]);
        assert!(OptimalDropper::new().select_drops_fresh(&q, &ctx()).is_empty());
    }

    #[test]
    fn matches_oracle_on_mixed_queues() {
        let pet = pet();
        let queues = vec![
            vec![pending(1, 2, 90), pending(2, 0, 100), pending(3, 1, 120), pending(4, 0, 50)],
            vec![pending(1, 1, 55), pending(2, 1, 40), pending(3, 0, 95), pending(4, 0, 130)],
            vec![
                pending(1, 2, 30),
                pending(2, 2, 85),
                pending(3, 0, 95),
                pending(4, 1, 160),
                pending(5, 0, 175),
            ],
        ];
        for pendings in queues {
            let q = idle_queue(&pet, 0, pendings);
            let d = OptimalDropper::new().select_drops_fresh(&q, &ctx());
            let got = achieved(&q, &d.drops);
            let best = oracle_best(&q);
            assert!((got - best).abs() < 1e-9, "optimal {got} vs oracle {best}");
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let pet = pet();
        let pendings = vec![
            pending(1, 2, 60),
            pending(2, 1, 70),
            pending(3, 0, 45),
            pending(4, 2, 150),
            pending(5, 0, 90),
        ];
        let q = idle_queue(&pet, 0, pendings);
        let with = OptimalDropper::new().select_drops_fresh(&q, &ctx());
        let without = OptimalDropper::without_pruning().select_drops_fresh(&q, &ctx());
        assert_eq!(with, without);
    }

    #[test]
    fn optimal_at_least_as_good_as_heuristic() {
        let pet = pet();
        let cases = vec![
            vec![pending(1, 1, 20), pending(2, 0, 30), pending(3, 2, 80)],
            vec![pending(1, 2, 45), pending(2, 0, 22), pending(3, 1, 130), pending(4, 0, 60)],
            vec![pending(1, 0, 15), pending(2, 1, 55), pending(3, 2, 95), pending(4, 0, 105)],
        ];
        for pendings in cases {
            let q = idle_queue(&pet, 0, pendings);
            let od = OptimalDropper::new().select_drops_fresh(&q, &ctx());
            let hd = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx());
            let r_opt = achieved(&q, &od.drops);
            let r_heu = achieved(&q, &hd.drops);
            assert!(r_opt + 1e-9 >= r_heu, "optimal {r_opt} < heuristic {r_heu}");
        }
    }

    #[test]
    fn never_drops_last_task() {
        let pet = pet();
        let q = idle_queue(&pet, 0, vec![pending(1, 0, 1000), pending(2, 1, 5)]);
        let d = OptimalDropper::new().select_drops_fresh(&q, &ctx());
        assert!(!d.drops.contains(&1));
    }

    #[test]
    fn prefers_fewest_drops_among_ties() {
        let pet = pet();
        // Two identical viable tasks: dropping either changes nothing
        // (pass-through makes doomed drops free only when they add chance).
        // Both viable -> optimal must keep both.
        let q = idle_queue(&pet, 0, vec![pending(1, 0, 500), pending(2, 0, 500)]);
        let d = OptimalDropper::new().select_drops_fresh(&q, &ctx());
        assert!(d.is_empty());
    }
}
