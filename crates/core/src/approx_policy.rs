//! **Approximate-computing dropping** — the paper's future-work extension
//! ("we plan to extend the probabilistic analysis to consider approximately
//! computing tasks, in addition to task dropping"), built on the same Eq-8
//! machinery as the proactive heuristic.
//!
//! The dropping *decision* is untouched — Eq 8 still determines, per task,
//! whether keeping it is worse than clearing its slot. What changes is the
//! *action* taken on a would-be-dropped task: the policy weighs the drop
//! future against a **degrade** future in which task *i* runs its
//! approximate variant (execution PMF time-scaled by the approx factor),
//! keeping `v < 1` of its value while freeing most of the slack for its
//! influence zone:
//!
//! * **keep**:    `U_keep    = p_i + Σ_{n=i+1}^{i+η} p_n`
//! * **drop**:    `U_drop    = Σ_{n=i+1}^{i+η} p⁽ⁱ⁾_n`  (Eq 8 right side)
//! * **degrade**: `U_degrade = v·p̃_i + Σ_{n=i+1}^{i+η} p̃_n`
//!
//! If `U_drop > β·U_keep` (Eq 8 fires) the task is degraded when
//! `U_degrade ≥ U_drop`, otherwise dropped. Tasks Eq 8 would keep are
//! *never* degraded — degradation is a rescue for doomed work, not a
//! throughput dial, so the paper's full-fidelity robustness metric is not
//! cannibalised. Already-degraded tasks are only eligible for dropping.
//! With approximate computing disabled in the context, the policy reduces
//! *exactly* to [`ProactiveDropper`] (tested).

use crate::{DropDecision, DropPolicy};
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::queue::{ChainLink, ChainTask};
use taskdrop_model::view::{DropContext, QueueView};

/// Proactive dropping with degradation to approximate task variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxDropper {
    beta: f64,
    eta: usize,
}

impl ApproxDropper {
    /// Creates the policy; β and η have the same meaning as in
    /// [`crate::ProactiveDropper`].
    ///
    /// # Panics
    ///
    /// Panics if `beta < 1` or `eta == 0`.
    #[must_use]
    pub fn new(beta: f64, eta: usize) -> Self {
        assert!(beta.is_finite() && beta >= 1.0, "beta must be >= 1");
        assert!(eta >= 1, "effective depth must be >= 1");
        ApproxDropper { beta, eta }
    }

    /// The paper-default dial (β = 1, η = 2).
    #[must_use]
    pub fn paper_default() -> Self {
        ApproxDropper::new(1.0, 2)
    }
}

impl Default for ApproxDropper {
    fn default() -> Self {
        ApproxDropper::paper_default()
    }
}

impl DropPolicy for ApproxDropper {
    fn name(&self) -> &'static str {
        "Approx"
    }

    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision {
        let mut tasks: Vec<ChainTask<'_>> = queue.chain_tasks();
        let n = tasks.len();
        if n < 2 {
            return DropDecision::none();
        }
        // Degraded execution PMFs per position (None when the extension is
        // off or the task is already degraded).
        let degraded_exec: Vec<Option<&taskdrop_pmf::Pmf>> = queue
            .pending
            .iter()
            .map(|p| match (queue.approx_pet, p.degraded) {
                (Some(apet), false) => Some(apet.pmf(p.type_id, queue.machine_type)),
                _ => None,
            })
            .collect();
        let value = ctx.approx.map_or(0.0, |a| a.value);

        let base = queue.base();
        let mut drops = Vec::new();
        let mut degrades = Vec::new();
        // Lazily extended baseline + probe evaluators from the persistent
        // context, exactly as in `ProactiveDropper::select_drops` (prefix
        // reuse, DESIGN.md §12); the baseline reflects the current
        // survivor/fidelity set.
        let PolicyCtx { baseline, probe, .. } = scratch;
        baseline.reset(&base);
        let mut prev = base;
        for i in 0..n - 1 {
            let window_end = (i + 1 + self.eta).min(n);
            baseline.ensure(&tasks, window_end, ctx.compaction);
            let u_keep: f64 = baseline.links()[i..window_end].iter().map(|l| l.chance).sum();
            let u_drop = probe.chance_sum(&prev, &tasks[i + 1..], self.eta, ctx.compaction);

            if u_drop <= self.beta * u_keep + f64::EPSILON {
                // Eq 8 keeps the task at full fidelity; never degrade work
                // that is worth running as-is.
                prev = baseline.links()[i].completion.clone();
                continue;
            }

            // Eq 8 fires: clear the slot. Rescue branch — task i runs its
            // approximate execution PMF; the successor window spans the same
            // η tasks as the keep branch (positions i+1 ..= i+η).
            let u_degrade = match degraded_exec[i] {
                Some(exec) => {
                    let head = ChainTask { deadline: tasks[i].deadline, exec };
                    let (chance, completion) = probe.step_from(&prev, head, ctx.compaction);
                    let own = value * chance;
                    let rest =
                        probe.chance_sum(&completion, &tasks[i + 1..], self.eta, ctx.compaction);
                    Some((own + rest, ChainLink { completion, chance }))
                }
                None => None,
            };

            match u_degrade {
                Some((u_deg, head_link)) if u_deg >= u_drop => {
                    degrades.push(i);
                    // The chain continues from the degraded completion: swap
                    // task i's exec PMF (kept consistent even though only
                    // positions past i are ever re-chained) and rewind the
                    // baseline to restart behind the degraded head.
                    tasks[i] = ChainTask {
                        deadline: tasks[i].deadline,
                        exec: degraded_exec[i].expect("degrade branch"),
                    };
                    prev = head_link.completion.clone();
                    baseline.replace(i, head_link);
                    baseline.rewind(&prev, i + 1);
                }
                _ => {
                    drops.push(i);
                    // prev unchanged; links[i] now dead, never read again.
                    baseline.rewind(&prev, i + 1);
                }
            }
        }
        DropDecision { drops, degrades }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{idle_queue, pending, pet};
    use crate::ProactiveDropper;
    use taskdrop_model::approx::{degraded_pet, ApproxSpec};
    use taskdrop_model::view::QueueView;
    use taskdrop_pmf::Compaction;

    fn ctx_with(approx: Option<ApproxSpec>) -> DropContext {
        DropContext { compaction: Compaction::None, pressure: 0.0, approx }
    }

    #[test]
    fn reduces_to_proactive_without_approx() {
        let pet = pet();
        let queues = vec![
            vec![pending(1, 1, 20), pending(2, 0, 30)],
            vec![pending(1, 2, 45), pending(2, 0, 35)],
            vec![pending(1, 0, 1000), pending(2, 0, 1000), pending(3, 1, 5)],
        ];
        for pendings in queues {
            let q = idle_queue(&pet, 0, pendings);
            let a = ApproxDropper::paper_default().select_drops_fresh(&q, &ctx_with(None));
            let p = ProactiveDropper::paper_default().select_drops_fresh(&q, &ctx_with(None));
            assert_eq!(a.drops, p.drops);
            assert!(a.degrades.is_empty());
        }
    }

    #[test]
    fn degrades_when_partial_value_beats_dropping() {
        let pet = pet();
        let spec = ApproxSpec::new(0.2, 0.8); // 5x faster, 80 % value
        let apet = degraded_pet(&pet, spec);
        // Task 1: type 1 (exec 50), deadline 30 -> full chance 0, degraded
        // exec 10 -> completes at 10 < 30 with chance 1 worth 0.8.
        // Task 2: type 0 (exec 10), deadline 25: behind full task 1 -> 0;
        // behind degraded task 1 (done at 10) -> done 20 < 25 -> 1; with
        // task 1 dropped -> done 10 -> 1.
        // U_keep = 0; U_drop = 1; U_degrade = 0.8 + 1 = 1.8 -> degrade.
        let q = QueueView {
            approx_pet: Some(&apet),
            ..idle_queue(&pet, 0, vec![pending(1, 1, 30), pending(2, 0, 25)])
        };
        let d = ApproxDropper::paper_default().select_drops_fresh(&q, &ctx_with(Some(spec)));
        assert_eq!(d.degrades, vec![0]);
        assert!(d.drops.is_empty());
    }

    #[test]
    fn drops_when_degraded_variant_is_still_hopeless() {
        let pet = pet();
        let spec = ApproxSpec::new(0.9, 0.1); // barely faster, little value
        let apet = degraded_pet(&pet, spec);
        // Task 1: type 1 (exec 50, degraded 45), deadline 20 -> hopeless
        // either way. Task 2 (exec 10), deadline 30: blocked by 45-50 ticks
        // -> 0; dropped -> 1. Degrade gains nothing; drop wins.
        let q = QueueView {
            approx_pet: Some(&apet),
            ..idle_queue(&pet, 0, vec![pending(1, 1, 20), pending(2, 0, 30)])
        };
        let d = ApproxDropper::paper_default().select_drops_fresh(&q, &ctx_with(Some(spec)));
        assert_eq!(d.drops, vec![0]);
        assert!(d.degrades.is_empty());
    }

    #[test]
    fn keeps_viable_tasks_untouched() {
        let pet = pet();
        let spec = ApproxSpec::half_time();
        let apet = degraded_pet(&pet, spec);
        let q = QueueView {
            approx_pet: Some(&apet),
            ..idle_queue(&pet, 0, vec![pending(1, 1, 60), pending(2, 0, 70)])
        };
        let d = ApproxDropper::paper_default().select_drops_fresh(&q, &ctx_with(Some(spec)));
        assert!(d.is_empty());
    }

    #[test]
    fn already_degraded_tasks_not_redegraded() {
        let pet = pet();
        let spec = ApproxSpec::new(0.2, 0.8);
        let apet = degraded_pet(&pet, spec);
        let mut pendings = vec![pending(1, 1, 30), pending(2, 0, 25)];
        pendings[0].degraded = true; // already approximate
        let q = QueueView { approx_pet: Some(&apet), ..idle_queue(&pet, 0, pendings) };
        let d = ApproxDropper::paper_default().select_drops_fresh(&q, &ctx_with(Some(spec)));
        assert!(!d.degrades.contains(&0), "cannot degrade twice: {d:?}");
    }
}
