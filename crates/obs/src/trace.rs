//! Task lifecycle spans reconstructed from the observer stream.
//!
//! A span is the full story of one task — arrival, mapping, start,
//! terminal fate — assembled incrementally from the same
//! [`SimEvent`](taskdrop_sim::SimEvent)s every other observer sees, and
//! emitted as one structured record when the terminal event arrives.

use crate::telemetry::fate_str;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use taskdrop_pmf::Tick;
use taskdrop_sim::SimEvent;

/// A point on a task's lifecycle: when, and on which machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanPoint {
    /// Virtual time of the transition.
    pub t: Tick,
    /// The machine involved (raw [`MachineId`](taskdrop_model::MachineId)).
    pub machine: u16,
}

/// One task's complete lifecycle, from arrival to terminal fate.
///
/// `mapped`/`started` stay `None` for tasks that never reached that stage
/// (dropped from the batch queue) *or* whose earlier stages predate the
/// observer (attached mid-flight, or a restore that replays only the
/// tail of a trial).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Raw task id.
    pub task: u64,
    /// Raw task type id (PET matrix row).
    pub type_id: u16,
    /// Arrival tick.
    pub arrival: Tick,
    /// Hard deadline tick.
    pub deadline: Tick,
    /// Mapping transition, if observed.
    pub mapped: Option<SpanPoint>,
    /// Execution start, if observed.
    pub started: Option<SpanPoint>,
    /// Whether the task was degraded to its approximate variant.
    pub degraded: bool,
    /// Virtual time of the terminal event.
    pub end: Tick,
    /// Terminal fate, as the stable [`fate_str`] label.
    pub outcome: String,
}

impl TaskSpan {
    /// Ticks from arrival to the terminal event.
    #[must_use]
    pub fn turnaround(&self) -> Tick {
        self.end.saturating_sub(self.arrival)
    }
}

/// Assembles [`TaskSpan`]s from an event stream.
///
/// Tasks whose [`Arrived`](SimEvent::Arrived) event predates the tracker
/// are unknown to it; their later events are ignored rather than invented
/// — a tracker only reports lifecycles it witnessed from the start.
#[derive(Debug, Default)]
pub struct SpanTracker {
    open: BTreeMap<u64, TaskSpan>,
}

impl SpanTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        SpanTracker::default()
    }

    /// Lifecycles currently in flight (arrived, no terminal event yet).
    #[must_use]
    pub fn open(&self) -> usize {
        self.open.len()
    }

    /// Feeds one event; returns the finished span if `ev` was terminal
    /// for a task this tracker saw arrive.
    pub fn on_event(&mut self, ev: &SimEvent) -> Option<TaskSpan> {
        if let Some((task, fate)) = ev.resolved() {
            let end = match *ev {
                SimEvent::Completed { now, .. }
                | SimEvent::Killed { now, .. }
                | SimEvent::Dropped { now, .. }
                | SimEvent::MachineFailed { now, .. } => now,
                // lint:allow(panic-macro): resolved() returned Some, so ev is one of the four terminal variants matched above
                _ => unreachable!("resolved() only matches terminal events"),
            };
            let mut span = self.open.remove(&task.0)?;
            span.end = end;
            span.outcome = fate_str(fate).to_string();
            return Some(span);
        }
        match *ev {
            SimEvent::Arrived { task } => {
                self.open.insert(
                    task.id.0,
                    TaskSpan {
                        task: task.id.0,
                        type_id: task.type_id.0,
                        arrival: task.arrival,
                        deadline: task.deadline,
                        mapped: None,
                        started: None,
                        degraded: false,
                        end: 0,
                        outcome: String::new(),
                    },
                );
            }
            SimEvent::Mapped { task, machine, now } => {
                if let Some(span) = self.open.get_mut(&task.0) {
                    span.mapped = Some(SpanPoint { t: now, machine: machine.0 });
                }
            }
            SimEvent::Started { task, machine, now, degraded } => {
                if let Some(span) = self.open.get_mut(&task.0) {
                    span.started = Some(SpanPoint { t: now, machine: machine.0 });
                    span.degraded = degraded;
                }
            }
            SimEvent::Degraded { task, .. } => {
                if let Some(span) = self.open.get_mut(&task.0) {
                    span.degraded = true;
                }
            }
            _ => {}
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_model::{MachineId, Task, TaskId, TaskTypeId};

    #[test]
    fn span_assembles_full_lifecycle() {
        let mut tracker = SpanTracker::new();
        let task = Task::new(TaskId(7), TaskTypeId(2), 10, 100);
        assert!(tracker.on_event(&SimEvent::Arrived { task }).is_none());
        assert_eq!(tracker.open(), 1);
        tracker.on_event(&SimEvent::Mapped { task: TaskId(7), machine: MachineId(1), now: 12 });
        tracker.on_event(&SimEvent::Started {
            task: TaskId(7),
            machine: MachineId(1),
            now: 15,
            degraded: false,
        });
        let span = tracker
            .on_event(&SimEvent::Completed {
                task: TaskId(7),
                machine: MachineId(1),
                now: 42,
                on_time: true,
                degraded: false,
            })
            .expect("terminal event finishes the span");
        assert_eq!(tracker.open(), 0);
        assert_eq!(span.mapped, Some(SpanPoint { t: 12, machine: 1 }));
        assert_eq!(span.started, Some(SpanPoint { t: 15, machine: 1 }));
        assert_eq!(span.outcome, "on_time");
        assert_eq!(span.turnaround(), 32);
    }

    #[test]
    fn unseen_tasks_are_ignored_not_invented() {
        let mut tracker = SpanTracker::new();
        // Terminal event for a task whose arrival predates the tracker.
        let finished =
            tracker.on_event(&SimEvent::Killed { task: TaskId(3), machine: MachineId(0), now: 50 });
        assert!(finished.is_none());
        assert_eq!(tracker.open(), 0);
    }

    #[test]
    fn degraded_queue_decision_marks_the_span() {
        let mut tracker = SpanTracker::new();
        let task = Task::new(TaskId(1), TaskTypeId(0), 0, 60);
        tracker.on_event(&SimEvent::Arrived { task });
        tracker.on_event(&SimEvent::Degraded { task: TaskId(1), machine: MachineId(0), now: 5 });
        let span = tracker
            .on_event(&SimEvent::Completed {
                task: TaskId(1),
                machine: MachineId(0),
                now: 30,
                on_time: true,
                degraded: true,
            })
            .expect("terminal");
        assert!(span.degraded);
        assert_eq!(span.outcome, "on_time_approx");
    }
}
