//! Deterministic, virtual-clock-keyed telemetry for the `taskdrop` stack.
//!
//! The paper's claims are *measurements* — robustness, drop rates, cost
//! over time — but the engine only reports end-of-run aggregates
//! ([`TrialResult`](taskdrop_sim::TrialResult), `AdmissionStats`,
//! `CacheStats`). This crate adds time-resolved visibility without
//! touching engine semantics, and without ever consulting the wall clock:
//! every timestamp in every export is a virtual [`Tick`](taskdrop_pmf::Tick),
//! so instrumented runs are exactly reproducible (the `wall-clock` rule in
//! `taskdrop_lint` is the guardrail).
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket
//!   [`Histogram`]s keyed by `(name, labels)` in `BTreeMap` order, sampled
//!   into a time series on virtual-clock boundaries.
//! * [`Telemetry`] — the cheaply-cloneable handle wiring the registry into
//!   a [`SimCore`](taskdrop_sim::SimCore) through the existing read-only
//!   [`SimObserver`](taskdrop_sim::SimObserver) stream: per-event counters,
//!   task lifecycle [`TaskSpan`]s (inject→map→start→terminal), and a
//!   per-scope [`MetricsObserver`](taskdrop_sim::MetricsObserver) rollup
//!   that reconstructs the engine's own `TrialResult` byte for byte.
//! * [`FlightRecorder`] — a bounded ring buffer of recent
//!   [`SimEvent`](taskdrop_sim::SimEvent)s that serializes into shard
//!   checkpoints and survives into kill/restore post-mortems.
//! * Exporters — a JSONL stream ([`Telemetry::jsonl`], byte-identical for
//!   a given seed), a Prometheus-style text snapshot
//!   ([`Telemetry::prometheus`]), and a
//!   [`SimReport`](taskdrop_sim::SimReport)-compatible rollup
//!   ([`Telemetry::report`]).
//!
//! Everything is strictly read-only with respect to the engine: attaching
//! telemetry never changes a decision, an outcome, or a work counter —
//! the disabled path (simply not attaching) allocates nothing and the
//! instrumented path is byte-identical to it (pinned by the
//! `telemetry_determinism` integration suite).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod export;
mod flight;
mod registry;
mod telemetry;
mod trace;

pub use export::{
    CheckpointRecord, DagRecord, EpochRecord, KillRestoreRecord, RollupRecord, SampleRecord,
    ShardEpoch, SpanRecord,
};
pub use flight::{FlightRecorder, FlightSnapshot};
pub use registry::{Histogram, Metric, MetricKey, MetricLine, MetricsRegistry, SamplePoint};
pub use telemetry::{fate_str, Telemetry, CHECKPOINT_BYTES_BUCKETS, TURNAROUND_BUCKETS};
pub use trace::{SpanPoint, SpanTracker, TaskSpan};
