//! The metrics registry: counters, gauges, fixed-bucket histograms, and a
//! virtual-clock time series.
//!
//! Determinism is structural, not incidental: metrics live in a
//! [`BTreeMap`] keyed by [`MetricKey`] (name, then sorted labels), so every
//! iteration — samples, Prometheus rendering, JSONL export — walks the
//! same order on every run, and every timestamp is a caller-supplied
//! virtual [`Tick`]. The registry never reads the wall clock.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use taskdrop_pmf::Tick;

/// A metric identity: a name plus a sorted label set.
///
/// Ordering is lexicographic on `(name, labels)`, which is exactly the
/// registry's iteration (and therefore export) order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key; labels are sorted by name so `[("a","1"),("b","2")]`
    /// and `[("b","2"),("a","1")]` are the same metric.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label pairs.
    #[must_use]
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Renders only the label set, e.g. `{kind="mapped",scope="trial"}`
    /// (empty string for an unlabelled metric).
    fn label_suffix(&self) -> String {
        render_labels(&self.labels, None)
    }
}

/// Renders a label list (plus an optional extra pair appended last) in
/// Prometheus text syntax; empty list renders as the empty string.
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        // Minimal escaping: our label values are kinds and shard names,
        // but a quote or backslash must not corrupt the line format.
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.label_suffix())
    }
}

/// A fixed-bucket histogram over `u64` observations (virtual-tick
/// durations, checkpoint byte sizes). Buckets are inclusive upper bounds
/// (`le` semantics) plus an implicit `+Inf` overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing `+Inf` bucket.
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observed values.
    sum: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be non-empty and strictly
    /// increasing).
    ///
    /// # Panics
    ///
    /// Panics on empty or non-increasing bounds.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must strictly increase");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], count: 0, sum: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The configured inclusive upper bounds (without `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the `+Inf` overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

/// One flattened metric value inside a [`SamplePoint`] or JSONL sample
/// record: the rendered key (`name{labels}`) and the value as `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricLine {
    /// Rendered metric key, e.g. `sim_events_total{kind="mapped",scope="t"}`.
    pub k: String,
    /// The value (counters widen losslessly up to 2⁵³).
    pub v: f64,
}

/// The registry state flattened at one virtual-clock instant.
///
/// Histograms contribute `<name>_count` and `<name>_sum` lines; counters
/// and gauges contribute one line each, in [`MetricKey`] order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// The virtual-clock instant the sample was taken at.
    pub t: Tick,
    /// Flattened metric values, in registry (key) order.
    pub metrics: Vec<MetricLine>,
}

/// Counters, gauges and histograms keyed by `(name, labels)`, with an
/// append-only time series of [`SamplePoint`]s.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<MetricKey, Metric>,
    series: Vec<SamplePoint>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            // lint:allow(panic-macro): metric-type confusion is deterministic API misuse, caught on first touch in any test
            other => panic!("{name} is not a counter: {other:?}"),
        }
    }

    /// Sets a counter to an externally maintained cumulative value (e.g.
    /// mirroring `CacheStats` or `DagStats` totals). The counter stays
    /// monotone: a value below the current one panics, since that would
    /// mean two writers disagree about the same ledger.
    ///
    /// # Panics
    ///
    /// Panics if the key holds a different metric type, or on a decrease.
    pub fn counter_set(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => {
                assert!(value >= *v, "{name} would decrease: {} -> {value}", *v);
                *v = value;
            }
            // lint:allow(panic-macro): metric-type confusion is deterministic API misuse, caught on first touch in any test
            other => panic!("{name} is not a counter: {other:?}"),
        }
    }

    /// Sets a gauge, creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(v) => *v = value,
            // lint:allow(panic-macro): metric-type confusion is deterministic API misuse, caught on first touch in any test
            other => panic!("{name} is not a gauge: {other:?}"),
        }
    }

    /// Records one observation into a fixed-bucket histogram, creating it
    /// with `bounds` on first touch (later calls must pass equal bounds).
    ///
    /// # Panics
    ///
    /// Panics if the key holds a different metric type or the bounds
    /// disagree with the histogram's.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], bounds: &[u64], value: u64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key).or_insert_with(|| Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => {
                assert_eq!(h.bounds(), bounds, "{name} re-registered with different buckets");
                h.observe(value);
            }
            // lint:allow(panic-macro): metric-type confusion is deterministic API misuse, caught on first touch in any test
            other => panic!("{name} is not a histogram: {other:?}"),
        }
    }

    /// A counter's current value (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's current value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A histogram, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.metrics.iter()
    }

    /// Flattens the current registry state into a [`SamplePoint`] at
    /// virtual time `t`, appends it to the series, and returns it.
    pub fn sample(&mut self, t: Tick) -> SamplePoint {
        let mut metrics = Vec::new();
        for (key, metric) in &self.metrics {
            match metric {
                Metric::Counter(v) => {
                    metrics.push(MetricLine { k: key.to_string(), v: *v as f64 });
                }
                Metric::Gauge(v) => metrics.push(MetricLine { k: key.to_string(), v: *v }),
                Metric::Histogram(h) => {
                    let suffix = key.label_suffix();
                    metrics.push(MetricLine {
                        k: format!("{}_count{}", key.name(), suffix),
                        v: h.count() as f64,
                    });
                    metrics.push(MetricLine {
                        k: format!("{}_sum{}", key.name(), suffix),
                        v: h.sum() as f64,
                    });
                }
            }
        }
        let point = SamplePoint { t, metrics };
        self.series.push(point.clone());
        point
    }

    /// The recorded time series, oldest first.
    #[must_use]
    pub fn series(&self) -> &[SamplePoint] {
        &self.series
    }

    /// Renders the current state in Prometheus text exposition style:
    /// one `# TYPE` comment per metric name, values in key order.
    /// Purely a function of registry contents — byte-identical across
    /// runs that made the same updates.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, metric) in &self.metrics {
            if last_name != Some(key.name()) {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", key.name(), kind));
                last_name = Some(key.name());
            }
            match metric {
                Metric::Counter(v) => out.push_str(&format!("{key} {v}\n")),
                Metric::Gauge(v) => out.push_str(&format!("{key} {v}\n")),
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &count) in h.bucket_counts().iter().enumerate() {
                        cumulative += count;
                        let le = match h.bounds().get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            key.name(),
                            render_labels(key.labels(), Some(("le", &le))),
                            cumulative,
                        ));
                    }
                    let suffix = key.label_suffix();
                    out.push_str(&format!("{}_sum{} {}\n", key.name(), suffix, h.sum()));
                    out.push_str(&format!("{}_count{} {}\n", key.name(), suffix, h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_labels_and_render_stably() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(MetricKey::new("m", &[]).to_string(), "m");
    }

    #[test]
    fn counters_accumulate_and_counter_set_is_monotone() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", &[("k", "x")], 2);
        r.counter_add("c", &[("k", "x")], 3);
        assert_eq!(r.counter("c", &[("k", "x")]), 5);
        assert_eq!(r.counter("c", &[("k", "y")]), 0);
        r.counter_set("d", &[], 7);
        r.counter_set("d", &[], 9);
        assert_eq!(r.counter("d", &[]), 9);
    }

    #[test]
    #[should_panic(expected = "would decrease")]
    fn counter_set_rejects_decreases() {
        let mut r = MetricsRegistry::new();
        r.counter_set("d", &[], 9);
        r.counter_set("d", &[], 7);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 20]);
        for v in [5, 10, 11, 20, 21] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 67);
    }

    #[test]
    fn sample_flattens_in_key_order() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("z", &[], 1.5);
        r.counter_add("a", &[], 4);
        r.observe("h", &[], &[10], 3);
        let point = r.sample(99);
        assert_eq!(point.t, 99);
        let keys: Vec<&str> = point.metrics.iter().map(|m| m.k.as_str()).collect();
        assert_eq!(keys, ["a", "h_count", "h_sum", "z"]);
        assert_eq!(r.series().len(), 1);
    }

    #[test]
    fn prometheus_rendering_groups_types() {
        let mut r = MetricsRegistry::new();
        r.counter_add("events", &[("kind", "a")], 1);
        r.counter_add("events", &[("kind", "b")], 2);
        r.observe("lat", &[], &[10, 20], 15);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE events counter\n"));
        assert!(text.contains("events{kind=\"a\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"20\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_sum 15\n"));
        assert_eq!(text.matches("# TYPE events").count(), 1);
    }
}
