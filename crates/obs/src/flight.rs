//! The flight recorder: a bounded ring buffer of recent engine events.
//!
//! Attach a [`FlightRecorder`] clone to a core like any other observer;
//! it keeps the last `capacity` [`SimEvent`]s. Its contents serialize
//! into a [`FlightSnapshot`] so a shard checkpoint can carry them — after
//! a kill/restore the buffer resumes from the checkpointed contents and,
//! the replay being deterministic, ends up byte-identical to an
//! undisturbed run, while the pre-kill contents survive as a post-mortem.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use taskdrop_sim::{SimEvent, SimObserver};

/// Serialized flight-recorder contents (a [`FlightRecorder::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// The ring capacity at snapshot time.
    pub capacity: usize,
    /// Recorded events, oldest first (at most `capacity`).
    pub events: Vec<SimEvent>,
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    events: VecDeque<SimEvent>,
}

/// A cheaply-cloneable handle to one bounded event ring.
///
/// All clones share the same buffer (the same single-threaded
/// `Rc<RefCell<…>>` pattern as `DagTap`): attach one clone to the core,
/// keep another to inspect or snapshot. Strictly read-only with respect
/// to the engine — recording changes no outcome.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<FlightInner>>,
}

impl FlightRecorder {
    /// An empty recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a flight recorder needs capacity for at least one event");
        FlightRecorder {
            inner: Rc::new(RefCell::new(FlightInner {
                capacity,
                events: VecDeque::with_capacity(capacity),
            })),
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Events currently held (at most [`FlightRecorder::capacity`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether nothing has been recorded (or everything was cleared).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// The recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<SimEvent> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Records one event, evicting the oldest at capacity.
    pub fn record(&self, ev: &SimEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(*ev);
    }

    /// Serializable copy of the current contents.
    #[must_use]
    pub fn snapshot(&self) -> FlightSnapshot {
        let inner = self.inner.borrow();
        FlightSnapshot { capacity: inner.capacity, events: inner.events.iter().copied().collect() }
    }

    /// Replaces the buffer (and capacity) with a snapshot's contents —
    /// the restore half of checkpointing.
    pub fn restore(&self, snapshot: &FlightSnapshot) {
        let mut inner = self.inner.borrow_mut();
        inner.capacity = snapshot.capacity.max(1);
        inner.events = snapshot.events.iter().copied().collect();
        while inner.events.len() > inner.capacity {
            inner.events.pop_front();
        }
    }

    /// Drops all recorded events, keeping the capacity.
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

impl SimObserver for FlightRecorder {
    fn on_event(&mut self, ev: &SimEvent) {
        self.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_pmf::Tick;

    fn round(now: Tick) -> SimEvent {
        SimEvent::MappingRound { now }
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let rec = FlightRecorder::new(3);
        for t in 0..5 {
            rec.record(&round(t));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.events(), vec![round(2), round(3), round(4)]);
    }

    #[test]
    fn clones_share_the_buffer() {
        let rec = FlightRecorder::new(2);
        let mut attached = rec.clone();
        attached.on_event(&round(1));
        assert_eq!(rec.events(), vec![round(1)]);
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let rec = FlightRecorder::new(4);
        rec.record(&round(1));
        rec.record(&round(2));
        let snap = rec.snapshot();
        rec.record(&round(3));
        assert_eq!(rec.len(), 3);
        rec.restore(&snap);
        assert_eq!(rec.events(), vec![round(1), round(2)]);
        assert_eq!(rec.capacity(), 4);
    }

    #[test]
    fn snapshot_survives_serde() {
        let rec = FlightRecorder::new(2);
        rec.record(&round(7));
        let json = serde_json::to_string(&rec.snapshot()).expect("serializable");
        let back: FlightSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, rec.snapshot());
    }
}
