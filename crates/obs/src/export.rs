//! Structured JSONL record types.
//!
//! Every line [`Telemetry`](crate::Telemetry) emits is one of these
//! structs serialized with `serde_json`; the `record` field tags the
//! variant so consumers can route lines without a schema. All timestamps
//! are virtual ticks, all collections are emitted in deterministic order,
//! so a given seed produces a byte-identical stream.

use crate::registry::MetricLine;
use crate::trace::TaskSpan;
use serde::{Deserialize, Serialize};
use taskdrop_pmf::Tick;
use taskdrop_sim::TrialResult;

/// `record: "sample"` — the registry flattened at a virtual-clock
/// boundary (one time-series window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Always `"sample"`.
    pub record: String,
    /// Sample instant (virtual).
    pub t: Tick,
    /// Flattened metric values in registry key order.
    pub metrics: Vec<MetricLine>,
}

/// `record: "span"` — one finished task lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Always `"span"`.
    pub record: String,
    /// The scope (core) the task lived in.
    pub scope: String,
    /// The lifecycle.
    pub span: TaskSpan,
}

/// Per-shard numbers inside an [`EpochRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEpoch {
    /// Shard name.
    pub shard: String,
    /// Offers waiting in the ingress queue at epoch end.
    pub backlog: u64,
    /// Cumulative offers seen by admission.
    pub offered: u64,
    /// Cumulative offers admitted into the core.
    pub admitted: u64,
    /// Cumulative offers turned away (all refusal kinds).
    pub turned_away: u64,
    /// Tasks ever admitted to the core (its fate-table size).
    pub total_tasks: u64,
    /// Tasks with a terminal fate.
    pub resolved_tasks: u64,
    /// Cumulative queued offers received from sibling shards at epoch
    /// barriers (fleet work stealing; absent in records from older
    /// builds — `default` keeps them loading).
    #[serde(default)]
    pub stolen_in: u64,
    /// Cumulative queued offers donated to sibling shards at epoch
    /// barriers.
    #[serde(default)]
    pub stolen_out: u64,
}

/// `record: "epoch"` — one `ServiceDriver` epoch across the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Always `"epoch"`.
    pub record: String,
    /// Clock at epoch start.
    pub from: Tick,
    /// Clock at epoch end.
    pub to: Tick,
    /// Per-shard state at epoch end, in shard order.
    pub shards: Vec<ShardEpoch>,
}

/// `record: "checkpoint"` — one shard snapshot and its serialized cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Always `"checkpoint"`.
    pub record: String,
    /// Shard name.
    pub shard: String,
    /// Clock the checkpoint was taken at.
    pub t: Tick,
    /// Serialized (JSON) checkpoint size in bytes.
    pub bytes: u64,
}

/// `record: "kill_restore"` — a shard was killed and revived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KillRestoreRecord {
    /// Always `"kill_restore"`.
    pub record: String,
    /// Shard name.
    pub shard: String,
    /// Checkpoint tick the shard was revived from.
    pub revived_at: Tick,
    /// Fleet clock it was caught back up to.
    pub clock: Tick,
    /// Events in the pre-kill flight recorder (the post-mortem), if one
    /// was attached.
    pub post_mortem_events: u64,
}

/// `record: "dag"` — cumulative graph-layer rates at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagRecord {
    /// Always `"dag"`.
    pub record: String,
    /// The scope (core) the coordinator drives.
    pub scope: String,
    /// Instant of the reading (virtual).
    pub t: Tick,
    /// Engine injections performed (released nodes).
    pub released: u64,
    /// Nodes satisfied by riding an existing injection.
    pub merged: u64,
    /// Nodes forfeited by predecessor failure.
    pub forfeited_cascade: u64,
    /// Nodes shed by subtree pruning.
    pub forfeited_pruned: u64,
    /// Nodes turned away by chain-aware admission.
    pub forfeited_shed: u64,
}

/// `record: "rollup"` — the terminal [`TrialResult`] a scope's
/// stream-reconstructed rollup arrived at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollupRecord {
    /// Always `"rollup"`.
    pub record: String,
    /// The scope the rollup covers.
    pub scope: String,
    /// The reconstructed result (byte-equal to the engine's own).
    pub result: TrialResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json() {
        let rec = CheckpointRecord {
            record: "checkpoint".to_string(),
            shard: "bursty".to_string(),
            t: 2_000,
            bytes: 4_096,
        };
        let line = serde_json::to_string(&rec).expect("serializable");
        assert!(line.contains("\"record\":\"checkpoint\""));
        let back: CheckpointRecord = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, rec);
    }
}
